package server

import (
	"errors"
	"io"
	"math"
	"time"
)

// Service is the admission surface the HTTP layer serves. Both the
// standalone single-writer Daemon and the Sharded facade implement it,
// so cmd/gpsd mounts one handler whatever the shard count.
type Service interface {
	Admit(AdmitRequest) (AdmitResult, error)
	Release(id uint64) (bool, error)
	// Prepare, CommitPrepared and AbortPrepared are the hop side of the
	// cluster two-phase admit (see prepare.go): a prepare reserves
	// weight under a coordinator transaction id and reports the shard
	// holding it; the coordinator echoes that shard on resolution.
	Prepare(PrepareRequest) (PrepareResult, error)
	CommitPrepared(txid string, shard int) (CommitResult, error)
	AbortPrepared(txid string, shard int) (bool, error)
	// ClusterSessions lists the live sessions admitted through the
	// two-phase protocol, each with the coordinator transaction that
	// committed it and its age — the feed for a restarted coordinator's
	// orphan sweep.
	ClusterSessions() ([]ClusterSessionInfo, error)
	// Pending reports an id admitted in the live set but not yet
	// visible in a published epoch (425 vs 404 on the bounds path).
	Pending(id uint64) bool
	// Bounds evaluates session id's tail bounds from the epoch that
	// owns it; false when the id is in no published epoch.
	Bounds(id uint64, q, dly float64) (BoundsReport, bool)
	// Partition returns one shard's feasible partition (shard >= 0) or
	// the composed view of every shard in shard order (shard < 0).
	// errNoShard when the shard index does not exist.
	Partition(shard int) (PartitionView, error)
	Health() HealthView
	// RetryAfter is the backpressure hint for shed responses;
	// EpochAgeBound bounds how stale a published epoch can be (the 425
	// Retry-After hint).
	RetryAfter() time.Duration
	EpochAgeBound() time.Duration
	// HTTPMetrics is the counter set handler observations land in.
	HTTPMetrics() *Metrics
	WriteMetrics(w io.Writer)
}

// errNoShard is returned by Partition for a shard index the service
// does not have; the HTTP layer maps it to 404.
var errNoShard = errors.New("server: no such shard")

// PartitionView is the feasible partition H_1..H_L of a published
// epoch (or the shard-ordered concatenation of every shard's classes),
// by session id.
type PartitionView struct {
	Epoch    uint64
	Sessions int
	Classes  [][]uint64
}

// HealthView is the liveness snapshot behind /healthz. For a sharded
// service, EpochSeq and Sessions sum over shards and Used is the
// shard-ordered sum of per-shard Σφ.
type HealthView struct {
	Draining bool
	EpochSeq uint64
	Sessions int
	Used     float64
	Rate     float64
	Shards   int
	// Reserved is the weight held by pending cluster prepares (shard-
	// ordered sum for a sharded service — reproducible bit for bit by an
	// offline fold, like Used); Prepares counts them.
	Reserved float64
	Prepares int
}

// Bounds implements Service over the current epoch.
func (d *Daemon) Bounds(id uint64, q, dly float64) (BoundsReport, bool) {
	return d.CurrentEpoch().BoundsFor(id, q, dly)
}

// EpochAgeBound implements Service.
func (d *Daemon) EpochAgeBound() time.Duration { return d.cfg.MaxEpochAge }

// HTTPMetrics implements Service.
func (d *Daemon) HTTPMetrics() *Metrics { return d.met }

// Capacity returns the writer's current admission ceiling — cfg.Rate
// for a standalone daemon, the ledger-granted slice for a shard.
func (d *Daemon) Capacity() float64 { return math.Float64frombits(d.capBits.Load()) }

// partitionView assembles the classes-by-id view from one epoch.
func partitionView(ep *Epoch) PartitionView {
	out := PartitionView{Epoch: ep.Seq, Sessions: ep.Sessions(), Classes: [][]uint64{}}
	if ep.Analysis != nil {
		for _, class := range ep.Analysis.Partition.Classes {
			ids := make([]uint64, len(class))
			for k, i := range class {
				ids[k] = ep.IDs[i]
			}
			out.Classes = append(out.Classes, ids)
		}
	}
	return out
}

// Partition implements Service. A standalone daemon is its own shard
// 0; any higher index is errNoShard.
func (d *Daemon) Partition(shard int) (PartitionView, error) {
	if shard > 0 {
		return PartitionView{}, errNoShard
	}
	return partitionView(d.CurrentEpoch()), nil
}

// Health implements Service.
func (d *Daemon) Health() HealthView {
	d.mu.RLock()
	draining := d.closing
	d.mu.RUnlock()
	ep := d.CurrentEpoch()
	return HealthView{
		Draining: draining,
		EpochSeq: ep.Seq,
		Sessions: ep.Sessions(),
		Used:     ep.Used,
		Rate:     d.cfg.Rate,
		Shards:   1,
		Reserved: d.Reserved(),
		Prepares: d.PrepareCount(),
	}
}
