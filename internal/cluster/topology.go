// Package cluster is the multi-node control plane: each hop of a GPS
// network from the paper's §6 runs its own gpsd, and a coordinator
// walks a session's route, composing the per-hop statistical bounds
// (internal/network's CRST recursion) into an end-to-end delay
// guarantee before any hop durably admits the session.
//
// Admission is a route-scoped two-phase commit. The coordinator first
// PREPAREs the session's GPS weight at every hop on the route — each
// hop journals the reservation in its own WAL and holds the headroom —
// and only when every hop has prepared does it COMMIT. Any hop
// rejection, timeout, or transport failure during the prepare phase
// aborts the admit and rolls the already-prepared hops back, so a
// partition can never leave the cluster with a session admitted at
// some hops but not others: the protocol fails closed. Prepares carry
// a TTL, so a coordinator that dies between phases leaks no capacity —
// every surviving hop expires the in-doubt reservation on its own.
package cluster

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/url"
	"os"
	"strings"
)

// HopNode is one GPS server of the topology: a gpsd reachable at URL
// serving a link of the given rate. The rate must match the -rate the
// daemon itself runs with — the coordinator's offline analysis and the
// hop's own admission control check the same capacity, and a mismatch
// would let one of them promise what the other refuses.
type HopNode struct {
	Name string  `json:"name"`
	URL  string  `json:"url"`
	Rate float64 `json:"rate"`
}

// Topology is the static description of the GPS network the cluster
// serves: the node set of an internal/network.Network, with each node
// annotated by the address of the daemon that schedules it.
type Topology struct {
	Nodes []HopNode `json:"nodes"`
}

// Validate checks structural sanity: at least one node, unique
// non-empty names, positive finite rates, and absolute http(s) URLs.
func (t Topology) Validate() error {
	if len(t.Nodes) == 0 {
		return errors.New("cluster: topology has no nodes")
	}
	seen := make(map[string]bool, len(t.Nodes))
	for m, n := range t.Nodes {
		if n.Name == "" {
			return fmt.Errorf("cluster: node %d has no name", m)
		}
		if seen[n.Name] {
			return fmt.Errorf("cluster: duplicate node name %q", n.Name)
		}
		seen[n.Name] = true
		if !(n.Rate > 0) || math.IsInf(n.Rate, 1) || math.IsNaN(n.Rate) {
			return fmt.Errorf("cluster: node %q rate = %v, want positive finite", n.Name, n.Rate)
		}
		u, err := url.Parse(n.URL)
		if err != nil {
			return fmt.Errorf("cluster: node %q url: %v", n.Name, err)
		}
		if (u.Scheme != "http" && u.Scheme != "https") || u.Host == "" {
			return fmt.Errorf("cluster: node %q url %q, want absolute http(s)", n.Name, n.URL)
		}
	}
	return nil
}

// hopBase returns node m's URL with any trailing slash trimmed, ready
// for path concatenation.
func (t Topology) hopBase(m int) string {
	return strings.TrimRight(t.Nodes[m].URL, "/")
}

// LoadTopology reads and validates a topology JSON file:
//
//	{"nodes": [{"name": "node1", "url": "http://127.0.0.1:9001", "rate": 1}, ...]}
//
// Unknown fields are refused so a typo'd key fails loudly instead of
// silently configuring nothing.
func LoadTopology(path string) (Topology, error) {
	f, err := os.Open(path)
	if err != nil {
		return Topology{}, fmt.Errorf("cluster: %w", err)
	}
	defer f.Close()
	dec := json.NewDecoder(f)
	dec.DisallowUnknownFields()
	var t Topology
	if err := dec.Decode(&t); err != nil {
		return Topology{}, fmt.Errorf("cluster: %s: %v", path, err)
	}
	if dec.More() {
		return Topology{}, fmt.Errorf("cluster: %s: trailing data after topology object", path)
	}
	if err := t.Validate(); err != nil {
		return Topology{}, fmt.Errorf("%w (%s)", err, path)
	}
	return t, nil
}
