package cluster

import (
	"bytes"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/admission"
	"repro/internal/ebb"
	"repro/internal/network"
	"repro/internal/wal"
)

// ErrPartition reports that a hop could not be reached (or answered
// outside the protocol) while an admit was in flight. The admit fails
// closed: every hop that had already prepared is rolled back, and any
// rollback the partition also swallowed expires on the hop's own TTL
// clock. The HTTP layer maps this to 503.
var ErrPartition = errors.New("cluster: hop unreachable, admit aborted")

// ErrDurability reports that the coordinator could not journal an
// operation the hops had already carried out. For an admit the hop
// sessions are released (best effort) and the admit fails closed; for a
// release the session is kept in the model. Retryable once the
// journal's disk recovers; the HTTP layer maps this to 503.
var ErrDurability = errors.New("cluster: journal append failed")

// AuditSink observes the durable route-op stream (see Config.Audit).
// It mirrors internal/server.AuditSink so one
// internal/replication.Audit implementation serves hop and coordinator
// WALs alike.
type AuditSink interface {
	Record(op wal.Op)
}

// Config configures a Coordinator.
type Config struct {
	// Topology is the node set and daemon addresses. Required.
	Topology Topology
	// PrepareTTL is the reservation lifetime each hop journals with a
	// prepare; a coordinator that dies mid-protocol leaks capacity for
	// at most this long (default 10s).
	PrepareTTL time.Duration
	// HopTimeout bounds every hop RPC; a hop slower than this is
	// treated as partitioned (default 2s).
	HopTimeout time.Duration
	// CRST are the analysis options every end-to-end bound is computed
	// under. The zero value (Hölder route, θ = θ_max/2) is the sound
	// default for interior nodes; offline tooling comparing against the
	// coordinator must use the same options bit-for-bit.
	CRST network.CRSTOptions
	// Client, when non-nil, overrides the HTTP client (tests inject
	// httptest transports); its Timeout is still forced to HopTimeout.
	Client *http.Client
	// Log, when non-nil, is the coordinator's write-ahead journal: every
	// committed end-to-end admit appends a route record and every
	// release a tombstone, durable before the caller sees the reply, so
	// a restarted coordinator serves RouteBounds bit-identical to its
	// previous life. The directory should carry the wal.CoordMarkerName
	// marker so hop tooling refuses it (cmd/gpsd writes it).
	Log *wal.Log
	// Recovered, when non-nil, is the previous life's journal as read by
	// wal.Open. New folds it back into the session set (coordinator logs
	// never snapshot, so the fold is a pure function of the op stream)
	// and then reconciles the result against the hops' durable truth.
	Recovered *wal.Recovered
	// Audit, when non-nil alongside Log, receives every journaled op
	// after its batch reaches the log (internal/replication.Audit
	// implements it), extending the Merkle audit trail to the
	// coordinator's own journal.
	Audit AuditSink
	// Crash is the fault-injection hook consulted at the coordinator's
	// named durability boundaries; nil disables them.
	Crash wal.Crashpoint
}

// Metrics are the coordinator's monotone counters.
type Metrics struct {
	Admits          atomic.Int64 // sessions committed end to end
	Rejects         atomic.Int64 // admits refused by analysis or a hop's headroom
	PartitionAborts atomic.Int64 // admits aborted by an unreachable hop
	Releases        atomic.Int64 // sessions released end to end
	CommitRetries   atomic.Int64 // hop commits re-sent after a lost reply
	ReconcileDrops  atomic.Int64 // journaled admits dropped at recovery (hop sessions gone)
	OrphanReleases  atomic.Int64 // unjournaled hop sessions swept at recovery
}

// clusterSession is one committed end-to-end session. Sessions are
// held in admission order — the CRST recursion derives interior-hop
// inputs from the session list in order, so the order is load-bearing
// for bit-identical replay by offline tooling.
type clusterSession struct {
	id     uint64
	name   string
	arr    ebb.Process
	route  []int
	target admission.Target
	hopIDs []uint64 // per-hop daemon session ids, aligned with route
	shards []int    // per-hop owning shard, echoed from prepare
}

// Coordinator walks admits through the topology. With Config.Log set,
// every committed admit and release is journaled commit-before-reply,
// so a restart folds the journal back into the session set and serves
// its previous life's RouteBounds bit for bit; in-flight prepares still
// expire on the hops' TTL clocks, and recovery reconciles the folded
// set against the hops (DESIGN.md §15). Without a log the old §14
// trade-off applies: a restart recovers nothing.
type Coordinator struct {
	cfg    Config
	client *http.Client
	met    Metrics

	mu       sync.Mutex
	nextID   uint64
	sessions []clusterSession
	byID     map[uint64]int        // session id -> index in sessions, maintained across swap-remove
	analysis *network.CRSTAnalysis // cached for the current committed set; nil after release
}

// New validates the topology and returns a coordinator. When
// cfg.Recovered is non-nil the previous life's journal is folded back
// into the session set and reconciled against the hops before the
// coordinator serves a single request.
func New(cfg Config) (*Coordinator, error) {
	if err := cfg.Topology.Validate(); err != nil {
		return nil, err
	}
	if cfg.PrepareTTL <= 0 {
		cfg.PrepareTTL = 10 * time.Second
	}
	if cfg.HopTimeout <= 0 {
		cfg.HopTimeout = 2 * time.Second
	}
	client := cfg.Client
	if client == nil {
		client = &http.Client{}
	}
	client.Timeout = cfg.HopTimeout
	c := &Coordinator{cfg: cfg, client: client, nextID: 1, byID: make(map[uint64]int)}
	if cfg.Recovered != nil {
		if err := c.foldRecovered(cfg.Recovered); err != nil {
			return nil, err
		}
		c.reconcile()
	}
	return c, nil
}

// Metrics exposes the counter block.
func (c *Coordinator) Metrics() *Metrics { return &c.met }

// Sessions returns the number of committed end-to-end sessions.
func (c *Coordinator) Sessions() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.sessions)
}

// AdmitRequest asks for an end-to-end session across Route (node
// indices into the topology) under an end-to-end delay target. The GPS
// weight at every hop is the session's ρ — the RPPS assignment of the
// paper's Theorem 15, which internal/network's machinery analyzes
// without per-hop tuning.
type AdmitRequest struct {
	Name    string
	Arrival ebb.Process
	Route   []int
	Target  admission.Target
}

// Validate checks the request against an n-node topology.
func (r AdmitRequest) Validate(n int) error {
	if err := r.Arrival.Validate(); err != nil {
		return fmt.Errorf("cluster: %w", err)
	}
	if err := r.Target.Validate(); err != nil {
		return fmt.Errorf("cluster: %w", err)
	}
	if len(r.Route) == 0 {
		return errors.New("cluster: empty route")
	}
	seen := make(map[int]bool, len(r.Route))
	for k, m := range r.Route {
		if m < 0 || m >= n {
			return fmt.Errorf("cluster: route hop %d references node %d of %d", k, m, n)
		}
		if seen[m] {
			return fmt.Errorf("cluster: route visits node %d twice", m)
		}
		seen[m] = true
	}
	return nil
}

// HopDelay is one hop's contribution to an end-to-end bound:
// Pr{D at this hop >= d} <= Prefactor·e^{-Rate·d}, with Rate = θ·g.
type HopDelay struct {
	Node      int
	Name      string
	HopID     uint64
	G         float64
	Theta     float64
	Prefactor float64
	Rate      float64
}

// Bound is an end-to-end delay guarantee: the exact convolved tail
// evaluated at the target delay (AchievedEps, the number the admit
// decision used) plus the single-exponential envelope
// Pr{D_net >= d} <= EnvPrefactor·e^{-EnvRate·d}.
type Bound struct {
	Delay        float64
	Eps          float64
	AchievedEps  float64
	EnvPrefactor float64
	EnvRate      float64
}

// AdmitResult reports one admit. Admitted=false with a Reason is an
// orderly refusal (analysis or hop headroom); transport failures
// surface as an ErrPartition error instead.
type AdmitResult struct {
	Admitted bool
	ID       uint64
	TxID     string
	Reason   string
	Bound    Bound
	Hops     []HopDelay
}

// RouteBounds is the per-session view served after admission, computed
// under the current committed set.
type RouteBounds struct {
	ID     uint64
	Name   string
	Target admission.Target
	Bound  Bound
	Hops   []HopDelay
}

func newTxID() string {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic(fmt.Sprintf("cluster: rand: %v", err)) // crypto/rand never fails on supported platforms
	}
	return hex.EncodeToString(b[:])
}

// buildNetwork assembles the analysis model: topology nodes plus every
// committed session in admission order, plus (optionally) the
// candidate appended last. Route and Phi slices are freshly built so
// the analysis never aliases coordinator state.
func (c *Coordinator) buildNetwork(cand *AdmitRequest) network.Network {
	nw := network.Network{Nodes: make([]network.Node, len(c.cfg.Topology.Nodes))}
	for m, n := range c.cfg.Topology.Nodes {
		nw.Nodes[m] = network.Node{Name: n.Name, Rate: n.Rate}
	}
	add := func(name string, arr ebb.Process, route []int) {
		phi := make([]float64, len(route))
		for k := range route {
			phi[k] = arr.Rho
		}
		nw.Sessions = append(nw.Sessions, network.Session{
			Name:    name,
			Arrival: arr,
			Route:   append([]int(nil), route...),
			Phi:     phi,
		})
	}
	for _, s := range c.sessions {
		add(s.name, s.arr, s.route)
	}
	if cand != nil {
		add(cand.Name, cand.Arrival, cand.Route)
	}
	return nw
}

// boundFor evaluates session i's end-to-end bound from an analysis.
func boundFor(an *network.CRSTAnalysis, i int, target admission.Target) Bound {
	env := an.EndToEndDelayExpTail(i)
	return Bound{
		Delay:        target.Delay,
		Eps:          target.Eps,
		AchievedEps:  an.EndToEndDelayTail(i)(target.Delay),
		EnvPrefactor: env.Prefactor,
		EnvRate:      env.Rate,
	}
}

func (c *Coordinator) hopsFor(an *network.CRSTAnalysis, i int, hopIDs []uint64) []HopDelay {
	hops := make([]HopDelay, len(an.Hops[i]))
	for k, hb := range an.Hops[i] {
		hops[k] = HopDelay{
			Node:      hb.Node,
			Name:      c.cfg.Topology.Nodes[hb.Node].Name,
			G:         hb.G,
			Theta:     hb.Theta,
			Prefactor: hb.Delay.Prefactor,
			Rate:      hb.Delay.Rate,
		}
		if hopIDs != nil {
			hops[k].HopID = hopIDs[k]
		}
	}
	return hops
}

// Admit runs the full protocol: analyze the candidate against the
// committed set, and if the composed end-to-end bound meets the
// target, prepare the session's weight at every hop on the route, then
// commit. Admits are serialized — the analysis that justified the
// admit is exactly the analysis of the set the commit produces.
func (c *Coordinator) Admit(req AdmitRequest) (AdmitResult, error) {
	if err := req.Validate(len(c.cfg.Topology.Nodes)); err != nil {
		return AdmitResult{}, err
	}
	c.mu.Lock()
	defer c.mu.Unlock()

	cand := len(c.sessions)
	an, err := c.buildNetwork(&req).AnalyzeCRST(c.cfg.CRST)
	if err != nil {
		// Stability violation or non-CRST assignment: an orderly
		// refusal, decided before any hop was touched.
		c.met.Rejects.Add(1)
		return AdmitResult{Reason: err.Error()}, nil
	}
	bound := boundFor(an, cand, req.Target)
	if !(bound.AchievedEps <= req.Target.Eps) {
		c.met.Rejects.Add(1)
		return AdmitResult{
			Reason: fmt.Sprintf("end-to-end delay bound %g at d=%g exceeds eps %g",
				bound.AchievedEps, req.Target.Delay, req.Target.Eps),
			Bound: bound,
		}, nil
	}

	// Phase 1: reserve φ = ρ at every hop, in route order. Any
	// refusal or transport failure rolls back what was prepared.
	txid := newTxID()
	shards := make([]int, len(req.Route))
	for k, m := range req.Route {
		pr, err := c.prepareHop(m, txid, req)
		if err != nil {
			c.rollback(txid, req.Route[:k], shards[:k])
			c.met.PartitionAborts.Add(1)
			return AdmitResult{}, fmt.Errorf("%w: prepare at %s: %v",
				ErrPartition, c.cfg.Topology.Nodes[m].Name, err)
		}
		if !pr.Prepared {
			c.rollback(txid, req.Route[:k], shards[:k])
			c.met.Rejects.Add(1)
			return AdmitResult{
				TxID:   txid,
				Reason: fmt.Sprintf("hop %s refused: %s", c.cfg.Topology.Nodes[m].Name, pr.Reason),
				Bound:  bound,
			}, nil
		}
		shards[k] = pr.Shard
	}

	// Phase 2: commit in route order. A transport failure leaves the
	// hop in doubt — the commit may have landed with its ack lost — so
	// it is retried once: hop commits are idempotent by txid (a hop
	// that already committed replays the recorded session id instead of
	// re-admitting). Only an orderly refusal, or a retry that also
	// fails, aborts. Then fail closed: abort everything not
	// known-committed (the hop compensates an abort of a tx it already
	// committed by releasing the session it created) and release the
	// committed prefix.
	hopIDs := make([]uint64, len(req.Route))
	for k, m := range req.Route {
		cr, err := c.commitHop(m, txid, shards[k])
		if err != nil {
			c.met.CommitRetries.Add(1)
			cr, err = c.commitHop(m, txid, shards[k])
		}
		if err != nil || !cr.Committed {
			c.rollback(txid, req.Route[k:], shards[k:])
			c.releaseHops(req.Route[:k], hopIDs[:k])
			c.met.PartitionAborts.Add(1)
			detail := cr.Reason
			if err != nil {
				detail = err.Error()
			}
			return AdmitResult{}, fmt.Errorf("%w: commit at %s: %s",
				ErrPartition, c.cfg.Topology.Nodes[m].Name, detail)
		}
		hopIDs[k] = cr.ID
	}

	// Journal the route record before touching memory or replying: a
	// coordinator that dies past this append re-serves the admit after
	// restart; one that dies before it leaves only hop sessions, which
	// outlive the prepare TTL and are then swept by the restart's
	// orphan reconcile.
	id := c.nextID
	if err := c.journal(wal.Op{
		Kind: wal.KindRouteAdmit, ID: id, Name: req.Name,
		Rho: req.Arrival.Rho, Lambda: req.Arrival.Lambda, Alpha: req.Arrival.Alpha,
		Delay: req.Target.Delay, Eps: req.Target.Eps,
		Route: req.Route, HopIDs: hopIDs, HopShards: shards,
	}); err != nil {
		// Fully committed on the hops but not durable here: release the
		// hop sessions (best effort) rather than serve an admit a
		// restart would forget.
		c.releaseHops(req.Route, hopIDs)
		c.met.PartitionAborts.Add(1)
		return AdmitResult{}, fmt.Errorf("%w: admit: %v", ErrDurability, err)
	}
	c.nextID++
	c.byID[id] = len(c.sessions)
	c.sessions = append(c.sessions, clusterSession{
		id:     id,
		name:   req.Name,
		arr:    req.Arrival,
		route:  append([]int(nil), req.Route...),
		target: req.Target,
		hopIDs: hopIDs,
		shards: shards,
	})
	// The candidate was analyzed appended last, which is exactly the
	// committed set now — the cache is the admit's own analysis.
	c.analysis = an
	c.met.Admits.Add(1)
	return AdmitResult{
		Admitted: true,
		ID:       id,
		TxID:     txid,
		Bound:    bound,
		Hops:     c.hopsFor(an, cand, hopIDs),
	}, nil
}

// RouteBounds returns session id's bounds under the current committed
// set (recomputing the analysis only if a release invalidated the
// admit-time cache).
func (c *Coordinator) RouteBounds(id uint64) (RouteBounds, bool, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	idx, ok := c.byID[id]
	if !ok {
		return RouteBounds{}, false, nil
	}
	if c.analysis == nil {
		an, err := c.buildNetwork(nil).AnalyzeCRST(c.cfg.CRST)
		if err != nil {
			return RouteBounds{}, false, fmt.Errorf("cluster: reanalysis: %w", err)
		}
		c.analysis = an
	}
	s := c.sessions[idx]
	return RouteBounds{
		ID:     s.id,
		Name:   s.name,
		Target: s.target,
		Bound:  boundFor(c.analysis, idx, s.target),
		Hops:   c.hopsFor(c.analysis, idx, s.hopIDs),
	}, true, nil
}

// Release tears an end-to-end session down, releasing its hop sessions
// in route order. If any hop is unreachable the coordinator keeps the
// session and returns found=true with ErrPartition — the id is known,
// the release is merely incomplete, and the two must not be conflated
// (a caller that read "not found" would stop retrying and strand the
// remaining hop capacity). Hops that did release now carry less load
// than the coordinator's model, so the model stays conservative, and a
// retry re-releases idempotently (a hop that already dropped the
// session answers 404, which counts as released).
func (c *Coordinator) Release(id uint64) (bool, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	idx, ok := c.byID[id]
	if !ok {
		return false, nil
	}
	s := c.sessions[idx]
	for k, m := range s.route {
		if err := c.releaseHop(m, s.hopIDs[k]); err != nil {
			return true, fmt.Errorf("%w: release at %s: %v",
				ErrPartition, c.cfg.Topology.Nodes[m].Name, err)
		}
	}
	// Tombstone before memory: a coordinator that dies past this append
	// stays released after restart. On append failure the session is
	// kept — conservative, like a partial hop release — and the next
	// restart's reconcile sees its hop sessions gone and drops it.
	if err := c.journal(wal.Op{Kind: wal.KindRouteRelease, ID: id}); err != nil {
		return true, fmt.Errorf("%w: release: %v", ErrDurability, err)
	}
	c.removeSessionAt(idx)
	c.analysis = nil
	c.met.Releases.Add(1)
	return true, nil
}

// --- hop RPCs ---------------------------------------------------------

// Wire shapes mirror internal/server's HTTP surface.

type hopPrepareWire struct {
	TxID   string  `json:"txid"`
	Name   string  `json:"name"`
	Rho    float64 `json:"rho"`
	Lambda float64 `json:"lambda"`
	Alpha  float64 `json:"alpha"`
	Delay  float64 `json:"delay"`
	Eps    float64 `json:"eps"`
	Phi    float64 `json:"phi"`
	TTLms  int64   `json:"ttl_ms"`
}

type hopPrepareReply struct {
	Prepared bool    `json:"prepared"`
	Shard    int     `json:"shard"`
	Deadline int64   `json:"deadline_unix_nano"`
	Free     float64 `json:"free"`
	Reason   string  `json:"reason"`
}

type hopTxWire struct {
	TxID  string `json:"txid"`
	Shard int    `json:"shard"`
}

type hopCommitReply struct {
	Committed bool   `json:"committed"`
	ID        string `json:"id"`
	Reason    string `json:"reason"`
}

type hopCommitResult struct {
	Committed bool
	ID        uint64
	Reason    string
}

// postJSON POSTs body and decodes a 200 reply into out. Any non-200
// status or transport error is returned as an error — the caller
// treats it as a partition.
func (c *Coordinator) postJSON(url string, body, out any) error {
	buf, err := json.Marshal(body)
	if err != nil {
		return err
	}
	resp, err := c.client.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		snippet, _ := io.ReadAll(io.LimitReader(resp.Body, 256))
		return fmt.Errorf("HTTP %d: %s", resp.StatusCode, bytes.TrimSpace(snippet))
	}
	return json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(out)
}

// prepareHop reserves the candidate's weight at node m. The hop's
// target fields record the session's end-to-end objective; the
// authoritative end-to-end bound is the coordinator's CRST analysis
// (each hop alone would price the session against its local Theorem 4
// view, which knows nothing about upstream reshaping).
func (c *Coordinator) prepareHop(m int, txid string, req AdmitRequest) (hopPrepareReply, error) {
	var out hopPrepareReply
	err := c.postJSON(c.cfg.Topology.hopBase(m)+"/v1/prepare", hopPrepareWire{
		TxID:   txid,
		Name:   req.Name,
		Rho:    req.Arrival.Rho,
		Lambda: req.Arrival.Lambda,
		Alpha:  req.Arrival.Alpha,
		Delay:  req.Target.Delay,
		Eps:    req.Target.Eps,
		Phi:    req.Arrival.Rho,
		TTLms:  c.cfg.PrepareTTL.Milliseconds(),
	}, &out)
	return out, err
}

func (c *Coordinator) commitHop(m int, txid string, shard int) (hopCommitResult, error) {
	var out hopCommitReply
	if err := c.postJSON(c.cfg.Topology.hopBase(m)+"/v1/commit", hopTxWire{TxID: txid, Shard: shard}, &out); err != nil {
		return hopCommitResult{}, err
	}
	res := hopCommitResult{Committed: out.Committed, Reason: out.Reason}
	if out.Committed {
		id, err := parseUint(out.ID)
		if err != nil {
			return hopCommitResult{}, fmt.Errorf("commit reply id %q: %v", out.ID, err)
		}
		res.ID = id
	}
	return res, nil
}

// rollback aborts txid at each given hop, best effort: an unreachable
// hop keeps its prepare until the TTL expires it, which is exactly the
// capacity-safety backstop the TTL exists for.
func (c *Coordinator) rollback(txid string, route []int, shards []int) {
	for k, m := range route {
		var out map[string]any
		_ = c.postJSON(c.cfg.Topology.hopBase(m)+"/v1/abort", hopTxWire{TxID: txid, Shard: shards[k]}, &out)
	}
}

// releaseHop deletes one hop session; 404 counts as already released.
func (c *Coordinator) releaseHop(m int, hopID uint64) error {
	req, err := http.NewRequest(http.MethodDelete,
		fmt.Sprintf("%s/v1/sessions/%d", c.cfg.Topology.hopBase(m), hopID), nil)
	if err != nil {
		return err
	}
	resp, err := c.client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<16))
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusNotFound {
		return fmt.Errorf("HTTP %d", resp.StatusCode)
	}
	return nil
}

// releaseHops compensates a half-committed admit, best effort.
func (c *Coordinator) releaseHops(route []int, hopIDs []uint64) {
	for k, m := range route {
		_ = c.releaseHop(m, hopIDs[k])
	}
}

func parseUint(s string) (uint64, error) {
	return strconv.ParseUint(s, 10, 64)
}
