package cluster

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"

	"repro/internal/admission"
	"repro/internal/ebb"
)

// maxBody bounds coordinator request bodies, matching the hop daemons'
// admit-path strictness.
const maxBody = 1 << 16

// admitWire is the JSON shape of POST /v1/cluster/admit: the E.B.B.
// triple, the end-to-end delay target, and the route as topology node
// indices.
type admitWire struct {
	Name   string  `json:"name"`
	Rho    float64 `json:"rho"`
	Lambda float64 `json:"lambda"`
	Alpha  float64 `json:"alpha"`
	Delay  float64 `json:"delay"`
	Eps    float64 `json:"eps"`
	Route  []int   `json:"route"`
}

// hopWire is one hop's delay tail in a bound reply.
type hopWire struct {
	Node      int     `json:"node"`
	Name      string  `json:"name"`
	HopID     string  `json:"hop_id,omitempty"`
	G         float64 `json:"g"`
	Theta     float64 `json:"theta"`
	Prefactor float64 `json:"prefactor"`
	Rate      float64 `json:"rate"`
}

// boundWire carries an end-to-end guarantee. Floats round-trip
// bit-exactly through encoding/json (shortest-representation
// encoding), so offline tooling can compare these against its own
// analysis with Float64bits.
type boundWire struct {
	Delay        float64 `json:"delay"`
	Eps          float64 `json:"eps"`
	AchievedEps  float64 `json:"achieved_eps"`
	EnvPrefactor float64 `json:"env_prefactor"`
	EnvRate      float64 `json:"env_rate"`
}

type admitResponse struct {
	Admitted bool      `json:"admitted"`
	ID       string    `json:"id,omitempty"`
	TxID     string    `json:"txid,omitempty"`
	Reason   string    `json:"reason,omitempty"`
	E2E      boundWire `json:"e2e"`
	Hops     []hopWire `json:"hops,omitempty"`
}

type routeBoundsResponse struct {
	ID   string    `json:"id"`
	Name string    `json:"name"`
	E2E  boundWire `json:"e2e"`
	Hops []hopWire `json:"hops"`
}

type errorReply struct {
	Error string `json:"error"`
	Retry bool   `json:"retry,omitempty"`
}

func wireBound(b Bound) boundWire {
	return boundWire{
		Delay:        b.Delay,
		Eps:          b.Eps,
		AchievedEps:  b.AchievedEps,
		EnvPrefactor: b.EnvPrefactor,
		EnvRate:      b.EnvRate,
	}
}

func wireHops(hops []HopDelay) []hopWire {
	out := make([]hopWire, len(hops))
	for k, h := range hops {
		out[k] = hopWire{
			Node:      h.Node,
			Name:      h.Name,
			G:         h.G,
			Theta:     h.Theta,
			Prefactor: h.Prefactor,
			Rate:      h.Rate,
		}
		if h.HopID != 0 {
			out[k].HopID = strconv.FormatUint(h.HopID, 10)
		}
	}
	return out
}

type coordHandler struct {
	c *Coordinator
}

// NewHandler serves the coordinator API:
//
//	POST   /v1/cluster/admit          admit a session over a route
//	DELETE /v1/cluster/sessions/{id}  release an end-to-end session
//	GET    /v1/route-bounds/{id}      the session's composed guarantee
//	GET    /healthz                   liveness and committed-set size
//	GET    /metrics                   Prometheus text counters
func NewHandler(c *Coordinator) http.Handler {
	h := &coordHandler{c: c}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/cluster/admit", h.handleAdmit)
	mux.HandleFunc("DELETE /v1/cluster/sessions/{id}", h.handleRelease)
	mux.HandleFunc("GET /v1/route-bounds/{id}", h.handleRouteBounds)
	mux.HandleFunc("GET /healthz", h.handleHealthz)
	mux.HandleFunc("GET /metrics", h.handleMetrics)
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func decodeBody(r io.Reader, v any) error {
	dec := json.NewDecoder(io.LimitReader(r, maxBody))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("decode: %w", err)
	}
	if dec.More() {
		return errors.New("decode: trailing data after request object")
	}
	return nil
}

func (h *coordHandler) handleAdmit(w http.ResponseWriter, r *http.Request) {
	var aw admitWire
	if err := decodeBody(r.Body, &aw); err != nil {
		writeJSON(w, http.StatusBadRequest, errorReply{Error: err.Error()})
		return
	}
	res, err := h.c.Admit(AdmitRequest{
		Name:    aw.Name,
		Arrival: ebb.Process{Rho: aw.Rho, Lambda: aw.Lambda, Alpha: aw.Alpha},
		Route:   aw.Route,
		Target:  admission.Target{Delay: aw.Delay, Eps: aw.Eps},
	})
	if err != nil {
		if errors.Is(err, ErrPartition) || errors.Is(err, ErrDurability) {
			// Fail closed: the cluster's state is unchanged (modulo
			// TTL-bounded hop prepares); the client may retry.
			writeJSON(w, http.StatusServiceUnavailable, errorReply{Error: err.Error(), Retry: true})
			return
		}
		writeJSON(w, http.StatusBadRequest, errorReply{Error: err.Error()})
		return
	}
	resp := admitResponse{
		Admitted: res.Admitted,
		TxID:     res.TxID,
		Reason:   res.Reason,
		E2E:      wireBound(res.Bound),
		Hops:     wireHops(res.Hops),
	}
	if res.Admitted {
		resp.ID = strconv.FormatUint(res.ID, 10)
	}
	writeJSON(w, http.StatusOK, resp)
}

func (h *coordHandler) handleRelease(w http.ResponseWriter, r *http.Request) {
	id, err := strconv.ParseUint(r.PathValue("id"), 10, 64)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorReply{Error: "malformed session id"})
		return
	}
	ok, err := h.c.Release(id)
	// Order matters: a partial release comes back (true, err) and must
	// map to 503-retryable, never to 404 — a client that read "not
	// found" would stop retrying and strand the hops' remaining
	// capacity. Only (false, nil), a genuinely unknown id, is a 404.
	if err != nil {
		writeJSON(w, http.StatusServiceUnavailable, errorReply{Error: err.Error(), Retry: true})
		return
	}
	if !ok {
		writeJSON(w, http.StatusNotFound, errorReply{Error: "unknown session id"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"released": true, "id": strconv.FormatUint(id, 10)})
}

func (h *coordHandler) handleRouteBounds(w http.ResponseWriter, r *http.Request) {
	id, err := strconv.ParseUint(r.PathValue("id"), 10, 64)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorReply{Error: "malformed session id"})
		return
	}
	rb, ok, err := h.c.RouteBounds(id)
	if err != nil {
		writeJSON(w, http.StatusInternalServerError, errorReply{Error: err.Error()})
		return
	}
	if !ok {
		writeJSON(w, http.StatusNotFound, errorReply{Error: "unknown session id"})
		return
	}
	writeJSON(w, http.StatusOK, routeBoundsResponse{
		ID:   strconv.FormatUint(rb.ID, 10),
		Name: rb.Name,
		E2E:  wireBound(rb.Bound),
		Hops: wireHops(rb.Hops),
	})
}

func (h *coordHandler) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"status":   "ok",
		"mode":     "coordinator",
		"nodes":    len(h.c.cfg.Topology.Nodes),
		"sessions": h.c.Sessions(),
	})
}

func (h *coordHandler) handleMetrics(w http.ResponseWriter, r *http.Request) {
	m := h.c.Metrics()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	fmt.Fprintf(w, "# TYPE gpsd_coord_admits_total counter\ngpsd_coord_admits_total %d\n", m.Admits.Load())
	fmt.Fprintf(w, "# TYPE gpsd_coord_rejects_total counter\ngpsd_coord_rejects_total %d\n", m.Rejects.Load())
	fmt.Fprintf(w, "# TYPE gpsd_coord_partition_aborts_total counter\ngpsd_coord_partition_aborts_total %d\n", m.PartitionAborts.Load())
	fmt.Fprintf(w, "# TYPE gpsd_coord_releases_total counter\ngpsd_coord_releases_total %d\n", m.Releases.Load())
	fmt.Fprintf(w, "# TYPE gpsd_coord_commit_retries_total counter\ngpsd_coord_commit_retries_total %d\n", m.CommitRetries.Load())
	fmt.Fprintf(w, "# TYPE gpsd_coord_reconcile_drops_total counter\ngpsd_coord_reconcile_drops_total %d\n", m.ReconcileDrops.Load())
	fmt.Fprintf(w, "# TYPE gpsd_coord_orphan_releases_total counter\ngpsd_coord_orphan_releases_total %d\n", m.OrphanReleases.Load())
	fmt.Fprintf(w, "# TYPE gpsd_coord_sessions gauge\ngpsd_coord_sessions %d\n", h.c.Sessions())
}
