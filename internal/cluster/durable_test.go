package cluster

import (
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/ebb"
	"repro/internal/faults"
	"repro/internal/network"
	"repro/internal/paper"
	"repro/internal/server"
	"repro/internal/wal"
)

// rtFunc adapts a function to http.RoundTripper.
type rtFunc func(*http.Request) (*http.Response, error)

func (f rtFunc) RoundTrip(r *http.Request) (*http.Response, error) { return f(r) }

// dropAckTransport performs matching requests for real and then reports
// a transport error — the commit lands on the hop, the ack is lost on
// the wire. That is the scenario that used to strand committed hop
// capacity forever.
type dropAckTransport struct {
	inner http.RoundTripper
	host  string // hop whose acks get lost
	path  string

	mu    sync.Mutex
	drops int // remaining acks to swallow
}

func (t *dropAckTransport) RoundTrip(r *http.Request) (*http.Response, error) {
	resp, err := t.inner.RoundTrip(r)
	if err != nil {
		return resp, err
	}
	t.mu.Lock()
	drop := t.drops > 0 && r.URL.Host == t.host && r.URL.Path == t.path
	if drop {
		t.drops--
	}
	t.mu.Unlock()
	if drop {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return nil, fmt.Errorf("injected: ack lost for %s %s", r.Method, r.URL.Path)
	}
	return resp, nil
}

func hostOf(url string) string { return strings.TrimPrefix(url, "http://") }

// TestClusterCommitAckLostOnce: the commit lands but its ack is lost.
// The coordinator retries the same txid; the hop answers from its
// resolved-tx memory instead of admitting twice, and the admit succeeds
// with the hop's real session id.
func TestClusterCommitAckLostOnce(t *testing.T) {
	d1, h1 := startHop(t, server.Config{Rate: 1})
	d2, h2 := startHop(t, server.Config{Rate: 1})
	dt := &dropAckTransport{inner: http.DefaultTransport, host: hostOf(h2.URL), path: "/v1/commit", drops: 1}
	topo := Topology{Nodes: []HopNode{
		{Name: "node1", URL: h1.URL, Rate: 1},
		{Name: "node2", URL: h2.URL, Rate: 1},
	}}
	coord, err := New(Config{Topology: topo, Client: &http.Client{Transport: dt}})
	if err != nil {
		t.Fatal(err)
	}

	arr := ebb.Process{Rho: 0.25, Lambda: 1, Alpha: 0.9}
	res, err := coord.Admit(AdmitRequest{Name: "lossy", Arrival: arr, Route: []int{0, 1}, Target: treeTarget})
	if err != nil || !res.Admitted {
		t.Fatalf("admit = %+v err=%v, want success despite the lost ack", res, err)
	}
	if got := coord.Metrics().CommitRetries.Load(); got != 1 {
		t.Errorf("coordinator CommitRetries = %d, want 1", got)
	}
	if got := d2.Metrics().ClusterCommitRetries.Load(); got != 1 {
		t.Errorf("hop ClusterCommitRetries = %d, want 1 (idempotent replay)", got)
	}
	// Exactly one session per hop — the retry did not double-admit —
	// and the id the coordinator recorded is the hop's real one.
	want := math.Float64bits(arr.Rho)
	for i, d := range []*server.Daemon{d1, d2} {
		if got := usedBits(t, d); got != want {
			t.Errorf("hop %d: used bits %#x != %#x", i+1, got, want)
		}
		if d.Health().Sessions != 1 {
			t.Errorf("hop %d: %d sessions, want 1", i+1, d.Health().Sessions)
		}
	}
	if ok, err := coord.Release(res.ID); !ok || err != nil {
		t.Fatalf("release through the recorded hop ids: ok=%v err=%v", ok, err)
	}
	if got := usedBits(t, d2); got != 0 {
		t.Errorf("hop 2 used bits %#x after release, want 0", got)
	}
}

// TestClusterCommitAckLostTwice: both the commit and its retry lose
// their acks. The admit fails closed — and the abort the coordinator
// sends for the already-committed txid is compensated by the hop
// (abort-after-commit releases the session it created), so no hop
// capacity is stranded.
func TestClusterCommitAckLostTwice(t *testing.T) {
	d1, h1 := startHop(t, server.Config{Rate: 1})
	d2, h2 := startHop(t, server.Config{Rate: 1})
	dt := &dropAckTransport{inner: http.DefaultTransport, host: hostOf(h2.URL), path: "/v1/commit", drops: 2}
	topo := Topology{Nodes: []HopNode{
		{Name: "node1", URL: h1.URL, Rate: 1},
		{Name: "node2", URL: h2.URL, Rate: 1},
	}}
	coord, err := New(Config{Topology: topo, Client: &http.Client{Transport: dt}})
	if err != nil {
		t.Fatal(err)
	}

	arr := ebb.Process{Rho: 0.25, Lambda: 1, Alpha: 0.9}
	_, err = coord.Admit(AdmitRequest{Name: "doomed", Arrival: arr, Route: []int{0, 1}, Target: treeTarget})
	if !errors.Is(err, ErrPartition) {
		t.Fatalf("admit err = %v, want ErrPartition", err)
	}
	if got := coord.Metrics().CommitRetries.Load(); got != 1 {
		t.Errorf("coordinator CommitRetries = %d, want 1", got)
	}
	// node2 committed (twice over the wire: the second was an idempotent
	// replay) and then compensated the abort by releasing the session.
	if got := d2.Metrics().ClusterCommitRetries.Load(); got != 1 {
		t.Errorf("hop ClusterCommitRetries = %d, want 1", got)
	}
	if got := d2.Metrics().ClusterCompensations.Load(); got != 1 {
		t.Errorf("hop ClusterCompensations = %d, want 1 (abort-after-commit)", got)
	}
	for i, d := range []*server.Daemon{d1, d2} {
		if got := usedBits(t, d); got != 0 {
			t.Errorf("hop %d: used bits %#x stranded after abort, want exactly 0", i+1, got)
		}
		if d.Reserved() != 0 || d.PrepareCount() != 0 {
			t.Errorf("hop %d: leftover reservations", i+1)
		}
	}
	if coord.Sessions() != 0 {
		t.Errorf("coordinator recorded %d sessions", coord.Sessions())
	}
}

// TestClusterReleasePartialFailure: a mid-route hop failure during
// Release must come back found=true with an error — the id is known,
// the release merely incomplete — never (false, …), which a caller
// would read as "unknown session" and stop retrying. The retry then
// completes idempotently.
func TestClusterReleasePartialFailure(t *testing.T) {
	d1, h1 := startHop(t, server.Config{Rate: 1})
	d2, h2 := startHop(t, server.Config{Rate: 1})
	var failing bool
	var mu sync.Mutex
	h2host := hostOf(h2.URL)
	rt := rtFunc(func(r *http.Request) (*http.Response, error) {
		mu.Lock()
		fail := failing && r.Method == http.MethodDelete && r.URL.Host == h2host
		mu.Unlock()
		if fail {
			return nil, errors.New("injected: hop unreachable")
		}
		return http.DefaultTransport.RoundTrip(r)
	})
	topo := Topology{Nodes: []HopNode{
		{Name: "node1", URL: h1.URL, Rate: 1},
		{Name: "node2", URL: h2.URL, Rate: 1},
	}}
	coord, err := New(Config{Topology: topo, Client: &http.Client{Transport: rt}})
	if err != nil {
		t.Fatal(err)
	}
	res, err := coord.Admit(AdmitRequest{
		Name:    "sticky",
		Arrival: ebb.Process{Rho: 0.25, Lambda: 1, Alpha: 0.9},
		Route:   []int{0, 1},
		Target:  treeTarget,
	})
	if err != nil || !res.Admitted {
		t.Fatalf("admit: %+v %v", res, err)
	}

	mu.Lock()
	failing = true
	mu.Unlock()
	found, err := coord.Release(res.ID)
	if !found {
		t.Fatalf("partial release reported found=false (err=%v) — conflates unknown with incomplete", err)
	}
	if !errors.Is(err, ErrPartition) {
		t.Fatalf("partial release err = %v, want ErrPartition", err)
	}
	// The session stays in the model (conservative: node1 really did
	// release, so live load is only lower than modeled).
	if coord.Sessions() != 1 {
		t.Fatalf("coordinator dropped the session after a partial release")
	}
	if _, ok, err := coord.RouteBounds(res.ID); !ok || err != nil {
		t.Fatalf("RouteBounds after partial release: ok=%v err=%v", ok, err)
	}
	if err := d1.Rebuild(); err != nil {
		t.Fatal(err)
	}
	if d1.Health().Sessions != 0 {
		t.Fatalf("node1 still holds the session (release never reached it?)")
	}

	// Retry once the hop is back: node1's 404 counts as released,
	// node2 releases for real, and the session leaves the model.
	mu.Lock()
	failing = false
	mu.Unlock()
	found, err = coord.Release(res.ID)
	if !found || err != nil {
		t.Fatalf("retry release: found=%v err=%v", found, err)
	}
	if coord.Sessions() != 0 {
		t.Fatalf("session survived the completed release")
	}
	if got := usedBits(t, d2); got != 0 {
		t.Fatalf("node2 used bits %#x, want 0", got)
	}
	// A genuinely unknown id is (false, nil) — the other half of the
	// contract.
	if found, err := coord.Release(res.ID); found || err != nil {
		t.Fatalf("released id again: found=%v err=%v, want (false, nil)", found, err)
	}
	if found, err := coord.Release(9999); found || err != nil {
		t.Fatalf("unknown id: found=%v err=%v, want (false, nil)", found, err)
	}
}

// TestCoordinatorRecoveryEveryPrefix SIGKILLs the coordinator at every
// route-record boundary — after the journal append, before memory or
// the reply (cluster.coord.append) — then reboots from a copy of the
// journal. The recovered coordinator must serve RouteBounds
// bit-identical to the offline CRST analysis of the folded journal,
// reconcile must find nothing to repair (hops and journal agree at
// every boundary), and a previous-life session must release cleanly.
func TestCoordinatorRecoveryEveryPrefix(t *testing.T) {
	set, err := paper.Table2(paper.Set1Rho)
	if err != nil {
		t.Fatal(err)
	}
	full := paper.Tree(set)

	// Ops 1..4 are admits of the §6.3 tree sessions; op 5 releases the
	// last one. Crashing at append n leaves exactly n records durable.
	for n := uint64(1); n <= 5; n++ {
		t.Run(fmt.Sprintf("crash-at-append-%d", n), func(t *testing.T) {
			hops := make([]*server.Daemon, 3)
			topo := Topology{}
			for m := 0; m < 3; m++ {
				d, hs := startHop(t, server.Config{Rate: 1})
				hops[m] = d
				topo.Nodes = append(topo.Nodes, HopNode{Name: full.Nodes[m].Name, URL: hs.URL, Rate: 1})
			}
			walDir := filepath.Join(t.TempDir(), "coordwal")
			l, _, err := wal.Open(walDir, wal.Options{Sync: wal.SyncAlways})
			if err != nil {
				t.Fatal(err)
			}
			crashed := make(chan struct{})
			plan := &faults.CrashPlan{
				Point: CrashCoordAppend,
				Nth:   n,
				// The coordinator goroutine never runs another
				// instruction — SIGKILL as seen from inside. It wedges
				// holding c.mu, like a dead process holding nothing.
				KillFunc: func() { close(crashed); select {} },
			}
			coord, err := New(Config{Topology: topo, PrepareTTL: time.Hour, Log: l, Crash: plan})
			if err != nil {
				t.Fatal(err)
			}
			go func() {
				ids := make([]uint64, 0, len(set))
				for i, p := range set {
					first := 0
					if i >= 2 {
						first = 1
					}
					res, err := coord.Admit(AdmitRequest{
						Name:    paper.SessionNames[i],
						Arrival: p,
						Route:   []int{first, 2},
						Target:  treeTarget,
					})
					if err != nil || !res.Admitted {
						return
					}
					ids = append(ids, res.ID)
				}
				coord.Release(ids[3])
			}()
			select {
			case <-crashed:
			case <-time.After(10 * time.Second):
				t.Fatal("crashpoint never fired")
			}

			// Reboot from a copy of the dead coordinator's journal.
			bootDir := filepath.Join(t.TempDir(), "coordwal")
			copyDir(t, walDir, bootDir)
			l2, rec2, err := wal.Open(bootDir, wal.Options{Sync: wal.SyncAlways})
			if err != nil {
				t.Fatal(err)
			}
			st, err := wal.FoldRoutes(rec2.Ops)
			if err != nil {
				t.Fatal(err)
			}
			wantSessions := int(n)
			if n == 5 {
				wantSessions = 3 // 4 admits + 1 tombstone
			}
			if len(st.Sessions) != wantSessions {
				t.Fatalf("journal folds to %d sessions, want %d", len(st.Sessions), wantSessions)
			}
			coord2, err := New(Config{Topology: topo, PrepareTTL: time.Hour, Log: l2, Recovered: rec2})
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(func() { coord2.Close() })
			if coord2.Sessions() != wantSessions {
				t.Fatalf("recovered coordinator has %d sessions, want %d", coord2.Sessions(), wantSessions)
			}
			// The hops agree with the journal at every append boundary
			// (hop work always completes before the record): nothing for
			// reconcile to drop or sweep.
			m2 := coord2.Metrics()
			if m2.ReconcileDrops.Load() != 0 || m2.OrphanReleases.Load() != 0 {
				t.Fatalf("reconcile repaired a consistent boundary: %d drops, %d orphans",
					m2.ReconcileDrops.Load(), m2.OrphanReleases.Load())
			}

			// Every surviving session's RouteBounds must match the
			// offline analysis of the folded journal bit for bit.
			an, err := BuildNetwork(topo, st.Sessions).AnalyzeCRST(network.CRSTOptions{})
			if err != nil {
				t.Fatal(err)
			}
			for i, s := range st.Sessions {
				rb, ok, err := coord2.RouteBounds(s.ID)
				if err != nil || !ok {
					t.Fatalf("RouteBounds(%d): ok=%v err=%v", s.ID, ok, err)
				}
				if math.Float64bits(rb.Bound.AchievedEps) != math.Float64bits(an.EndToEndDelayTail(i)(s.Delay)) {
					t.Errorf("session %d: achieved eps %v != offline %v",
						s.ID, rb.Bound.AchievedEps, an.EndToEndDelayTail(i)(s.Delay))
				}
				env := an.EndToEndDelayExpTail(i)
				if math.Float64bits(rb.Bound.EnvPrefactor) != math.Float64bits(env.Prefactor) ||
					math.Float64bits(rb.Bound.EnvRate) != math.Float64bits(env.Rate) {
					t.Errorf("session %d: envelope %+v != offline %+v", s.ID, rb.Bound, env)
				}
				for k, hw := range rb.Hops {
					hb := an.Hops[i][k]
					if hw.Node != hb.Node || hw.HopID != s.HopIDs[k] ||
						math.Float64bits(hw.G) != math.Float64bits(hb.G) ||
						math.Float64bits(hw.Theta) != math.Float64bits(hb.Theta) ||
						math.Float64bits(hw.Prefactor) != math.Float64bits(hb.Delay.Prefactor) ||
						math.Float64bits(hw.Rate) != math.Float64bits(hb.Delay.Rate) {
						t.Errorf("session %d hop %d: %+v != offline %+v", s.ID, k, hw, hb)
					}
				}
			}

			// The recovered coordinator can release a session admitted by
			// its previous life: the journaled hop ids are live.
			victim := st.Sessions[0]
			if ok, err := coord2.Release(victim.ID); !ok || err != nil {
				t.Fatalf("releasing previous-life session %d: ok=%v err=%v", victim.ID, ok, err)
			}
			if err := hops[2].Rebuild(); err != nil {
				t.Fatal(err)
			}
			if got := hops[2].Health().Sessions; got != wantSessions-1 {
				t.Errorf("hop 3 has %d sessions after previous-life release, want %d", got, wantSessions-1)
			}
		})
	}
}

// TestCoordinatorReconcile exercises both repair rules at recovery:
// a journaled admit whose hop sessions are gone is dropped (tombstone
// journaled first), and unjournaled hop sessions older than the
// prepare TTL are orphan-released.
func TestCoordinatorReconcile(t *testing.T) {
	d1, h1 := startHop(t, server.Config{Rate: 1})
	d2, h2 := startHop(t, server.Config{Rate: 1})
	topo := Topology{Nodes: []HopNode{
		{Name: "node1", URL: h1.URL, Rate: 1},
		{Name: "node2", URL: h2.URL, Rate: 1},
	}}
	arr := ebb.Process{Rho: 0.2, Lambda: 1, Alpha: 0.9}

	walDir := filepath.Join(t.TempDir(), "coordwal")
	l, _, err := wal.Open(walDir, wal.Options{Sync: wal.SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	c1, err := New(Config{Topology: topo, PrepareTTL: time.Minute, Log: l})
	if err != nil {
		t.Fatal(err)
	}
	resA, err := c1.Admit(AdmitRequest{Name: "journaled", Arrival: arr, Route: []int{0, 1}, Target: treeTarget})
	if err != nil || !resA.Admitted {
		t.Fatalf("admit A: %+v %v", resA, err)
	}
	if err := c1.Close(); err != nil {
		t.Fatal(err)
	}

	// A second, stateless coordinator admits B through the same hops:
	// cluster-committed on the hops, journaled nowhere — the residue of
	// a coordinator that died between hop commit and journal append.
	c2, err := New(Config{Topology: topo, PrepareTTL: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	resB, err := c2.Admit(AdmitRequest{Name: "orphan", Arrival: arr, Route: []int{0, 1}, Target: treeTarget})
	if err != nil || !resB.Admitted {
		t.Fatalf("admit B: %+v %v", resB, err)
	}

	// A's hop sessions vanish behind the journal's back (an operator
	// cleanup, an expiry — anything that makes the journal stale).
	for k, hs := range []string{h1.URL, h2.URL} {
		req, err := http.NewRequest(http.MethodDelete,
			fmt.Sprintf("%s/v1/sessions/%d", hs, resA.Hops[k].HopID), nil)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("deleting A's hop session: HTTP %d", resp.StatusCode)
		}
	}

	// Reboot A's journal with a short TTL, after B's hop sessions have
	// outlived it: reconcile drops A and sweeps B.
	const ttl = 50 * time.Millisecond
	time.Sleep(3 * ttl)
	l2, rec2, err := wal.Open(walDir, wal.Options{Sync: wal.SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	c3, err := New(Config{Topology: topo, PrepareTTL: ttl, Log: l2, Recovered: rec2})
	if err != nil {
		t.Fatal(err)
	}
	if c3.Sessions() != 0 {
		t.Errorf("recovered coordinator has %d sessions, want 0", c3.Sessions())
	}
	m := c3.Metrics()
	if m.ReconcileDrops.Load() != 1 {
		t.Errorf("ReconcileDrops = %d, want 1", m.ReconcileDrops.Load())
	}
	if m.OrphanReleases.Load() != 2 {
		t.Errorf("OrphanReleases = %d, want 2 (B on both hops)", m.OrphanReleases.Load())
	}
	for i, d := range []*server.Daemon{d1, d2} {
		if got := usedBits(t, d); got != 0 {
			t.Errorf("hop %d: used bits %#x, want 0 after reconcile", i+1, got)
		}
		if d.Health().Sessions != 0 {
			t.Errorf("hop %d still holds %d sessions", i+1, d.Health().Sessions)
		}
	}
	if err := c3.Close(); err != nil {
		t.Fatal(err)
	}

	// The drop is durable: the journal now ends with A's tombstone, so
	// the NEXT restart folds to the same empty set with no repair.
	ops, err := wal.ReadOps(walDir, 0)
	if err != nil {
		t.Fatal(err)
	}
	last := ops[len(ops)-1]
	if last.Kind != wal.KindRouteRelease || last.ID != resA.ID {
		t.Fatalf("last journal op = %+v, want tombstone for %d", last, resA.ID)
	}
	st, err := wal.FoldRoutes(ops)
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Sessions) != 0 {
		t.Fatalf("journal folds to %d sessions after reconcile, want 0", len(st.Sessions))
	}
}

// BenchmarkCoordinatorChurn measures one release+re-admit cycle against
// a 10k-session set, with hop I/O stubbed out (the hop answers 404,
// which counts as released) — what remains is the coordinator's own
// bookkeeping, which used to be a linear scan per lookup.
func BenchmarkCoordinatorChurn(b *testing.B) {
	topo := Topology{Nodes: []HopNode{{Name: "n0", URL: "http://hop.invalid", Rate: 1e9}}}
	stub := rtFunc(func(r *http.Request) (*http.Response, error) {
		return &http.Response{StatusCode: http.StatusNotFound, Body: http.NoBody}, nil
	})
	c, err := New(Config{Topology: topo, Client: &http.Client{Transport: stub}})
	if err != nil {
		b.Fatal(err)
	}
	const n = 10000
	arr := ebb.Process{Rho: 1e-6, Lambda: 1, Alpha: 0.9}
	insert := func(id uint64) {
		c.byID[id] = len(c.sessions)
		c.sessions = append(c.sessions, clusterSession{
			id: id, arr: arr, route: []int{0}, hopIDs: []uint64{id}, shards: []int{0},
		})
	}
	for id := uint64(1); id <= n; id++ {
		insert(id)
	}
	c.nextID = n + 1
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		id := uint64(i%n) + 1
		ok, err := c.Release(id)
		if !ok || err != nil {
			b.Fatalf("release %d: ok=%v err=%v", id, ok, err)
		}
		c.mu.Lock()
		insert(id)
		c.mu.Unlock()
	}
}
