package cluster

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"

	"repro/internal/admission"
	"repro/internal/ebb"
	"repro/internal/network"
	"repro/internal/wal"
)

// Coordinator durability (DESIGN.md §15). The journal is an ordinary
// flat wal.Log whose op stream holds only route kinds: one
// KindRouteAdmit per committed end-to-end admission, one
// KindRouteRelease tombstone per release, appended durably before the
// caller sees the reply. Recovery is wal.FoldRoutes — a pure function
// of the op stream from empty, mirroring the live coordinator's
// swap-remove so session order (which feeds the CRST network build and
// is bit-load-bearing) survives the restart exactly.

// CrashCoordAppend is the coordinator crashpoint between journaling a
// route record and mutating memory or replying — the boundary the
// every-prefix recovery test SIGKILLs at. A coordinator killed here has
// the record on disk but never answered the client.
const CrashCoordAppend = "cluster.coord.append"

// journal appends one route op to the coordinator's log (a no-op
// without one), feeds the audit sink the seq-stamped op, and consults
// the crashpoint. Callers append before mutating memory or replying.
func (c *Coordinator) journal(o wal.Op) error {
	if c.cfg.Log != nil {
		ops := []wal.Op{o}
		if err := c.cfg.Log.Append(ops); err != nil {
			return err
		}
		if c.cfg.Audit != nil {
			c.cfg.Audit.Record(ops[0])
		}
	}
	if c.cfg.Crash != nil && c.cfg.Crash.Armed(CrashCoordAppend) {
		c.cfg.Crash.Kill()
	}
	return nil
}

// removeSessionAt swap-removes sessions[idx], maintaining byID. The
// move exactly mirrors wal.FoldRoutes, so an offline fold of the
// journal reproduces the live session order bit for bit.
func (c *Coordinator) removeSessionAt(idx int) {
	last := len(c.sessions) - 1
	id := c.sessions[idx].id
	if idx != last {
		moved := c.sessions[last]
		c.sessions[idx] = moved
		c.byID[moved.id] = idx
	}
	c.sessions[last] = clusterSession{}
	c.sessions = c.sessions[:last]
	delete(c.byID, id)
}

// foldRecovered rebuilds the session set from the previous life's
// journal. Coordinator logs never snapshot, so a snapshot in the
// directory means it is not a coordinator WAL.
func (c *Coordinator) foldRecovered(rec *wal.Recovered) error {
	if rec.State.Seq != 0 {
		return fmt.Errorf("cluster: WAL carries a snapshot at seq %d; coordinator journals fold from empty (is this a hop WAL?)", rec.State.Seq)
	}
	st, err := wal.FoldRoutes(rec.Ops)
	if err != nil {
		return fmt.Errorf("cluster: recovering journal: %w", err)
	}
	n := len(c.cfg.Topology.Nodes)
	for i, s := range st.Sessions {
		for _, m := range s.Route {
			if m < 0 || m >= n {
				return fmt.Errorf("cluster: recovered session %d routes through node %d of a %d-node topology (journal does not match -topology)", s.ID, m, n)
			}
		}
		c.sessions = append(c.sessions, clusterSession{
			id:     s.ID,
			name:   s.Name,
			arr:    ebb.Process{Rho: s.Rho, Lambda: s.Lambda, Alpha: s.Alpha},
			route:  s.Route,
			target: admission.Target{Delay: s.Delay, Eps: s.Eps},
			hopIDs: s.HopIDs,
			shards: s.Shards,
		})
		c.byID[s.ID] = i
	}
	if st.NextID >= c.nextID {
		c.nextID = st.NextID + 1
	}
	return nil
}

// reconcile squares the recovered session set with the hops' durable
// truth, best effort — an unreachable hop defers to the next restart or
// an operator retry:
//
//   - a journaled admit whose hop sessions expired is dropped. The
//     tombstone is journaled first, so even when releasing its
//     surviving hop sessions fails they become unreferenced orphans the
//     next sweep reclaims;
//   - an unjournaled hop session older than the prepare TTL is
//     orphan-released: it can only be the residue of an admit whose
//     coordinator died between hop commit and journal append. Younger
//     ones may belong to an admit in flight elsewhere (a warm standby
//     mid-promotion), so the TTL guards them.
func (c *Coordinator) reconcile() {
	for i := 0; i < len(c.sessions); {
		s := c.sessions[i]
		gone := false
		for k, m := range s.route {
			exists, known := c.probeHopSession(m, s.hopIDs[k])
			if known && !exists {
				gone = true
				break
			}
		}
		if !gone {
			i++
			continue
		}
		if err := c.journal(wal.Op{Kind: wal.KindRouteRelease, ID: s.id}); err != nil {
			// Keep it: a conservative model beats a lost tombstone.
			i++
			continue
		}
		c.releaseHops(s.route, s.hopIDs)
		c.removeSessionAt(i) // the swapped-in tail element lands at i; re-check it
		c.met.ReconcileDrops.Add(1)
	}

	referenced := make(map[int]map[uint64]bool)
	for _, s := range c.sessions {
		for k, m := range s.route {
			if referenced[m] == nil {
				referenced[m] = make(map[uint64]bool)
			}
			referenced[m][s.hopIDs[k]] = true
		}
	}
	ttlMs := c.cfg.PrepareTTL.Milliseconds()
	for m := range c.cfg.Topology.Nodes {
		entries, err := c.hopClusterSessions(m)
		if err != nil {
			continue
		}
		for _, e := range entries {
			if referenced[m][e.id] || e.ageMs <= ttlMs {
				continue
			}
			if c.releaseHop(m, e.id) == nil {
				c.met.OrphanReleases.Add(1)
			}
		}
	}
}

// probeHopSession asks node m whether hop session hopID still exists.
// 200 and 425 (admitted but not yet in a published epoch) mean yes,
// 404 means no; anything else — transport failure, a shedding hop — is
// unknown and the caller keeps its state.
func (c *Coordinator) probeHopSession(m int, hopID uint64) (exists, known bool) {
	resp, err := c.client.Get(fmt.Sprintf("%s/v1/bounds/%d", c.cfg.Topology.hopBase(m), hopID))
	if err != nil {
		return false, false
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<16))
	switch resp.StatusCode {
	case http.StatusOK, http.StatusTooEarly:
		return true, true
	case http.StatusNotFound:
		return false, true
	default:
		return false, false
	}
}

// hopClusterEntry is one live cluster-committed session on a hop, with
// its age on the hop's own clock.
type hopClusterEntry struct {
	id    uint64
	txid  string
	ageMs int64
}

// hopClusterSessions fetches node m's cluster-committed session list —
// the orphan sweep's feed.
func (c *Coordinator) hopClusterSessions(m int) ([]hopClusterEntry, error) {
	resp, err := c.client.Get(c.cfg.Topology.hopBase(m) + "/v1/cluster/sessions")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<16))
		return nil, fmt.Errorf("HTTP %d", resp.StatusCode)
	}
	var wire struct {
		Sessions []struct {
			ID    string `json:"id"`
			TxID  string `json:"txid"`
			AgeMs int64  `json:"age_ms"`
		} `json:"sessions"`
	}
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&wire); err != nil {
		return nil, err
	}
	out := make([]hopClusterEntry, 0, len(wire.Sessions))
	for _, s := range wire.Sessions {
		id, err := parseUint(s.ID)
		if err != nil {
			return nil, fmt.Errorf("cluster sessions id %q: %v", s.ID, err)
		}
		out = append(out, hopClusterEntry{id: id, txid: s.TxID, ageMs: s.AgeMs})
	}
	return out, nil
}

// BuildNetwork assembles the CRST model for a folded journal state:
// topology nodes plus every recorded session in fold order with φ = ρ
// at each hop — exactly the network the live coordinator analyzes, so
// offline tooling (tools/walcheck) reproduces RouteBounds bit for bit.
func BuildNetwork(topo Topology, sessions []wal.RouteSessionRecord) network.Network {
	nw := network.Network{Nodes: make([]network.Node, len(topo.Nodes))}
	for m, n := range topo.Nodes {
		nw.Nodes[m] = network.Node{Name: n.Name, Rate: n.Rate}
	}
	for _, s := range sessions {
		phi := make([]float64, len(s.Route))
		for k := range phi {
			phi[k] = s.Rho
		}
		nw.Sessions = append(nw.Sessions, network.Session{
			Name:    s.Name,
			Arrival: ebb.Process{Rho: s.Rho, Lambda: s.Lambda, Alpha: s.Alpha},
			Route:   append([]int(nil), s.Route...),
			Phi:     phi,
		})
	}
	return nw
}

// Close closes the coordinator's journal, if any.
func (c *Coordinator) Close() error {
	if c.cfg.Log != nil {
		return c.cfg.Log.Close()
	}
	return nil
}
