package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/admission"
	"repro/internal/ebb"
	"repro/internal/faults"
	"repro/internal/network"
	"repro/internal/paper"
	"repro/internal/server"
	"repro/internal/wal"
)

// startHop boots one in-process gpsd and serves it over HTTP. Cleanup
// closes the HTTP listener before draining the daemon.
func startHop(t *testing.T, cfg server.Config) (*server.Daemon, *httptest.Server) {
	t.Helper()
	if cfg.MaxEpochAge == 0 {
		cfg.MaxEpochAge = time.Hour
	}
	d, err := server.New(cfg)
	if err != nil {
		t.Fatalf("server.New: %v", err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := d.Close(ctx); err != nil {
			t.Errorf("hop close: %v", err)
		}
	})
	hs := httptest.NewServer(server.NewHandler(d))
	t.Cleanup(hs.Close)
	return d, hs
}

// usedBits folds the daemon's epoch and returns Σφ as raw bits.
func usedBits(t *testing.T, d *server.Daemon) uint64 {
	t.Helper()
	if err := d.Rebuild(); err != nil {
		t.Fatalf("rebuild: %v", err)
	}
	return math.Float64bits(d.Health().Used)
}

// treeTarget admits all four §6.3 sessions: the loosest prefix bound
// (session 4 against the full tree) is ~1.8e-5 at d=200.
var treeTarget = admission.Target{Delay: 200, Eps: 1e-3}

// TestClusterDifferentialTree is the acceptance differential: admitting
// the paper's §6.3 tree through three real daemons must return, at
// every step, an end-to-end bound bit-identical to the offline
// internal/network CRST analysis of the same prefix — and the daemons'
// Σφ must equal the same sums the offline model carries.
func TestClusterDifferentialTree(t *testing.T) {
	set, err := paper.Table2(paper.Set1Rho)
	if err != nil {
		t.Fatal(err)
	}
	full := paper.Tree(set)

	hops := make([]*server.Daemon, 3)
	topo := Topology{}
	for m := 0; m < 3; m++ {
		d, hs := startHop(t, server.Config{Rate: 1})
		hops[m] = d
		topo.Nodes = append(topo.Nodes, HopNode{Name: full.Nodes[m].Name, URL: hs.URL, Rate: 1})
	}
	coord, err := New(Config{Topology: topo, PrepareTTL: time.Minute})
	if err != nil {
		t.Fatal(err)
	}

	ids := make([]uint64, len(set))
	for i, p := range set {
		first := 0
		if i >= 2 {
			first = 1
		}
		res, err := coord.Admit(AdmitRequest{
			Name:    paper.SessionNames[i],
			Arrival: p,
			Route:   []int{first, 2},
			Target:  treeTarget,
		})
		if err != nil {
			t.Fatalf("admit %d: %v", i, err)
		}
		if !res.Admitted {
			t.Fatalf("admit %d refused: %s", i, res.Reason)
		}
		ids[i] = res.ID

		// Offline reference: the same prefix of the same tree.
		pre := network.Network{Nodes: full.Nodes, Sessions: full.Sessions[:i+1]}
		an, err := pre.AnalyzeCRST(network.CRSTOptions{})
		if err != nil {
			t.Fatalf("offline prefix %d: %v", i+1, err)
		}
		wantTail := an.EndToEndDelayTail(i)(treeTarget.Delay)
		if math.Float64bits(res.Bound.AchievedEps) != math.Float64bits(wantTail) {
			t.Errorf("admit %d: achieved eps %v != offline %v", i, res.Bound.AchievedEps, wantTail)
		}
		env := an.EndToEndDelayExpTail(i)
		if math.Float64bits(res.Bound.EnvPrefactor) != math.Float64bits(env.Prefactor) ||
			math.Float64bits(res.Bound.EnvRate) != math.Float64bits(env.Rate) {
			t.Errorf("admit %d: envelope %+v != offline %+v", i, res.Bound, env)
		}
		if len(res.Hops) != 2 {
			t.Fatalf("admit %d: %d hops", i, len(res.Hops))
		}
		for k, hw := range res.Hops {
			hb := an.Hops[i][k]
			if hw.Node != hb.Node ||
				math.Float64bits(hw.G) != math.Float64bits(hb.G) ||
				math.Float64bits(hw.Theta) != math.Float64bits(hb.Theta) ||
				math.Float64bits(hw.Prefactor) != math.Float64bits(hb.Delay.Prefactor) ||
				math.Float64bits(hw.Rate) != math.Float64bits(hb.Delay.Rate) {
				t.Errorf("admit %d hop %d: %+v != offline %+v", i, k, hw, hb)
			}
		}
	}

	// Each hop's Σφ is the admission-order sum of the ρ's routed
	// through it — the same fold the offline model's totalPhiAt does.
	for m, d := range hops {
		want := 0.0
		for i, s := range full.Sessions {
			_ = i
			for k, node := range s.Route {
				if node == m {
					want += s.Phi[k]
				}
			}
		}
		if got := usedBits(t, d); got != math.Float64bits(want) {
			t.Errorf("hop %d: used bits %#x != offline sum bits %#x", m, got, math.Float64bits(want))
		}
		if d.Reserved() != 0 || d.PrepareCount() != 0 {
			t.Errorf("hop %d: leftover reservations after commits", m)
		}
	}

	// RouteBounds under the full committed set, including across the
	// coordinator's own HTTP surface (floats survive JSON bit-exactly).
	anFull, err := full.AnalyzeCRST(network.CRSTOptions{})
	if err != nil {
		t.Fatal(err)
	}
	cs := httptest.NewServer(NewHandler(coord))
	defer cs.Close()
	for i, id := range ids {
		rb, ok, err := coord.RouteBounds(id)
		if err != nil || !ok {
			t.Fatalf("RouteBounds(%d): ok=%v err=%v", id, ok, err)
		}
		want := anFull.EndToEndDelayTail(i)(treeTarget.Delay)
		if math.Float64bits(rb.Bound.AchievedEps) != math.Float64bits(want) {
			t.Errorf("route-bounds %d: %v != offline %v", i, rb.Bound.AchievedEps, want)
		}

		resp, err := http.Get(fmt.Sprintf("%s/v1/route-bounds/%d", cs.URL, id))
		if err != nil {
			t.Fatal(err)
		}
		var wire routeBoundsResponse
		if err := json.NewDecoder(resp.Body).Decode(&wire); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if math.Float64bits(wire.E2E.AchievedEps) != math.Float64bits(want) {
			t.Errorf("route-bounds %d over HTTP: %v != offline %v", i, wire.E2E.AchievedEps, want)
		}
	}

	// Release the last session end to end: hop session counts drop and
	// the invalidated analysis recomputes to the three-session prefix.
	ok, err := coord.Release(ids[3])
	if err != nil || !ok {
		t.Fatalf("Release: ok=%v err=%v", ok, err)
	}
	if err := hops[2].Rebuild(); err != nil {
		t.Fatal(err)
	}
	if hops[2].Health().Sessions != 3 {
		t.Errorf("hop 3 still has %d sessions after release", hops[2].Health().Sessions)
	}
	pre3 := network.Network{Nodes: full.Nodes, Sessions: full.Sessions[:3]}
	an3, err := pre3.AnalyzeCRST(network.CRSTOptions{})
	if err != nil {
		t.Fatal(err)
	}
	rb, ok, err := coord.RouteBounds(ids[0])
	if err != nil || !ok {
		t.Fatalf("RouteBounds after release: ok=%v err=%v", ok, err)
	}
	want := an3.EndToEndDelayTail(0)(treeTarget.Delay)
	if math.Float64bits(rb.Bound.AchievedEps) != math.Float64bits(want) {
		t.Errorf("post-release bounds %v != offline 3-session prefix %v", rb.Bound.AchievedEps, want)
	}
	if m := coord.Metrics(); m.Admits.Load() != 4 || m.Releases.Load() != 1 {
		t.Errorf("metrics: %d admits, %d releases", m.Admits.Load(), m.Releases.Load())
	}
}

// TestClusterHopRefusalRollsBack: a hop whose daemon holds less
// capacity than the topology claims refuses its prepare; the admit is
// an orderly reject and the hops that had already prepared are rolled
// back to bit-identical state.
func TestClusterHopRefusalRollsBack(t *testing.T) {
	d1, h1 := startHop(t, server.Config{Rate: 1})
	d2, h2 := startHop(t, server.Config{Rate: 1})
	d3, h3 := startHop(t, server.Config{Rate: 0.3}) // lies about itself
	topo := Topology{Nodes: []HopNode{
		{Name: "node1", URL: h1.URL, Rate: 1},
		{Name: "node2", URL: h2.URL, Rate: 1},
		{Name: "node3", URL: h3.URL, Rate: 1},
	}}
	coord, err := New(Config{Topology: topo})
	if err != nil {
		t.Fatal(err)
	}
	arr := ebb.Process{Rho: 0.25, Lambda: 1, Alpha: 0.9}

	res, err := coord.Admit(AdmitRequest{Name: "first", Arrival: arr, Route: []int{0, 2}, Target: treeTarget})
	if err != nil || !res.Admitted {
		t.Fatalf("first admit = %+v err=%v", res, err)
	}

	// node3 is at 0.25/0.3: the second session fits the coordinator's
	// model (0.5 < 1) but not the daemon.
	res, err = coord.Admit(AdmitRequest{Name: "second", Arrival: arr, Route: []int{1, 2}, Target: treeTarget})
	if err != nil {
		t.Fatalf("second admit errored (want orderly reject): %v", err)
	}
	if res.Admitted || res.Reason == "" {
		t.Fatalf("second admit = %+v, want refusal with reason", res)
	}

	// node2 prepared first and must be fully rolled back.
	if d2.Reserved() != 0 || d2.PrepareCount() != 0 {
		t.Errorf("node2: reserved %v, %d prepares after rollback", d2.Reserved(), d2.PrepareCount())
	}
	if got := usedBits(t, d2); got != 0 {
		t.Errorf("node2: used bits %#x after rollback, want exactly 0", got)
	}
	// node3 never held anything; node1's committed session is intact.
	if d3.Reserved() != 0 || d3.PrepareCount() != 0 {
		t.Errorf("node3: reserved %v, %d prepares", d3.Reserved(), d3.PrepareCount())
	}
	if err := d1.Rebuild(); err != nil {
		t.Fatal(err)
	}
	if d1.Health().Sessions != 1 {
		t.Errorf("node1 lost its committed session")
	}
	if coord.Sessions() != 1 {
		t.Errorf("coordinator has %d sessions, want 1", coord.Sessions())
	}
}

// TestClusterAdmitFailClosed is the partition table: every way a hop
// can fail mid-protocol aborts the admit, and every surviving hop's Σφ
// and reservation state come back to exactly the pre-admit values.
func TestClusterAdmitFailClosed(t *testing.T) {
	const hopTimeout = 300 * time.Millisecond
	background := server.AdmitRequest{
		Name:    "background",
		Arrival: ebb.Process{Rho: 0.3, Lambda: 1, Alpha: 1},
		Target:  admission.Target{Delay: 50, Eps: 1e-3},
	}

	cases := []struct {
		name          string
		handler       http.HandlerFunc
		closed        bool // fake hop listener already down
		background    bool // pre-admit weight on the surviving hops
		wantPartition bool
	}{
		{
			name: "prepare-500",
			handler: func(w http.ResponseWriter, r *http.Request) {
				http.Error(w, "wal: disk failed", http.StatusInternalServerError)
			},
			background:    true,
			wantPartition: true,
		},
		{
			name: "prepare-timeout",
			handler: func(w http.ResponseWriter, r *http.Request) {
				time.Sleep(2 * hopTimeout)
				writeJSON(w, http.StatusOK, map[string]any{"prepared": true, "shard": 0})
			},
			background:    true,
			wantPartition: true,
		},
		{
			name:          "prepare-refused",
			closed:        true,
			background:    true,
			wantPartition: true,
		},
		{
			name: "prepared-false",
			handler: func(w http.ResponseWriter, r *http.Request) {
				writeJSON(w, http.StatusOK, map[string]any{"prepared": false, "reason": "insufficient headroom"})
			},
			background:    true,
			wantPartition: false,
		},
		{
			// Commit-phase failure: the surviving hops committed and
			// are compensated by release, which restores counts (the
			// running Σφ is a running sum, so only a hop emptied of
			// sessions is bit-restored — here the pre state is empty).
			name: "commit-500",
			handler: func(w http.ResponseWriter, r *http.Request) {
				if r.URL.Path == "/v1/prepare" {
					writeJSON(w, http.StatusOK, map[string]any{"prepared": true, "shard": 0})
					return
				}
				http.Error(w, "wal: disk failed", http.StatusInternalServerError)
			},
			background:    false,
			wantPartition: true,
		},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			d1, h1 := startHop(t, server.Config{Rate: 1})
			d2, h2 := startHop(t, server.Config{Rate: 1})
			fake := httptest.NewServer(tc.handler)
			if tc.closed {
				fake.Close()
			} else {
				t.Cleanup(fake.Close)
			}
			topo := Topology{Nodes: []HopNode{
				{Name: "node1", URL: h1.URL, Rate: 1},
				{Name: "node2", URL: h2.URL, Rate: 1},
				{Name: "node3", URL: fake.URL, Rate: 1},
			}}
			coord, err := New(Config{Topology: topo, HopTimeout: hopTimeout})
			if err != nil {
				t.Fatal(err)
			}

			pre := make([]uint64, 2)
			for i, d := range []*server.Daemon{d1, d2} {
				if tc.background {
					if res, err := d.Admit(background); err != nil || !res.Admitted {
						t.Fatalf("background admit: %+v %v", res, err)
					}
				}
				pre[i] = usedBits(t, d)
			}

			res, err := coord.Admit(AdmitRequest{
				Name:    "doomed",
				Arrival: ebb.Process{Rho: 0.25, Lambda: 1, Alpha: 0.9},
				Route:   []int{0, 1, 2},
				// Looser than treeTarget: a lone session over three
				// hops composes to ~2.2e-3 at d=200.
				Target: admission.Target{Delay: 200, Eps: 0.02},
			})
			if tc.wantPartition {
				if !errors.Is(err, ErrPartition) {
					t.Fatalf("err = %v, want ErrPartition", err)
				}
			} else {
				if err != nil {
					t.Fatalf("err = %v, want orderly reject", err)
				}
				if res.Admitted || res.Reason == "" {
					t.Fatalf("res = %+v, want refusal with reason", res)
				}
			}

			for i, d := range []*server.Daemon{d1, d2} {
				if d.PrepareCount() != 0 {
					t.Errorf("hop %d: %d prepares survive the abort", i+1, d.PrepareCount())
				}
				if got := d.Reserved(); got != 0 {
					t.Errorf("hop %d: reserved %v, want exactly 0", i+1, got)
				}
				if got := usedBits(t, d); got != pre[i] {
					t.Errorf("hop %d: used bits %#x != pre-admit %#x", i+1, got, pre[i])
				}
			}
			if coord.Sessions() != 0 {
				t.Errorf("coordinator recorded %d sessions", coord.Sessions())
			}
			m := coord.Metrics()
			if tc.wantPartition && m.PartitionAborts.Load() != 1 {
				t.Errorf("PartitionAborts = %d", m.PartitionAborts.Load())
			}
			if !tc.wantPartition && m.Rejects.Load() != 1 {
				t.Errorf("Rejects = %d", m.Rejects.Load())
			}
		})
	}
}

func copyDir(t *testing.T, src, dst string) {
	t.Helper()
	if err := os.MkdirAll(dst, 0o755); err != nil {
		t.Fatal(err)
	}
	ents, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		if e.IsDir() {
			copyDir(t, filepath.Join(src, e.Name()), filepath.Join(dst, e.Name()))
			continue
		}
		b, err := os.ReadFile(filepath.Join(src, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dst, e.Name()), b, 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

// TestClusterPrepareCrashRecoveryExpiry is the in-doubt-prepare
// regression across the whole stack: a hop daemon dies (wedges, which
// is what SIGKILL looks like from the wire) at the cluster.prepare
// crashpoint — after journaling the prepare, before replying. The
// coordinator times out and fails closed; the surviving hop is rolled
// back bit-exactly; and a daemon rebooted from the dead hop's WAL
// expires the in-doubt reservation on its own, journaling KindExpire.
func TestClusterPrepareCrashRecoveryExpiry(t *testing.T) {
	d1, h1 := startHop(t, server.Config{Rate: 1})

	walDir := filepath.Join(t.TempDir(), "wal")
	l, rec, err := wal.Open(walDir, wal.Options{Sync: wal.SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	crashed := make(chan struct{})
	plan := &faults.CrashPlan{
		Point: server.CrashClusterPrepare,
		Nth:   1,
		// SIGKILL from the process's own point of view: the writer
		// goroutine never runs another instruction. The daemon and its
		// listener are deliberately leaked — closing either would block
		// on the wedged writer, exactly like waiting on a dead process.
		KillFunc: func() { close(crashed); select {} },
	}
	d2, err := server.New(server.Config{Rate: 1, MaxEpochAge: time.Hour, Log: l, Recovered: rec, Crash: plan})
	if err != nil {
		t.Fatal(err)
	}
	_ = d2
	h2 := httptest.NewServer(server.NewHandler(d2))

	topo := Topology{Nodes: []HopNode{
		{Name: "node1", URL: h1.URL, Rate: 1},
		{Name: "node2", URL: h2.URL, Rate: 1},
	}}
	const ttl = 300 * time.Millisecond
	coord, err := New(Config{Topology: topo, PrepareTTL: ttl, HopTimeout: 200 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}

	_, err = coord.Admit(AdmitRequest{
		Name:    "in doubt",
		Arrival: ebb.Process{Rho: 0.25, Lambda: 1, Alpha: 0.9},
		Route:   []int{0, 1},
		Target:  treeTarget,
	})
	if !errors.Is(err, ErrPartition) {
		t.Fatalf("admit err = %v, want ErrPartition", err)
	}
	select {
	case <-crashed:
	case <-time.After(5 * time.Second):
		t.Fatal("crashpoint never fired")
	}

	// The surviving hop fails closed to its pre-admit state.
	if d1.Reserved() != 0 || d1.PrepareCount() != 0 {
		t.Fatalf("node1: reserved %v, %d prepares after partition", d1.Reserved(), d1.PrepareCount())
	}
	if got := usedBits(t, d1); got != 0 {
		t.Fatalf("node1: used bits %#x, want 0", got)
	}

	// The dead hop's disk holds exactly one op: the in-doubt prepare.
	bootDir := filepath.Join(t.TempDir(), "wal")
	copyDir(t, walDir, bootDir)
	ops, err := wal.ReadOps(bootDir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(ops) != 1 || ops[0].Kind != wal.KindPrepare {
		t.Fatalf("dead hop ops = %+v, want one prepare", ops)
	}
	txid, deadline := ops[0].TxID, ops[0].Deadline

	// Reboot it after the TTL: recovery must expire the reservation
	// before serving, leaving zero reserved weight and a journaled
	// expiry for the audit trail.
	if wait := time.Until(time.Unix(0, deadline)) + 50*time.Millisecond; wait > 0 {
		time.Sleep(wait)
	}
	l2, rec2, err := wal.Open(bootDir, wal.Options{Sync: wal.SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	d3, err := server.New(server.Config{Rate: 1, MaxEpochAge: time.Hour, Log: l2, Recovered: rec2})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := d3.Close(ctx); err != nil {
			t.Errorf("reboot close: %v", err)
		}
	})
	if d3.PrepareCount() != 0 || d3.Reserved() != 0 {
		t.Fatalf("reboot: %d prepares, reserved %v — in-doubt prepare survived",
			d3.PrepareCount(), d3.Reserved())
	}
	if d3.Metrics().ClusterExpires.Load() != 1 {
		t.Fatalf("ClusterExpires = %d", d3.Metrics().ClusterExpires.Load())
	}
	ops, err = wal.ReadOps(bootDir, 0)
	if err != nil {
		t.Fatal(err)
	}
	last := ops[len(ops)-1]
	if last.Kind != wal.KindExpire || last.TxID != txid {
		t.Fatalf("last op = %+v, want expire of %s", last, txid)
	}
	var st wal.State
	if err := wal.Replay(&st, ops); err != nil {
		t.Fatal(err)
	}
	if len(st.Sessions) != 0 || len(st.Prepares) != 0 || st.Used != 0 {
		t.Fatalf("folded dead-hop state not clean: %+v", st)
	}
}

// TestLoadTopology covers the config loader's validation.
func TestLoadTopology(t *testing.T) {
	dir := t.TempDir()
	write := func(name, body string) string {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}

	good := write("good.json", `{"nodes": [
		{"name": "node1", "url": "http://127.0.0.1:9001", "rate": 1},
		{"name": "node2", "url": "http://127.0.0.1:9002/", "rate": 2.5}
	]}`)
	topo, err := LoadTopology(good)
	if err != nil {
		t.Fatalf("LoadTopology: %v", err)
	}
	if len(topo.Nodes) != 2 || topo.hopBase(1) != "http://127.0.0.1:9002" {
		t.Fatalf("topology = %+v", topo)
	}

	bad := []struct{ name, body string }{
		{"empty.json", `{"nodes": []}`},
		{"dup.json", `{"nodes": [{"name":"a","url":"http://x","rate":1},{"name":"a","url":"http://y","rate":1}]}`},
		{"rate.json", `{"nodes": [{"name":"a","url":"http://x","rate":0}]}`},
		{"scheme.json", `{"nodes": [{"name":"a","url":"ftp://x","rate":1}]}`},
		{"unknown.json", `{"nodez": []}`},
		{"trailing.json", `{"nodes": [{"name":"a","url":"http://x","rate":1}]}{}`},
	}
	for _, c := range bad {
		if _, err := LoadTopology(write(c.name, c.body)); err == nil {
			t.Errorf("%s: loaded without error", c.name)
		}
	}
	if _, err := LoadTopology(filepath.Join(dir, "missing.json")); err == nil {
		t.Error("missing file loaded without error")
	}
}
