package pgps

import "testing"

// The scheduler hot paths must not allocate once warmed up: WFQ's
// hand-rolled heap and WF2Q's in-place item list reuse their slices, and
// FCFS's ring reuses its circular buffer. These tests pin that at zero
// allocations for a steady-state enqueue+dequeue pair.

func measurePair(t *testing.T, sched Scheduler) float64 {
	t.Helper()
	now := 0.0
	seq := 0
	pair := func() {
		p := Packet{Session: seq % 4, Size: 1 + float64(seq%3), Arrival: now}
		if err := sched.Enqueue(p, now); err != nil {
			t.Fatal(err)
		}
		now += 0.5
		if _, ok := sched.Dequeue(now); !ok {
			t.Fatal("dequeue on non-empty scheduler failed")
		}
		now += 0.5
		seq++
	}
	// Warm up: grow the backlog so the heap/ring reaches a stable
	// capacity, then drain back to a steady queue length.
	for i := 0; i < 64; i++ {
		if err := sched.Enqueue(Packet{Session: i % 4, Size: 1, Arrival: now}, now); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 1000; i++ {
		pair()
	}
	return testing.AllocsPerRun(1000, pair)
}

func TestWFQEnqueueDequeueZeroAllocs(t *testing.T) {
	w, err := NewWFQ(1, []float64{1, 2, 3, 4})
	if err != nil {
		t.Fatal(err)
	}
	if avg := measurePair(t, w); avg != 0 {
		t.Fatalf("WFQ enqueue+dequeue allocates %.2f times per pair, want 0", avg)
	}
}

func TestWF2QEnqueueDequeueZeroAllocs(t *testing.T) {
	w, err := NewWF2Q(1, []float64{1, 2, 3, 4})
	if err != nil {
		t.Fatal(err)
	}
	if avg := measurePair(t, w); avg != 0 {
		t.Fatalf("WF2Q enqueue+dequeue allocates %.2f times per pair, want 0", avg)
	}
}

func TestFCFSEnqueueDequeueZeroAllocs(t *testing.T) {
	if avg := measurePair(t, NewFCFS()); avg != 0 {
		t.Fatalf("FCFS enqueue+dequeue allocates %.2f times per pair, want 0", avg)
	}
}

// TestFCFSBoundedCapacity is the regression test for the q = q[1:] leak:
// the queue's backing storage must track the high-water mark, not the
// total number of packets ever enqueued.
func TestFCFSBoundedCapacity(t *testing.T) {
	f := NewFCFS()
	now := 0.0
	for i := 0; i < 100_000; i++ {
		if err := f.Enqueue(Packet{Session: 0, Size: 1, Arrival: now}, now); err != nil {
			t.Fatal(err)
		}
		if err := f.Enqueue(Packet{Session: 1, Size: 1, Arrival: now}, now); err != nil {
			t.Fatal(err)
		}
		if _, ok := f.Dequeue(now); !ok {
			t.Fatal("dequeue failed")
		}
		if _, ok := f.Dequeue(now); !ok {
			t.Fatal("dequeue failed")
		}
		now++
	}
	if f.Len() != 0 {
		t.Fatalf("Len = %d, want 0", f.Len())
	}
	if c := f.q.Cap(); c > 64 {
		t.Fatalf("FCFS backing capacity = %d after 200k packets with queue depth <= 2, want a small constant", c)
	}
}
