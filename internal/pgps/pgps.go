// Package pgps provides the packetized substrate the paper points to for
// practical deployment (§2, §7): Packet-by-packet GPS (PGPS, also known
// as Weighted Fair Queueing) with an exact GPS virtual clock, plus FCFS
// and Deficit Round Robin baselines, and a non-preemptive single-server
// packet simulator that measures per-packet delays.
//
// PGPS serves packets in increasing order of the finish times they would
// have under the fluid GPS reference system; Parekh & Gallager showed its
// per-packet departure time exceeds the fluid GPS departure time by at
// most L_max/r, a relation the test suite checks against this
// repository's exact fluid simulator.
package pgps

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"repro/internal/ring"
)

// Packet is one packet offered to a scheduler.
type Packet struct {
	Session int
	Size    float64
	Arrival float64
}

// ErrUnknownSession is returned when a packet references a session index
// outside the scheduler's configured weight table.
var ErrUnknownSession = errors.New("pgps: unknown session")

// Scheduler is a work-conserving packet scheduler: packets go in with
// Enqueue; Dequeue picks the next packet to transmit.
type Scheduler interface {
	// Enqueue hands the scheduler a packet at (virtual wall-clock) time
	// now >= p.Arrival. It returns ErrUnknownSession (wrapped) when the
	// packet's session index is out of range for the scheduler.
	Enqueue(p Packet, now float64) error
	// Dequeue returns the next packet to serve, or false when empty.
	Dequeue(now float64) (Packet, bool)
	// Len reports queued packets.
	Len() int
}

// ---------------------------------------------------------------- FCFS --

// FCFS serves packets in arrival order. The queue is a circular buffer:
// the previous `q = q[1:]` reslicing pinned the backing array's dead head
// forever, so memory grew with the total number of packets ever served
// rather than with the queue's high-water mark.
type FCFS struct {
	q ring.Ring[Packet]
}

// NewFCFS builds an empty FCFS queue.
func NewFCFS() *FCFS { return &FCFS{} }

// Enqueue implements Scheduler. FCFS keeps no per-session state, so any
// nonnegative session index is accepted.
func (f *FCFS) Enqueue(p Packet, now float64) error {
	if p.Session < 0 {
		return fmt.Errorf("%w: session %d", ErrUnknownSession, p.Session)
	}
	f.q.Push(p)
	return nil
}

// Dequeue implements Scheduler.
func (f *FCFS) Dequeue(now float64) (Packet, bool) {
	if f.q.Len() == 0 {
		return Packet{}, false
	}
	return f.q.Pop(), true
}

// Len implements Scheduler.
func (f *FCFS) Len() int { return f.q.Len() }

// ----------------------------------------------------------------- WFQ --

// wfqItem is a packet stamped with its GPS virtual finish time.
type wfqItem struct {
	pkt    Packet
	finish float64
	seq    int // tie-break: arrival order
}

// wfqHeap is a hand-rolled binary min-heap on concrete wfqItem values.
// container/heap would box every pushed and popped item into an
// interface{}, costing an allocation per packet on the hot path; the
// concrete sift routines keep steady-state enqueue+dequeue allocation
// free (pushes reuse the slice's spare capacity).
type wfqHeap []wfqItem

func (h wfqHeap) less(i, j int) bool {
	if h[i].finish != h[j].finish {
		return h[i].finish < h[j].finish
	}
	return h[i].seq < h[j].seq
}

func (h *wfqHeap) push(it wfqItem) {
	*h = append(*h, it)
	s := *h
	i := len(s) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !s.less(i, parent) {
			break
		}
		s[i], s[parent] = s[parent], s[i]
		i = parent
	}
}

func (h *wfqHeap) pop() wfqItem {
	s := *h
	top := s[0]
	n := len(s) - 1
	s[0] = s[n]
	s[n] = wfqItem{} // keep the dead slot from pinning the packet
	s = s[:n]
	*h = s
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		min := i
		if l < n && s.less(l, min) {
			min = l
		}
		if r < n && s.less(r, min) {
			min = r
		}
		if min == i {
			break
		}
		s[i], s[min] = s[min], s[i]
		i = min
	}
	return top
}

// WFQ is Packet-by-packet GPS: packets are stamped with the virtual
// finish time they would have in the fluid GPS reference system and
// served smallest-stamp-first. The virtual clock V(t) advances at rate
// r/Σφ_B(t) where B(t) is the set of sessions backlogged in the
// reference system — tracked exactly as the set {i : lastFinish_i > V}.
type WFQ struct {
	rate float64
	phi  []float64

	heap       wfqHeap
	seq        int
	v          float64   // virtual time
	vWall      float64   // wall-clock time V was last updated
	lastFinish []float64 // largest finish stamp per session
}

// NewWFQ builds a WFQ scheduler for the given server rate and weights.
func NewWFQ(rate float64, phi []float64) (*WFQ, error) {
	if !(rate > 0) {
		return nil, fmt.Errorf("pgps: rate = %v, want positive", rate)
	}
	if len(phi) == 0 {
		return nil, errors.New("pgps: no sessions")
	}
	for i, p := range phi {
		if !(p > 0) {
			return nil, fmt.Errorf("pgps: phi[%d] = %v, want positive", i, p)
		}
	}
	return &WFQ{rate: rate, phi: phi, lastFinish: make([]float64, len(phi))}, nil
}

// advance moves the virtual clock from s.vWall to wall-clock time `now`,
// honoring the piecewise-constant slope 1/Σφ_B·r and the events where
// sessions leave the reference busy set (their last finish stamp is
// reached).
func (w *WFQ) advance(now float64) {
	dt := now - w.vWall
	for dt > 1e-15 {
		phiBusy := 0.0
		nextExit := math.Inf(1)
		for i, f := range w.lastFinish {
			if f > w.v+1e-15 {
				phiBusy += w.phi[i]
				if f < nextExit {
					nextExit = f
				}
			}
		}
		if phiBusy == 0 {
			// Reference system idle: V needs no further advance (stamps
			// are all <= V; new arrivals will start from max(V, ...)).
			break
		}
		slope := w.rate / phiBusy
		tToExit := (nextExit - w.v) / slope
		if tToExit >= dt {
			w.v += slope * dt
			dt = 0
		} else {
			w.v = nextExit
			dt -= tToExit
		}
	}
	w.vWall = now
}

// Enqueue implements Scheduler: stamp and insert.
func (w *WFQ) Enqueue(p Packet, now float64) error {
	if p.Session < 0 || p.Session >= len(w.phi) {
		return fmt.Errorf("%w: session %d of %d", ErrUnknownSession, p.Session, len(w.phi))
	}
	w.advance(now)
	start := w.v
	if f := w.lastFinish[p.Session]; f > start {
		start = f
	}
	finish := start + p.Size/w.phi[p.Session]
	w.lastFinish[p.Session] = finish
	w.heap.push(wfqItem{pkt: p, finish: finish, seq: w.seq})
	w.seq++
	return nil
}

// Dequeue implements Scheduler.
func (w *WFQ) Dequeue(now float64) (Packet, bool) {
	w.advance(now)
	if len(w.heap) == 0 {
		return Packet{}, false
	}
	return w.heap.pop().pkt, true
}

// Len implements Scheduler.
func (w *WFQ) Len() int { return len(w.heap) }

// ----------------------------------------------------------------- DRR --

// DRR is Deficit Round Robin: a cheap O(1) approximation of fair queueing
// that serves sessions cyclically with per-round quanta proportional to
// their weights.
type DRR struct {
	quantum []float64
	deficit []float64
	queues  [][]Packet
	active  []int // round-robin list of sessions with queued packets
	cursor  int
	size    int
	// credited marks that the session under the cursor already received
	// its quantum for the current visit.
	credited bool
}

// NewDRR builds a DRR scheduler; quantum[i] is session i's per-round
// quantum (use a multiple of the weight, at least the max packet size for
// O(1) behavior).
func NewDRR(quantum []float64) (*DRR, error) {
	if len(quantum) == 0 {
		return nil, errors.New("pgps: no sessions")
	}
	for i, q := range quantum {
		if !(q > 0) {
			return nil, fmt.Errorf("pgps: quantum[%d] = %v, want positive", i, q)
		}
	}
	return &DRR{
		quantum: quantum,
		deficit: make([]float64, len(quantum)),
		queues:  make([][]Packet, len(quantum)),
	}, nil
}

// Enqueue implements Scheduler.
func (d *DRR) Enqueue(p Packet, now float64) error {
	if p.Session < 0 || p.Session >= len(d.queues) {
		return fmt.Errorf("%w: session %d of %d", ErrUnknownSession, p.Session, len(d.queues))
	}
	if len(d.queues[p.Session]) == 0 {
		d.active = append(d.active, p.Session)
	}
	d.queues[p.Session] = append(d.queues[p.Session], p)
	d.size++
	return nil
}

// Dequeue implements Scheduler.
func (d *DRR) Dequeue(now float64) (Packet, bool) {
	if d.size == 0 {
		return Packet{}, false
	}
	for {
		if d.cursor >= len(d.active) {
			d.cursor = 0
		}
		s := d.active[d.cursor]
		q := d.queues[s]
		if len(q) == 0 {
			// Session drained earlier in this round: drop from the list.
			d.active = append(d.active[:d.cursor], d.active[d.cursor+1:]...)
			d.credited = false
			continue
		}
		if !d.credited {
			d.deficit[s] += d.quantum[s]
			d.credited = true
		}
		head := q[0]
		if head.Size <= d.deficit[s] {
			d.deficit[s] -= head.Size
			d.queues[s] = q[1:]
			d.size--
			if len(d.queues[s]) == 0 {
				d.deficit[s] = 0
				d.active = append(d.active[:d.cursor], d.active[d.cursor+1:]...)
				d.credited = false
			}
			return head, true
		}
		// Quantum insufficient this round: the deficit carries over to the
		// session's next visit.
		d.cursor++
		d.credited = false
	}
}

// Len implements Scheduler.
func (d *DRR) Len() int { return d.size }

// ------------------------------------------------------------ Simulator --

// Completion records one served packet.
type Completion struct {
	Packet Packet
	Start  float64
	Finish float64
}

// Delay returns the packet's queueing+transmission delay.
func (c Completion) Delay() float64 { return c.Finish - c.Packet.Arrival }

// Simulate runs a non-preemptive single server of the given rate over the
// packet arrivals (sorted internally by arrival time) using the
// scheduler, returning per-packet completions in service order.
func Simulate(rate float64, sched Scheduler, packets []Packet) ([]Completion, error) {
	if !(rate > 0) {
		return nil, fmt.Errorf("pgps: rate = %v, want positive", rate)
	}
	for i, p := range packets {
		if p.Size <= 0 || p.Arrival < 0 {
			return nil, fmt.Errorf("pgps: packet %d has size %v arrival %v", i, p.Size, p.Arrival)
		}
	}
	arr := append([]Packet(nil), packets...)
	sort.SliceStable(arr, func(i, j int) bool { return arr[i].Arrival < arr[j].Arrival })

	out := make([]Completion, 0, len(arr))
	now := 0.0
	next := 0
	for next < len(arr) || sched.Len() > 0 {
		if sched.Len() == 0 {
			// Idle: jump to the next arrival.
			if arr[next].Arrival > now {
				now = arr[next].Arrival
			}
		}
		for next < len(arr) && arr[next].Arrival <= now+1e-15 {
			if err := sched.Enqueue(arr[next], math.Max(now, arr[next].Arrival)); err != nil {
				return nil, err
			}
			next++
		}
		p, ok := sched.Dequeue(now)
		if !ok {
			continue
		}
		start := now
		finish := start + p.Size/rate
		out = append(out, Completion{Packet: p, Start: start, Finish: finish})
		// Arrivals during transmission join before the next decision.
		now = finish
		for next < len(arr) && arr[next].Arrival <= now+1e-15 {
			if err := sched.Enqueue(arr[next], arr[next].Arrival); err != nil {
				return nil, err
			}
			next++
		}
	}
	return out, nil
}
