package pgps

import (
	"errors"
	"math"
	"testing"

	"repro/internal/fluid"
	"repro/internal/source"
)

func TestFCFSOrder(t *testing.T) {
	f := NewFCFS()
	pkts := []Packet{
		{Session: 0, Size: 1, Arrival: 0},
		{Session: 1, Size: 1, Arrival: 0.5},
		{Session: 0, Size: 1, Arrival: 1},
	}
	comps, err := Simulate(1, f, pkts)
	if err != nil {
		t.Fatal(err)
	}
	if len(comps) != 3 {
		t.Fatalf("%d completions", len(comps))
	}
	for i := 1; i < len(comps); i++ {
		if comps[i].Packet.Arrival < comps[i-1].Packet.Arrival {
			t.Error("FCFS served out of arrival order")
		}
	}
	if comps[0].Finish != 1 || comps[1].Finish != 2 || comps[2].Finish != 3 {
		t.Errorf("finishes = %v %v %v, want 1 2 3", comps[0].Finish, comps[1].Finish, comps[2].Finish)
	}
}

func TestSimulateIdleGap(t *testing.T) {
	f := NewFCFS()
	pkts := []Packet{
		{Session: 0, Size: 1, Arrival: 0},
		{Session: 0, Size: 1, Arrival: 10},
	}
	comps, err := Simulate(1, f, pkts)
	if err != nil {
		t.Fatal(err)
	}
	if comps[1].Start != 10 || comps[1].Finish != 11 {
		t.Errorf("second packet served at [%v, %v], want [10, 11]", comps[1].Start, comps[1].Finish)
	}
	if d := comps[0].Delay(); d != 1 {
		t.Errorf("delay = %v, want 1", d)
	}
}

func TestSimulateValidation(t *testing.T) {
	if _, err := Simulate(0, NewFCFS(), nil); err == nil {
		t.Error("zero rate: want error")
	}
	if _, err := Simulate(1, NewFCFS(), []Packet{{Size: 0, Arrival: 0}}); err == nil {
		t.Error("zero size: want error")
	}
	if _, err := Simulate(1, NewFCFS(), []Packet{{Size: 1, Arrival: -1}}); err == nil {
		t.Error("negative arrival: want error")
	}
}

func TestNewWFQValidation(t *testing.T) {
	if _, err := NewWFQ(0, []float64{1}); err == nil {
		t.Error("zero rate: want error")
	}
	if _, err := NewWFQ(1, nil); err == nil {
		t.Error("no sessions: want error")
	}
	if _, err := NewWFQ(1, []float64{1, 0}); err == nil {
		t.Error("zero phi: want error")
	}
}

func TestNewDRRValidation(t *testing.T) {
	if _, err := NewDRR(nil); err == nil {
		t.Error("no sessions: want error")
	}
	if _, err := NewDRR([]float64{1, -1}); err == nil {
		t.Error("negative quantum: want error")
	}
}

// Two equal-weight sessions with simultaneous backlogs: WFQ interleaves
// them (finish stamps alternate), unlike FCFS which would batch.
func TestWFQInterleaves(t *testing.T) {
	w, err := NewWFQ(1, []float64{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	var pkts []Packet
	for k := 0; k < 4; k++ {
		pkts = append(pkts, Packet{Session: 0, Size: 1, Arrival: 0})
	}
	for k := 0; k < 4; k++ {
		pkts = append(pkts, Packet{Session: 1, Size: 1, Arrival: 0})
	}
	comps, err := Simulate(1, w, pkts)
	if err != nil {
		t.Fatal(err)
	}
	// Served sessions must alternate 0,1,0,1,... (equal stamps tie-broken
	// by arrival order, then strictly interleaved finishes).
	for i := 2; i < len(comps); i++ {
		if comps[i].Packet.Session == comps[i-1].Packet.Session &&
			comps[i-1].Packet.Session == comps[i-2].Packet.Session {
			t.Fatalf("three consecutive services for session %d — not interleaving", comps[i].Packet.Session)
		}
	}
}

// Isolation: session 1 sends a single small packet behind session 0's
// large burst. Under WFQ its delay stays near its fair share; under FCFS
// it waits for the entire burst.
func TestWFQIsolationVsFCFS(t *testing.T) {
	burst := make([]Packet, 20)
	for k := range burst {
		burst[k] = Packet{Session: 0, Size: 1, Arrival: 0}
	}
	probe := Packet{Session: 1, Size: 1, Arrival: 0.25}
	pkts := append(append([]Packet(nil), burst...), probe)

	w, _ := NewWFQ(1, []float64{1, 1})
	wfqComps, err := Simulate(1, w, pkts)
	if err != nil {
		t.Fatal(err)
	}
	fcfsComps, err := Simulate(1, NewFCFS(), pkts)
	if err != nil {
		t.Fatal(err)
	}
	delayOf := func(comps []Completion, session int) float64 {
		for _, c := range comps {
			if c.Packet.Session == session {
				return c.Delay()
			}
		}
		t.Fatalf("session %d not served", session)
		return 0
	}
	wd := delayOf(wfqComps, 1)
	fd := delayOf(fcfsComps, 1)
	if wd > 5 {
		t.Errorf("WFQ probe delay = %v, want small (isolation)", wd)
	}
	if fd < 15 {
		t.Errorf("FCFS probe delay = %v, want ~20 (burst ahead)", fd)
	}
	if wd >= fd {
		t.Errorf("WFQ delay %v not better than FCFS %v", wd, fd)
	}
}

// Parekh & Gallager: per-packet PGPS departures exceed fluid GPS
// departures by at most L_max/r. We run identical slotted arrivals
// through this repository's exact fluid simulator and the WFQ simulator
// and check the relation packet-batch by packet-batch.
func TestPGPSWithinLmaxOfFluidGPS(t *testing.T) {
	const (
		slots = 2000
		lmax  = 1.0
		rate  = 1.0
	)
	phi := []float64{0.2, 0.25, 0.2, 0.25}
	params := []struct{ p, q, l float64 }{
		{0.3, 0.7, 0.5}, {0.4, 0.4, 0.4}, {0.3, 0.3, 0.3}, {0.4, 0.6, 0.5},
	}
	srcs := make([]*source.OnOff, 4)
	for i, pr := range params {
		var err error
		srcs[i], err = source.NewOnOff(pr.p, pr.q, pr.l, uint64(60+i))
		if err != nil {
			t.Fatal(err)
		}
	}

	// Fluid GPS departures per (session, slot) batch.
	type key struct{ sess, slot int }
	gpsFinish := map[key]float64{}
	sim, err := fluid.New(fluid.Config{
		Rate: rate, Phi: phi,
		OnDelay: func(sess, slot int, d float64) {
			gpsFinish[key{sess, slot}] = float64(slot) + d
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	arrivals := make([][]float64, slots)
	for s := 0; s < slots; s++ {
		arrivals[s] = make([]float64, 4)
		for i := range arrivals[s] {
			arrivals[s][i] = srcs[i].Next()
		}
		if _, err := sim.Step(arrivals[s]); err != nil {
			t.Fatal(err)
		}
	}
	// Drain.
	for k := 0; k < 200; k++ {
		if _, err := sim.Step([]float64{0, 0, 0, 0}); err != nil {
			t.Fatal(err)
		}
	}

	// Same traffic as packets (one packet per positive batch; all sizes
	// <= lmax by construction of the sources).
	var pkts []Packet
	for s := 0; s < slots; s++ {
		for i, v := range arrivals[s] {
			if v > 0 {
				pkts = append(pkts, Packet{Session: i, Size: v, Arrival: float64(s)})
			}
		}
	}
	w, err := NewWFQ(rate, phi)
	if err != nil {
		t.Fatal(err)
	}
	comps, err := Simulate(rate, w, pkts)
	if err != nil {
		t.Fatal(err)
	}
	checked := 0
	for _, c := range comps {
		g, ok := gpsFinish[key{c.Packet.Session, int(c.Packet.Arrival)}]
		if !ok {
			t.Fatalf("no fluid finish for session %d slot %v", c.Packet.Session, c.Packet.Arrival)
		}
		if c.Finish > g+lmax/rate+1e-6 {
			t.Fatalf("PGPS finish %v exceeds GPS finish %v + Lmax/r (session %d, slot %v)",
				c.Finish, g, c.Packet.Session, c.Packet.Arrival)
		}
		checked++
	}
	if checked < 100 {
		t.Fatalf("only %d packets checked", checked)
	}
}

// DRR under saturation shares throughput in proportion to quanta.
func TestDRRFairShare(t *testing.T) {
	d, err := NewDRR([]float64{2, 1})
	if err != nil {
		t.Fatal(err)
	}
	var pkts []Packet
	for k := 0; k < 300; k++ {
		pkts = append(pkts, Packet{Session: 0, Size: 1, Arrival: 0})
		pkts = append(pkts, Packet{Session: 1, Size: 1, Arrival: 0})
	}
	comps, err := Simulate(1, d, pkts)
	if err != nil {
		t.Fatal(err)
	}
	// Count services for each session over the first 150 slots of work.
	counts := [2]float64{}
	for _, c := range comps {
		if c.Finish <= 150 {
			counts[c.Packet.Session]++
		}
	}
	ratio := counts[0] / counts[1]
	if math.Abs(ratio-2) > 0.2 {
		t.Errorf("DRR throughput ratio = %v, want ~2", ratio)
	}
}

func TestDRRLargePacketCarriesDeficit(t *testing.T) {
	d, _ := NewDRR([]float64{1, 1})
	pkts := []Packet{
		{Session: 0, Size: 3, Arrival: 0}, // needs 3 rounds of quantum
		{Session: 1, Size: 1, Arrival: 0},
		{Session: 1, Size: 1, Arrival: 0},
	}
	comps, err := Simulate(1, d, pkts)
	if err != nil {
		t.Fatal(err)
	}
	if len(comps) != 3 {
		t.Fatalf("%d completions", len(comps))
	}
	// Session 1's packets must not be starved behind the big packet:
	// at least one serves before it.
	if comps[0].Packet.Session != 1 {
		t.Errorf("first service went to the oversized packet; deficit accounting broken")
	}
}

// Hand-computed WFQ virtual-time scenario (φ = (1,1), rate 1):
//
//	t=0.0  A (session 0, size 1) arrives: V=0,   F_A = 1.
//	t=0.5  B (session 1, size 1) arrives: V=0.5, F_B = 1.5.
//	t=1.2  C (session 0, size 1) arrives: two stamps above V, slope 1/2:
//	       V(1.2) = 0.5 + 0.7/2 = 0.85; start = max(V, F_A) = 1 → F_C = 2.
//
// Service: A [0,1], B [1,2], C [2,3]; delays 1, 1.5, 1.8.
func TestWFQVirtualTimeHandComputed(t *testing.T) {
	w, err := NewWFQ(1, []float64{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	pkts := []Packet{
		{Session: 0, Size: 1, Arrival: 0},
		{Session: 1, Size: 1, Arrival: 0.5},
		{Session: 0, Size: 1, Arrival: 1.2},
	}
	comps, err := Simulate(1, w, pkts)
	if err != nil {
		t.Fatal(err)
	}
	if len(comps) != 3 {
		t.Fatalf("%d completions", len(comps))
	}
	wantOrder := []int{0, 1, 0}
	wantFinish := []float64{1, 2, 3}
	for i, c := range comps {
		if c.Packet.Session != wantOrder[i] {
			t.Errorf("service %d went to session %d, want %d", i, c.Packet.Session, wantOrder[i])
		}
		if math.Abs(c.Finish-wantFinish[i]) > 1e-9 {
			t.Errorf("service %d finish = %v, want %v", i, c.Finish, wantFinish[i])
		}
	}
}

// The virtual clock must reset cleanly across idle periods: a packet
// arriving long after the system drains sees a fresh start.
func TestWFQIdleReset(t *testing.T) {
	w, err := NewWFQ(1, []float64{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	pkts := []Packet{
		{Session: 0, Size: 1, Arrival: 0},
		{Session: 0, Size: 1, Arrival: 100},
		{Session: 1, Size: 1, Arrival: 100},
	}
	comps, err := Simulate(1, w, pkts)
	if err != nil {
		t.Fatal(err)
	}
	// After the idle gap the two simultaneous packets interleave fairly:
	// both finish by 102.
	if comps[1].Finish > 102+1e-9 || comps[2].Finish > 102+1e-9 {
		t.Errorf("post-idle finishes %v, %v: want both <= 102", comps[1].Finish, comps[2].Finish)
	}
}

func TestWFQEnqueueUnknownSession(t *testing.T) {
	w, _ := NewWFQ(1, []float64{1})
	if err := w.Enqueue(Packet{Session: 5, Size: 1}, 0); !errors.Is(err, ErrUnknownSession) {
		t.Errorf("Enqueue(session 5) = %v, want ErrUnknownSession", err)
	}
	if err := w.Enqueue(Packet{Session: 0, Size: 1}, 0); err != nil {
		t.Errorf("Enqueue(session 0) = %v, want nil", err)
	}
}

func TestDRREnqueueUnknownSession(t *testing.T) {
	d, _ := NewDRR([]float64{1, 1})
	if err := d.Enqueue(Packet{Session: -1, Size: 1}, 0); !errors.Is(err, ErrUnknownSession) {
		t.Errorf("Enqueue(session -1) = %v, want ErrUnknownSession", err)
	}
	if err := d.Enqueue(Packet{Session: 2, Size: 1}, 0); !errors.Is(err, ErrUnknownSession) {
		t.Errorf("Enqueue(session 2) = %v, want ErrUnknownSession", err)
	}
}

func TestFCFSEnqueueNegativeSession(t *testing.T) {
	f := NewFCFS()
	if err := f.Enqueue(Packet{Session: -3, Size: 1}, 0); !errors.Is(err, ErrUnknownSession) {
		t.Errorf("Enqueue(session -3) = %v, want ErrUnknownSession", err)
	}
}

// Simulate must propagate the scheduler's typed error instead of
// panicking mid-run.
func TestSimulatePropagatesUnknownSession(t *testing.T) {
	w, _ := NewWFQ(1, []float64{1})
	_, err := Simulate(1, w, []Packet{{Session: 7, Size: 1, Arrival: 0}})
	if !errors.Is(err, ErrUnknownSession) {
		t.Errorf("Simulate = %v, want ErrUnknownSession", err)
	}
}
