package pgps

import (
	"errors"
	"math"
	"testing"

	"repro/internal/source"
)

func TestNewWF2QValidation(t *testing.T) {
	if _, err := NewWF2Q(0, []float64{1}); err == nil {
		t.Error("zero rate: want error")
	}
	if _, err := NewWF2Q(1, nil); err == nil {
		t.Error("no sessions: want error")
	}
	if _, err := NewWF2Q(1, []float64{-1}); err == nil {
		t.Error("negative phi: want error")
	}
}

func TestWF2QEnqueueUnknownSession(t *testing.T) {
	w, _ := NewWF2Q(1, []float64{1})
	if err := w.Enqueue(Packet{Session: 3, Size: 1}, 0); !errors.Is(err, ErrUnknownSession) {
		t.Errorf("Enqueue(session 3) = %v, want ErrUnknownSession", err)
	}
}

// The classic WF2Q-vs-WFQ discriminator (Bennett & Zhang): one session
// with a large weight has many packets queued; WFQ serves a long run of
// them back to back (it may run ahead of the fluid system), while WF2Q
// interleaves because later packets are not yet eligible.
func TestWF2QAvoidsWFQBurst(t *testing.T) {
	// Session 0: weight 10, 11 packets at t=0. Sessions 1..10: weight 1,
	// one packet each at t=0 (classic 50% vs 5% setup, scaled).
	phi := make([]float64, 11)
	phi[0] = 10
	for i := 1; i < 11; i++ {
		phi[i] = 1
	}
	var pkts []Packet
	for k := 0; k < 11; k++ {
		pkts = append(pkts, Packet{Session: 0, Size: 1, Arrival: 0})
	}
	for i := 1; i < 11; i++ {
		pkts = append(pkts, Packet{Session: i, Size: 1, Arrival: 0})
	}
	longestRun := func(s Scheduler) int {
		comps, err := Simulate(1, s, pkts)
		if err != nil {
			t.Fatal(err)
		}
		run, best := 0, 0
		for _, c := range comps {
			if c.Packet.Session == 0 {
				run++
				if run > best {
					best = run
				}
			} else {
				run = 0
			}
		}
		return best
	}
	wfq, _ := NewWFQ(1, phi)
	wf2q, _ := NewWF2Q(1, phi)
	runWFQ := longestRun(wfq)
	runWF2Q := longestRun(wf2q)
	if runWF2Q >= runWFQ {
		t.Errorf("WF2Q longest session-0 run %d not shorter than WFQ's %d", runWF2Q, runWFQ)
	}
	if runWF2Q > 2 {
		t.Errorf("WF2Q longest run %d, want <= 2 (worst-case fairness)", runWF2Q)
	}
}

// WF2Q is work conserving and serves everything.
func TestWF2QConservation(t *testing.T) {
	rng := source.NewRNG(3)
	phi := []float64{1, 2, 3}
	w, err := NewWF2Q(1, phi)
	if err != nil {
		t.Fatal(err)
	}
	var pkts []Packet
	for k := 0; k < 500; k++ {
		pkts = append(pkts, Packet{
			Session: rng.Intn(3),
			Size:    0.2 + rng.Float64(),
			Arrival: float64(k) * 0.5,
		})
	}
	comps, err := Simulate(1, w, pkts)
	if err != nil {
		t.Fatal(err)
	}
	if len(comps) != len(pkts) {
		t.Fatalf("%d completions for %d packets", len(comps), len(pkts))
	}
	// Work conservation: no gaps while packets are queued — total finish
	// time at least total size, and each start >= previous finish or an
	// idle jump to the next arrival.
	prevFinish := 0.0
	for _, c := range comps {
		if c.Start < prevFinish-1e-9 {
			t.Fatalf("overlapping service: start %v before previous finish %v", c.Start, prevFinish)
		}
		prevFinish = c.Finish
	}
}

// WF2Q also stays within Lmax/r of the fluid GPS departures (it is a
// PGPS-class discipline).
func TestWF2QWithinLmaxOfFluid(t *testing.T) {
	phi := []float64{1, 1}
	w, err := NewWF2Q(1, phi)
	if err != nil {
		t.Fatal(err)
	}
	pkts := []Packet{
		{Session: 0, Size: 1, Arrival: 0},
		{Session: 1, Size: 1, Arrival: 0},
		{Session: 0, Size: 1, Arrival: 1},
		{Session: 1, Size: 1, Arrival: 1.5},
	}
	comps, err := Simulate(1, w, pkts)
	if err != nil {
		t.Fatal(err)
	}
	// Fluid finishes for this scenario (computed by hand): the two t=0
	// packets finish at 2; the t=1 packet of session 0 at 3.5 or earlier
	// ... rather than hand-derive all, just assert the PGPS property
	// against WFQ (equal stamps): same finish set within Lmax/r = 1.
	wfq, _ := NewWFQ(1, phi)
	ref, err := Simulate(1, wfq, pkts)
	if err != nil {
		t.Fatal(err)
	}
	for i := range comps {
		if math.Abs(comps[i].Finish-ref[i].Finish) > 1+1e-9 {
			t.Errorf("completion %d: WF2Q %v vs WFQ %v differ by more than Lmax/r",
				i, comps[i].Finish, ref[i].Finish)
		}
	}
}
