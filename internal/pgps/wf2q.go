package pgps

import (
	"errors"
	"fmt"
	"math"
)

// WF2Q is Worst-case Fair Weighted Fair Queueing (Bennett & Zhang):
// like WFQ it stamps packets with fluid-GPS virtual start/finish times,
// but it only considers packets whose service has *started* in the fluid
// reference (virtual start <= V(t)), picking the smallest finish among
// them. This removes WFQ's ahead-of-fluid burstiness: WFQ can run a
// session up to one packet ahead per competitor, WF2Q never runs more
// than one packet ahead in total.
type WF2Q struct {
	rate float64
	phi  []float64

	items      []wf2qItem
	seq        int
	v          float64
	vWall      float64
	lastFinish []float64
}

type wf2qItem struct {
	pkt    Packet
	start  float64
	finish float64
	seq    int
}

// NewWF2Q builds a WF2Q scheduler for the given server rate and weights.
func NewWF2Q(rate float64, phi []float64) (*WF2Q, error) {
	if !(rate > 0) {
		return nil, fmt.Errorf("pgps: rate = %v, want positive", rate)
	}
	if len(phi) == 0 {
		return nil, errors.New("pgps: no sessions")
	}
	for i, p := range phi {
		if !(p > 0) {
			return nil, fmt.Errorf("pgps: phi[%d] = %v, want positive", i, p)
		}
	}
	return &WF2Q{rate: rate, phi: phi, lastFinish: make([]float64, len(phi))}, nil
}

// advance tracks the same exact GPS virtual clock as WFQ.
func (w *WF2Q) advance(now float64) {
	dt := now - w.vWall
	for dt > 1e-15 {
		phiBusy := 0.0
		nextExit := math.Inf(1)
		for i, f := range w.lastFinish {
			if f > w.v+1e-15 {
				phiBusy += w.phi[i]
				if f < nextExit {
					nextExit = f
				}
			}
		}
		if phiBusy == 0 {
			break
		}
		slope := w.rate / phiBusy
		tToExit := (nextExit - w.v) / slope
		if tToExit >= dt {
			w.v += slope * dt
			dt = 0
		} else {
			w.v = nextExit
			dt -= tToExit
		}
	}
	w.vWall = now
}

// Enqueue implements Scheduler.
func (w *WF2Q) Enqueue(p Packet, now float64) error {
	if p.Session < 0 || p.Session >= len(w.phi) {
		return fmt.Errorf("%w: session %d of %d", ErrUnknownSession, p.Session, len(w.phi))
	}
	w.advance(now)
	start := w.v
	if f := w.lastFinish[p.Session]; f > start {
		start = f
	}
	finish := start + p.Size/w.phi[p.Session]
	w.lastFinish[p.Session] = finish
	w.items = append(w.items, wf2qItem{pkt: p, start: start, finish: finish, seq: w.seq})
	w.seq++
	return nil
}

// Dequeue implements Scheduler: among eligible packets (virtual start <=
// V(now)), pick the smallest virtual finish; when none is eligible (can
// happen right after an idle jump), fall back to the globally smallest
// finish so the server stays work conserving.
func (w *WF2Q) Dequeue(now float64) (Packet, bool) {
	w.advance(now)
	if len(w.items) == 0 {
		return Packet{}, false
	}
	best := -1
	bestEligible := false
	for k, it := range w.items {
		eligible := it.start <= w.v+1e-12
		if best == -1 {
			best, bestEligible = k, eligible
			continue
		}
		b := w.items[best]
		switch {
		case eligible && !bestEligible:
			best, bestEligible = k, true
		case eligible == bestEligible &&
			(it.finish < b.finish || (it.finish == b.finish && it.seq < b.seq)):
			best = k
		}
	}
	it := w.items[best]
	w.items = append(w.items[:best], w.items[best+1:]...)
	return it.pkt, true
}

// Len implements Scheduler.
func (w *WF2Q) Len() int { return len(w.items) }
