package paper

import (
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/plot"
)

// WriteAll regenerates every figure's series and writes them as CSV files
// under dir (created if needed): fig3a.csv, fig3b.csv, fig4.csv, and
// boundvssim.csv. It is the batch export behind "reproduce everything to
// files" workflows (CI artifacts, external plotting).
func WriteAll(dir string, simSlots int, seed uint64) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	set1, err := Table2(Set1Rho)
	if err != nil {
		return err
	}
	set2, err := Table2(Set2Rho)
	if err != nil {
		return err
	}
	f3a, err := Figure3(set1, 60, 60)
	if err != nil {
		return err
	}
	f3b, err := Figure3(set2, 60, 60)
	if err != nil {
		return err
	}
	f4, err := Figure4(60, 60)
	if err != nil {
		return err
	}
	files := map[string][]plot.Series{
		"fig3a.csv": f3a,
		"fig3b.csv": f3b,
		"fig4.csv":  f4,
	}
	if simSlots > 0 {
		bound, sim, err := BoundVsSim(Set1Rho, simSlots, seed, 30, 30)
		if err != nil {
			return err
		}
		files["boundvssim.csv"] = append(bound, sim...)
	}
	for name, series := range files {
		f, err := os.Create(filepath.Join(dir, name))
		if err != nil {
			return err
		}
		if err := plot.WriteCSV(f, series); err != nil {
			f.Close()
			return fmt.Errorf("paper: writing %s: %w", name, err)
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	return nil
}
