package paper

import (
	"testing"

	"repro/internal/faults"
)

// A schedule with no events must leave the simulation bit-identical to
// the plain TreeSim path: the fault hooks are pass-through when idle.
func TestFaultTreeSimNeutralMatchesTreeSim(t *testing.T) {
	inj, err := faults.FromEvents(3, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	run, err := FaultTreeSim(Set1Rho, 20000, 42, inj, nil)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := TreeSim(Set1Rho, 20000, 42)
	if err != nil {
		t.Fatal(err)
	}
	for i := range plain {
		if run.Tails[i].N() != plain[i].N() {
			t.Errorf("session %d: %d samples under neutral faults, %d plain",
				i, run.Tails[i].N(), plain[i].N())
			continue
		}
		qf, err1 := run.Tails[i].Quantile(0.99)
		qp, err2 := plain[i].Quantile(0.99)
		if err1 != nil || err2 != nil {
			t.Fatal(err1, err2)
		}
		if qf != qp {
			t.Errorf("session %d: p99 %v under neutral faults, %v plain", i, qf, qp)
		}
		if run.Dropped[i] != 0 {
			t.Errorf("session %d: dropped %v with no churn", i, run.Dropped[i])
		}
	}
}

// Same seeds, same schedule: the faulted rerun is fully deterministic.
func TestFaultTreeSimDeterministic(t *testing.T) {
	mk := func() FaultRun {
		t.Helper()
		inj, err := faults.New(faults.Config{
			Seed: 3, Horizon: 20000, Nodes: 3, Sessions: 4,
			Degrade: faults.ClassParams{Count: 3},
			Outage:  faults.ClassParams{Count: 1, MaxDuration: 200},
			Churn:   faults.ClassParams{Count: 2},
			Delay:   faults.ClassParams{Count: 2, MaxExtra: 2},
		})
		if err != nil {
			t.Fatal(err)
		}
		run, err := FaultTreeSim(Set1Rho, 20000, 42, inj, nil)
		if err != nil {
			t.Fatal(err)
		}
		return run
	}
	a, b := mk(), mk()
	for i := range a.Tails {
		if a.Tails[i].N() != b.Tails[i].N() || a.Dropped[i] != b.Dropped[i] {
			t.Errorf("session %d: run A (%d samples, %v dropped) != run B (%d, %v)",
				i, a.Tails[i].N(), a.Dropped[i], b.Tails[i].N(), b.Dropped[i])
		}
	}
}

// An outage at the shared node must visibly stretch delays relative to
// the healthy run — the injection has to actually bite.
func TestFaultTreeSimOutageStretchesDelay(t *testing.T) {
	inj, err := faults.FromEvents(3, 4, []faults.Event{
		{Class: faults.Outage, Node: 2, Start: 5000, Duration: 300},
	})
	if err != nil {
		t.Fatal(err)
	}
	run, err := FaultTreeSim(Set1Rho, 20000, 42, inj, nil)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := TreeSim(Set1Rho, 20000, 42)
	if err != nil {
		t.Fatal(err)
	}
	stretched := false
	for i := range plain {
		mf, err1 := run.Tails[i].Quantile(0.999)
		mp, err2 := plain[i].Quantile(0.999)
		if err1 != nil || err2 != nil {
			t.Fatal(err1, err2)
		}
		if mf > mp+100 { // a 300-slot stall must show up at the tail
			stretched = true
		}
	}
	if !stretched {
		t.Error("300-slot outage at the shared node left every p99.9 within 100 slots of healthy")
	}
}

func TestTreeNodeSessions(t *testing.T) {
	ns := TreeNodeSessions()
	if len(ns) != 3 || len(ns[0]) != 2 || len(ns[1]) != 2 || len(ns[2]) != 4 {
		t.Fatalf("TreeNodeSessions() = %v", ns)
	}
}
