package paper

import (
	"math"
	"testing"

	"repro/internal/mc"
	"repro/internal/source"
)

// TestTreeSimShardedWorkerInvariance: the merged tails are a function of
// (seed, blocks, blockSlots) only — changing the worker count must not
// change a single histogram count.
func TestTreeSimShardedWorkerInvariance(t *testing.T) {
	cfg := mc.Config{Blocks: 6, BlockSlots: 4000, Workers: 1, Seed: 2026}
	want, err := TreeSimSharded(Set1Rho, cfg, TreeTailSpec{})
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{2, 4, 0} {
		cfg.Workers = w
		got, err := TreeSimSharded(Set1Rho, cfg, TreeTailSpec{})
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		for i := range want {
			if got[i].N() != want[i].N() {
				t.Fatalf("workers=%d session %d: N=%d, serial run has %d", w, i, got[i].N(), want[i].N())
			}
			if got[i].Max() != want[i].Max() || got[i].Min() != want[i].Min() {
				t.Fatalf("workers=%d session %d: extremes differ from serial run", w, i)
			}
			if got[i].Mean() != want[i].Mean() {
				t.Fatalf("workers=%d session %d: mean %v, serial run has %v", w, i, got[i].Mean(), want[i].Mean())
			}
			gc, wc := got[i].Counts(), want[i].Counts()
			for k := range wc {
				if gc[k] != wc[k] {
					t.Fatalf("workers=%d session %d bucket %d: count %d, serial run has %d", w, i, k, gc[k], wc[k])
				}
			}
		}
	}
}

// TestTreeSimShardedMatchesExact: with a single block the sharded harness
// is the same trajectory as TreeSim seeded with BlockSeed(0), so the
// streaming estimators must agree with the exact sample-retaining tails
// up to histogram resolution.
func TestTreeSimShardedMatchesExact(t *testing.T) {
	const slots = 20000
	const seed = 555
	cfg := mc.Config{Blocks: 1, BlockSlots: slots, Workers: 1, Seed: seed}
	spec := DefaultTreeTailSpec
	stream, err := TreeSimSharded(Set1Rho, cfg, spec)
	if err != nil {
		t.Fatal(err)
	}
	exact, err := TreeSim(Set1Rho, slots, source.StreamSeed(seed, uint64(0)))
	if err != nil {
		t.Fatal(err)
	}
	width := spec.Max / float64(spec.Buckets)
	for i := range exact {
		if got, want := stream[i].N(), exact[i].N(); got != want {
			t.Fatalf("session %d: stream saw %d samples, exact saw %d", i, got, want)
		}
		if got, want := stream[i].Max(), exact[i].Max(); got != want {
			t.Fatalf("session %d: max %v, exact %v", i, got, want)
		}
		if got, want := stream[i].Mean(), exact[i].Mean(); math.Abs(got-want) > 1e-12*math.Max(1, math.Abs(want)) {
			t.Fatalf("session %d: mean %v, exact %v", i, got, want)
		}
		// Delays are integer multiples of the slot resolution in practice,
		// but we only rely on the histogram invariant: CCDF is exact at
		// bucket edges.
		for _, x := range []float64{0, width * 100, width * 1000, width * 3000} {
			if got, want := stream[i].CCDF(x), exact[i].CCDF(x); got != want {
				t.Fatalf("session %d CCDF(%v): stream %v, exact %v", i, x, got, want)
			}
		}
		// Quantiles agree to one bucket width.
		for _, p := range []float64{0.5, 0.9, 0.99} {
			sq, err := stream[i].Quantile(p)
			if err != nil {
				t.Fatal(err)
			}
			eq, err := exact[i].Quantile(p)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(sq-eq) > width {
				t.Fatalf("session %d Q(%v): stream %v, exact %v (width %v)", i, p, sq, eq, width)
			}
		}
	}
}
