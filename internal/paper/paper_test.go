package paper

import (
	"math"
	"testing"

	"repro/internal/network"
)

func TestTable1Means(t *testing.T) {
	want := []float64{0.15, 0.2, 0.15, 0.2}
	for i, p := range Table1 {
		if math.Abs(p.Mean()-want[i]) > 1e-12 {
			t.Errorf("session %d mean = %v, want %v", i+1, p.Mean(), want[i])
		}
	}
}

func TestTable2MatchesPaper(t *testing.T) {
	cases := []struct {
		rhos, alpha, lambda []float64
	}{
		{Set1Rho, PaperSet1Alpha, PaperSet1Lambda},
		{Set2Rho, PaperSet2Alpha, PaperSet2Lambda},
	}
	for ci, c := range cases {
		got, err := Table2(c.rhos)
		if err != nil {
			t.Fatalf("Table2 set %d: %v", ci+1, err)
		}
		for i, p := range got {
			if rel := math.Abs(p.Alpha-c.alpha[i]) / c.alpha[i]; rel > 0.01 {
				t.Errorf("set %d session %d: alpha %v vs paper %v", ci+1, i+1, p.Alpha, c.alpha[i])
			}
			if rel := math.Abs(p.Lambda-c.lambda[i]) / c.lambda[i]; rel > 0.01 {
				t.Errorf("set %d session %d: lambda %v vs paper %v", ci+1, i+1, p.Lambda, c.lambda[i])
			}
		}
	}
	if _, err := Table2([]float64{0.2}); err == nil {
		t.Error("wrong rho count: want error")
	}
}

func TestTreeTopology(t *testing.T) {
	set, err := Table2(Set1Rho)
	if err != nil {
		t.Fatal(err)
	}
	net := Tree(set)
	if err := net.Validate(); err != nil {
		t.Fatalf("tree invalid: %v", err)
	}
	if !net.IsRPPS() {
		t.Error("tree should be RPPS")
	}
	// All sessions bottleneck at node 3 (load 0.9 there vs 0.4-0.45 at
	// the edge nodes).
	for i := range net.Sessions {
		if hop := net.Bottleneck(i); net.Sessions[i].Route[hop] != 2 {
			t.Errorf("session %d bottleneck at node %d, want node3", i, net.Sessions[i].Route[hop])
		}
	}
}

func TestFigure3Shapes(t *testing.T) {
	set1, err := Table2(Set1Rho)
	if err != nil {
		t.Fatal(err)
	}
	set2, err := Table2(Set2Rho)
	if err != nil {
		t.Fatal(err)
	}
	f3a, err := Figure3(set1, 60, 60)
	if err != nil {
		t.Fatal(err)
	}
	f3b, err := Figure3(set2, 60, 60)
	if err != nil {
		t.Fatal(err)
	}
	if len(f3a) != 4 || len(f3b) != 4 {
		t.Fatalf("series counts %d, %d", len(f3a), len(f3b))
	}
	for i := range f3a {
		// Each curve is a monotone tail.
		for k := 1; k < len(f3a[i].Y); k++ {
			if f3a[i].Y[k] > f3a[i].Y[k-1]+1e-12 {
				t.Fatalf("set1 session %d: bound not monotone", i+1)
			}
		}
		// Paper's headline shape: Set 2 decays much slower — at d = 60
		// the Set 2 bound is orders of magnitude above Set 1.
		if !(f3b[i].Y[len(f3b[i].Y)-1] > 10*f3a[i].Y[len(f3a[i].Y)-1]) {
			t.Errorf("session %d: set2 tail %v not clearly above set1 %v at d=60",
				i+1, f3b[i].Y[len(f3b[i].Y)-1], f3a[i].Y[len(f3a[i].Y)-1])
		}
	}
}

func TestFigure4BeatsFigure3b(t *testing.T) {
	f4, err := Figure4(60, 30)
	if err != nil {
		t.Fatal(err)
	}
	set2, err := Table2(Set2Rho)
	if err != nil {
		t.Fatal(err)
	}
	f3b, err := Figure3(set2, 60, 30)
	if err != nil {
		t.Fatal(err)
	}
	for i := range f4 {
		// The direct bound must be at least as tight everywhere past the
		// origin, and markedly tighter deep in the tail (paper Figure 4).
		last := len(f4[i].Y) - 1
		if f4[i].Y[last] > f3b[i].Y[last]*(1+1e-9) {
			t.Errorf("session %d: direct bound %v above EBB bound %v at tail",
				i+1, f4[i].Y[last], f3b[i].Y[last])
		}
		if f4[i].Y[last] > 0 && f3b[i].Y[last]/f4[i].Y[last] < 10 {
			t.Errorf("session %d: improvement factor only %v at d=60",
				i+1, f3b[i].Y[last]/f4[i].Y[last])
		}
	}
}

func TestTreeSimDelaysBelowBounds(t *testing.T) {
	const slots = 200000
	tails, err := TreeSim(Set1Rho, slots, 12345)
	if err != nil {
		t.Fatal(err)
	}
	set, err := Table2(Set1Rho)
	if err != nil {
		t.Fatal(err)
	}
	net := Tree(set)
	bounds, err := net.RPPSBounds(network.VariantDiscrete)
	if err != nil {
		t.Fatal(err)
	}
	for i, tail := range tails {
		if tail.N() < slots/10 {
			t.Fatalf("session %d: only %d delay samples", i+1, tail.N())
		}
		// The slotted simulator adds at most 1 slot of measurement
		// rounding per hop plus 1 slot of store-and-forward per extra
		// hop: compare sim CCDF at d against the bound at d - 3.
		for _, d := range []float64{6, 10, 15, 20} {
			emp := tail.CCDF(d)
			bnd := bounds[i].Delay.Eval(d - 3)
			if emp > bnd*1.2+1e-9 {
				t.Errorf("session %d: simulated Pr{D>=%v} = %v above (offset) bound %v",
					i+1, d, emp, bnd)
			}
		}
	}
}

func TestSourcesDeterministic(t *testing.T) {
	a, err := Sources(7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Sources(7)
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < 100; k++ {
		for i := range a {
			if a[i].Next() != b[i].Next() {
				t.Fatal("same seed produced different traffic")
			}
		}
	}
}

func TestBoundVsSim(t *testing.T) {
	bound, sim, err := BoundVsSim(Set1Rho, 30000, 99, 25, 25)
	if err != nil {
		t.Fatal(err)
	}
	if len(bound) != 4 || len(sim) != 4 {
		t.Fatalf("series counts %d, %d", len(bound), len(sim))
	}
	for i := range sim {
		if len(sim[i].Y) != len(bound[i].Y) {
			t.Errorf("grid mismatch for session %d", i+1)
		}
	}
}
