package paper

import (
	"context"
	"fmt"

	"repro/internal/network"
	"repro/internal/parallel"
	"repro/internal/stats"
)

// TreeSimParallel runs independent replications of the Figure 2 tree
// simulation concurrently through the bounded worker pool and merges the
// per-session end-to-end delay samples. Replication both tightens the
// tail estimates and exposes seed sensitivity; replicas are merged in
// seed order, so the result is deterministic for a fixed seed set.
func TreeSimParallel(rhos []float64, slots int, seeds []uint64) ([]*stats.Tail, error) {
	if len(seeds) == 0 {
		return nil, fmt.Errorf("paper: no seeds")
	}
	results, err := parallel.Map(context.Background(), len(seeds),
		func(_ context.Context, si int) ([]*stats.Tail, error) {
			return TreeSim(rhos, slots, seeds[si])
		})
	if err != nil {
		return nil, err
	}
	merged := make([]*stats.Tail, len(Table1))
	for i := range merged {
		merged[i] = &stats.Tail{}
	}
	for _, tails := range results {
		for i, t := range tails {
			merged[i].AddAll(t.Samples())
		}
	}
	return merged, nil
}

// RhoSweepPoint is one row of the ρ-sensitivity sweep.
type RhoSweepPoint struct {
	Scale  float64   // multiplier applied to the Set-1 envelope rates
	Rhos   []float64 // the swept envelope rates
	Alphas []float64 // resulting decay rates per session
	D1e6   []float64 // end-to-end delay levels with bound 1e-6 (eq. 67)
}

// RhoSweep quantifies the paper's §6.3 trade-off — envelope rate ρ versus
// decay rate α versus usable bound — by scaling the Set-1 rates across
// [minScale, maxScale] and recomputing Table 2 and the Theorem 15 delay
// quantiles at each point. Scales that push any ρ outside (mean, peak)
// are skipped. Every scale is an independent computation, so the points
// run through the worker pool and are collected in scale order — the
// output is identical to the serial loop.
func RhoSweep(minScale, maxScale float64, points int) ([]RhoSweepPoint, error) {
	if !(minScale > 0) || !(maxScale > minScale) || points < 2 {
		return nil, fmt.Errorf("paper: sweep range [%v, %v] x%d invalid", minScale, maxScale, points)
	}
	type cell struct {
		pt RhoSweepPoint
		ok bool
	}
	cells, err := parallel.Map(context.Background(), points,
		func(_ context.Context, k int) (cell, error) {
			scale := minScale + (maxScale-minScale)*float64(k)/float64(points-1)
			rhos := make([]float64, len(Set1Rho))
			total := 0.0
			for i, r := range Set1Rho {
				rhos[i] = r * scale
				total += rhos[i]
				if rhos[i] <= Table1[i].Mean() || rhos[i] >= Table1[i].Lambda {
					return cell{}, nil
				}
			}
			if total >= 1 {
				return cell{}, nil
			}
			chars, err := Table2(rhos)
			if err != nil {
				return cell{}, err
			}
			net := Tree(chars)
			bounds, err := net.RPPSBounds(network.VariantDiscrete)
			if err != nil {
				return cell{}, err
			}
			pt := RhoSweepPoint{Scale: scale, Rhos: rhos}
			for i, c := range chars {
				pt.Alphas = append(pt.Alphas, c.Alpha)
				pt.D1e6 = append(pt.D1e6, bounds[i].Delay.Invert(1e-6))
			}
			return cell{pt: pt, ok: true}, nil
		})
	if err != nil {
		return nil, err
	}
	var out []RhoSweepPoint
	for _, c := range cells {
		if c.ok {
			out = append(out, c.pt)
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("paper: no feasible sweep points in [%v, %v]", minScale, maxScale)
	}
	return out, nil
}
