package paper

import (
	"fmt"
	"sync"

	"repro/internal/network"
	"repro/internal/stats"
)

// TreeSimParallel runs independent replications of the Figure 2 tree
// simulation concurrently (one goroutine per seed) and merges the
// per-session end-to-end delay samples. Replication both tightens the
// tail estimates and exposes seed sensitivity; the merge is deterministic
// for a fixed seed set.
func TreeSimParallel(rhos []float64, slots int, seeds []uint64) ([]*stats.Tail, error) {
	if len(seeds) == 0 {
		return nil, fmt.Errorf("paper: no seeds")
	}
	type result struct {
		tails []*stats.Tail
		err   error
	}
	results := make([]result, len(seeds))
	var wg sync.WaitGroup
	for si, seed := range seeds {
		wg.Add(1)
		go func(si int, seed uint64) {
			defer wg.Done()
			tails, err := TreeSim(rhos, slots, seed)
			results[si] = result{tails: tails, err: err}
		}(si, seed)
	}
	wg.Wait()
	merged := make([]*stats.Tail, len(Table1))
	for i := range merged {
		merged[i] = &stats.Tail{}
	}
	for _, r := range results {
		if r.err != nil {
			return nil, r.err
		}
		for i, t := range r.tails {
			merged[i].AddAll(t.Samples())
		}
	}
	return merged, nil
}

// RhoSweepPoint is one row of the ρ-sensitivity sweep.
type RhoSweepPoint struct {
	Scale  float64   // multiplier applied to the Set-1 envelope rates
	Rhos   []float64 // the swept envelope rates
	Alphas []float64 // resulting decay rates per session
	D1e6   []float64 // end-to-end delay levels with bound 1e-6 (eq. 67)
}

// RhoSweep quantifies the paper's §6.3 trade-off — envelope rate ρ versus
// decay rate α versus usable bound — by scaling the Set-1 rates across
// [minScale, maxScale] and recomputing Table 2 and the Theorem 15 delay
// quantiles at each point. Scales that push any ρ outside (mean, peak)
// are skipped.
func RhoSweep(minScale, maxScale float64, points int) ([]RhoSweepPoint, error) {
	if !(minScale > 0) || !(maxScale > minScale) || points < 2 {
		return nil, fmt.Errorf("paper: sweep range [%v, %v] x%d invalid", minScale, maxScale, points)
	}
	var out []RhoSweepPoint
	for k := 0; k < points; k++ {
		scale := minScale + (maxScale-minScale)*float64(k)/float64(points-1)
		rhos := make([]float64, len(Set1Rho))
		ok := true
		total := 0.0
		for i, r := range Set1Rho {
			rhos[i] = r * scale
			total += rhos[i]
			if rhos[i] <= Table1[i].Mean() || rhos[i] >= Table1[i].Lambda {
				ok = false
			}
		}
		if !ok || total >= 1 {
			continue
		}
		chars, err := Table2(rhos)
		if err != nil {
			return nil, err
		}
		net := Tree(chars)
		bounds, err := net.RPPSBounds(network.VariantDiscrete)
		if err != nil {
			return nil, err
		}
		pt := RhoSweepPoint{Scale: scale, Rhos: rhos}
		for i, c := range chars {
			pt.Alphas = append(pt.Alphas, c.Alpha)
			pt.D1e6 = append(pt.D1e6, bounds[i].Delay.Invert(1e-6))
		}
		out = append(out, pt)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("paper: no feasible sweep points in [%v, %v]", minScale, maxScale)
	}
	return out, nil
}
