package paper

import (
	"context"
	"fmt"

	"repro/internal/mc"
	"repro/internal/netsim"
	"repro/internal/stats"
)

// This file scales the §6.3 tree simulation past what the exact
// sample-retaining harness can hold: blocks of slots run as independent
// replications across the mc harness, each block streams its per-session
// end-to-end delays into fixed-memory stats.StreamTail estimators, and
// the per-block estimators merge deterministically in block order. The
// block decomposition (not the worker count) fixes the output, so a run
// is reproducible from (seed, blocks, blockSlots) alone.

// genBlockSlots is the source-generation batch inside one block: big
// enough to amortize per-slot call overhead, small enough to stay cache
// resident (4 sessions × 4096 slots × 8 B = 128 KiB).
const genBlockSlots = 4096

// TreeTailSpec fixes the streaming-estimator geometry for the tree
// simulation: per-session delay histograms over [0, Max) with Buckets
// buckets (plus an overflow bucket).
type TreeTailSpec struct {
	Max     float64
	Buckets int
}

// DefaultTreeTailSpec covers the delay range the §6.3 tree actually
// produces (bounds and simulations stay below ~60 slots end to end)
// at 0.01-slot resolution.
var DefaultTreeTailSpec = TreeTailSpec{Max: 64, Buckets: 6400}

func (ts TreeTailSpec) newTails() ([]*stats.StreamTail, error) {
	tails := make([]*stats.StreamTail, len(Table1))
	for i := range tails {
		t, err := stats.NewStreamTail(0, ts.Max, ts.Buckets)
		if err != nil {
			return nil, err
		}
		tails[i] = t
	}
	return tails, nil
}

// treeSimBlock runs one independent replication of the Figure 2 tree for
// the given number of slots, streaming per-session delays into fresh
// StreamTails. It is TreeSim with block-batched source generation and
// fixed-memory estimators.
func treeSimBlock(rhos []float64, slots int, seed uint64, spec TreeTailSpec) ([]*stats.StreamTail, error) {
	srcs, err := Sources(seed)
	if err != nil {
		return nil, err
	}
	tails, err := spec.newTails()
	if err != nil {
		return nil, err
	}
	sessions := make([]netsim.SessionSpec, len(Table1))
	for i := range Table1 {
		first := 0
		if i >= 2 {
			first = 1
		}
		sessions[i] = netsim.SessionSpec{
			Name:  SessionNames[i],
			Route: []int{first, 2},
			Phi:   []float64{rhos[i], rhos[i]},
		}
	}
	sim, err := netsim.New(netsim.Config{
		Nodes: []netsim.Node{
			{Name: "node1", Rate: 1},
			{Name: "node2", Rate: 1},
			{Name: "node3", Rate: 1},
		},
		Sessions: sessions,
		OnDelay: func(sess, slot int, d float64) {
			tails[sess].Add(d)
		},
	})
	if err != nil {
		return nil, err
	}
	if err := sim.RunBatch(slots, genBlockSlots, func(i int, dst []float64) {
		srcs[i].NextBlock(dst)
	}); err != nil {
		return nil, err
	}
	return tails, nil
}

// TreeSimSharded runs cfg.Blocks independent replications of the §6.3
// tree (cfg.BlockSlots slots each, block b seeded with cfg.BlockSeed(b))
// across the worker pool and returns the per-session streaming delay
// tails merged in block order. Total simulated slots = cfg.TotalSlots();
// estimator memory stays O(sessions · spec.Buckets) no matter how many.
// The output is identical for any cfg.Workers.
//
// Each block starts from empty queues, so per-block warmup transients
// are averaged in — the standard independent-replications tradeoff;
// with ≥ 10^5 slots per block the bias on the tail is negligible for
// the paper's loads.
func TreeSimSharded(rhos []float64, cfg mc.Config, spec TreeTailSpec) ([]*stats.StreamTail, error) {
	if spec.Buckets == 0 {
		spec = DefaultTreeTailSpec
	}
	merged, err := spec.newTails()
	if err != nil {
		return nil, err
	}
	err = mc.Run(context.Background(), cfg,
		func(_ context.Context, _ int, seed uint64) ([]*stats.StreamTail, error) {
			return treeSimBlock(rhos, cfg.BlockSlots, seed, spec)
		},
		func(b int, tails []*stats.StreamTail) error {
			for i := range merged {
				if err := merged[i].Merge(tails[i]); err != nil {
					return fmt.Errorf("paper: session %d: %w", i, err)
				}
			}
			return nil
		})
	if err != nil {
		return nil, err
	}
	return merged, nil
}
