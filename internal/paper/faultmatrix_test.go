package paper

import (
	"context"
	"testing"

	"repro/internal/faults"
	"repro/internal/monitor"
)

// TestFaultReplicaMatrixSharedCounters drives the gpslab `faults
// -replicas` path with one FaultCounters instance shared across all
// parallel cells — under -race this pins the counters' lock-free
// concurrency safety — and checks the aggregate matches the per-cell
// counts exactly.
func TestFaultReplicaMatrixSharedCounters(t *testing.T) {
	const slots = 4000
	const replicas = 8
	cfgs := make([]faults.Config, replicas)
	srcSeeds := make([]uint64, replicas)
	for r := range cfgs {
		cfgs[r] = faults.Config{
			Seed: uint64(100 + r), Horizon: slots, Nodes: 3, Sessions: 4,
			Degrade: faults.ClassParams{Count: 3},
			Outage:  faults.ClassParams{Count: 2, MaxDuration: slots / 50},
			Churn:   faults.ClassParams{Count: 2},
			Delay:   faults.ClassParams{Count: 2, MaxExtra: 3},
		}
		srcSeeds[r] = uint64(7 + r)
	}
	// A tight bound so plenty of violations hammer the counter.
	dBound := []float64{4, 4, 4, 4}

	counters := monitor.NewFaultCounters()
	cells, err := FaultReplicaMatrix(context.Background(), cfgs, srcSeeds, dBound, counters)
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != replicas {
		t.Fatalf("%d cells, want %d", len(cells), replicas)
	}
	wantViolations := 0
	for k, c := range cells {
		if c.Samples == 0 {
			t.Fatalf("cell %d observed no delay samples", k)
		}
		for _, e := range c.Exceed {
			wantViolations += e
		}
	}
	s := counters.Snapshot()
	if s.Violations != wantViolations {
		t.Fatalf("counters saw %d violations, cells counted %d", s.Violations, wantViolations)
	}
	if s.Total == 0 {
		t.Fatal("no injected faults counted")
	}

	// Determinism: a rerun reproduces the cells bit for bit.
	again, err := FaultReplicaMatrix(context.Background(), cfgs, srcSeeds, dBound, nil)
	if err != nil {
		t.Fatal(err)
	}
	for k := range cells {
		if cells[k].Samples != again[k].Samples {
			t.Fatalf("cell %d: samples %d then %d", k, cells[k].Samples, again[k].Samples)
		}
		for i := range cells[k].Exceed {
			if cells[k].Exceed[i] != again[k].Exceed[i] {
				t.Fatalf("cell %d session %d: exceed %d then %d", k, i, cells[k].Exceed[i], again[k].Exceed[i])
			}
		}
	}
}
