package paper

import (
	"testing"

	"repro/internal/network"
)

func TestTreeSimParallelMergesReplications(t *testing.T) {
	const slots = 20000
	seeds := []uint64{1, 2, 3, 4}
	merged, err := TreeSimParallel(Set1Rho, slots, seeds)
	if err != nil {
		t.Fatalf("TreeSimParallel: %v", err)
	}
	single, err := TreeSim(Set1Rho, slots, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := range merged {
		if merged[i].N() <= single[i].N() {
			t.Errorf("session %d: merged %d samples not above single run's %d",
				i, merged[i].N(), single[i].N())
		}
	}
	// Merged tails still sit below the bounds (offset as usual).
	chars, err := Table2(Set1Rho)
	if err != nil {
		t.Fatal(err)
	}
	bounds, err := Tree(chars).RPPSBounds(network.VariantDiscrete)
	if err != nil {
		t.Fatal(err)
	}
	for i, tail := range merged {
		for _, d := range []float64{10, 14} {
			if emp := tail.CCDF(d); emp > bounds[i].Delay.Eval(d-3)*1.2+1e-9 {
				t.Errorf("session %d: merged Pr{D>=%v} = %v above bound", i, d, emp)
			}
		}
	}
	if _, err := TreeSimParallel(Set1Rho, slots, nil); err == nil {
		t.Error("no seeds: want error")
	}
}

func TestTreeSimParallelDeterministic(t *testing.T) {
	a, err := TreeSimParallel(Set1Rho, 5000, []uint64{7, 8})
	if err != nil {
		t.Fatal(err)
	}
	b, err := TreeSimParallel(Set1Rho, 5000, []uint64{7, 8})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i].N() != b[i].N() || a[i].Mean() != b[i].Mean() {
			t.Fatalf("session %d: replicated runs differ", i)
		}
	}
}

func TestRhoSweepTradeoff(t *testing.T) {
	pts, err := RhoSweep(0.8, 1.2, 9)
	if err != nil {
		t.Fatalf("RhoSweep: %v", err)
	}
	if len(pts) < 3 {
		t.Fatalf("only %d feasible sweep points", len(pts))
	}
	// The paper's trade-off: alpha increases with rho (larger envelope
	// rate buys a faster decay) for every session, monotonically across
	// the sweep.
	for i := 0; i < 4; i++ {
		for k := 1; k < len(pts); k++ {
			if pts[k].Alphas[i] <= pts[k-1].Alphas[i] {
				t.Errorf("session %d: alpha not increasing in rho (%v -> %v)",
					i, pts[k-1].Alphas[i], pts[k].Alphas[i])
			}
		}
	}
	// And the delay level at 1e-6 improves (shrinks) as rho grows —
	// exactly why Set 1 beats Set 2 in Figure 3.
	for i := 0; i < 4; i++ {
		first, last := pts[0].D1e6[i], pts[len(pts)-1].D1e6[i]
		if !(last < first) {
			t.Errorf("session %d: D(1e-6) did not improve across the sweep (%v -> %v)", i, first, last)
		}
	}
}

func TestRhoSweepValidation(t *testing.T) {
	if _, err := RhoSweep(0, 1, 5); err == nil {
		t.Error("zero min: want error")
	}
	if _, err := RhoSweep(1, 1, 5); err == nil {
		t.Error("empty range: want error")
	}
	if _, err := RhoSweep(0.5, 0.9, 1); err == nil {
		t.Error("single point: want error")
	}
	if _, err := RhoSweep(5, 6, 3); err == nil {
		t.Error("infeasible range: want error")
	}
}
