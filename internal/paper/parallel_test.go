package paper

import (
	"math"
	"testing"

	"repro/internal/network"
	"repro/internal/stats"
)

// The parallel pipeline's contract is bit-identity with the serial
// reference loops it replaced: fanning the work items out across CPUs
// must not change a single output byte. These tests recompute each
// product with an inline serial loop and compare float bit patterns.

func TestFigure3ParallelMatchesSerial(t *testing.T) {
	set, err := Table2(Set1Rho)
	if err != nil {
		t.Fatal(err)
	}
	const dmax, nPoints = 40.0, 33
	got, err := Figure3(set, dmax, nPoints)
	if err != nil {
		t.Fatal(err)
	}

	net := Tree(set)
	bounds, err := net.RPPSBounds(network.VariantDiscrete)
	if err != nil {
		t.Fatal(err)
	}
	grid := stats.Levels(0, dmax, nPoints)
	if len(got) != len(bounds) {
		t.Fatalf("%d series, want %d", len(got), len(bounds))
	}
	for i, b := range bounds {
		if len(got[i].Y) != len(grid) {
			t.Fatalf("series %d: %d points, want %d", i, len(got[i].Y), len(grid))
		}
		for k, d := range grid {
			want := b.Delay.Eval(d)
			if math.Float64bits(got[i].Y[k]) != math.Float64bits(want) {
				t.Fatalf("series %d point %d: got %v, want %v (not bit-identical)", i, k, got[i].Y[k], want)
			}
		}
	}
}

func TestFigure4ParallelMatchesSerial(t *testing.T) {
	const dmax, nPoints = 60.0, 25
	got, err := Figure4(dmax, nPoints)
	if err != nil {
		t.Fatal(err)
	}

	set, err := Table2(Set2Rho)
	if err != nil {
		t.Fatal(err)
	}
	net := Tree(set)
	models, err := Models()
	if err != nil {
		t.Fatal(err)
	}
	grid := stats.Levels(0, dmax, nPoints)
	for i, m := range models {
		g := net.GNet(i)
		family, err := m.DeltaTail(g)
		if err != nil {
			t.Fatal(err)
		}
		family.Paper = true
		for k, d := range grid {
			want := family.Eval(g * d)
			if math.Float64bits(got[i].Y[k]) != math.Float64bits(want) {
				t.Fatalf("series %d point %d: got %v, want %v (not bit-identical)", i, k, got[i].Y[k], want)
			}
		}
	}
}

func TestRhoSweepParallelMatchesSerial(t *testing.T) {
	const minScale, maxScale, points = 0.85, 1.35, 17
	got, err := RhoSweep(minScale, maxScale, points)
	if err != nil {
		t.Fatal(err)
	}

	// Inline serial reference: the pre-pool RhoSweep loop.
	var want []RhoSweepPoint
	for k := 0; k < points; k++ {
		scale := minScale + (maxScale-minScale)*float64(k)/float64(points-1)
		rhos := make([]float64, len(Set1Rho))
		ok := true
		total := 0.0
		for i, r := range Set1Rho {
			rhos[i] = r * scale
			total += rhos[i]
			if rhos[i] <= Table1[i].Mean() || rhos[i] >= Table1[i].Lambda {
				ok = false
			}
		}
		if !ok || total >= 1 {
			continue
		}
		chars, err := Table2(rhos)
		if err != nil {
			t.Fatal(err)
		}
		net := Tree(chars)
		bounds, err := net.RPPSBounds(network.VariantDiscrete)
		if err != nil {
			t.Fatal(err)
		}
		pt := RhoSweepPoint{Scale: scale, Rhos: rhos}
		for i, c := range chars {
			pt.Alphas = append(pt.Alphas, c.Alpha)
			pt.D1e6 = append(pt.D1e6, bounds[i].Delay.Invert(1e-6))
		}
		want = append(want, pt)
	}

	if len(got) != len(want) {
		t.Fatalf("%d sweep points, want %d", len(got), len(want))
	}
	eq := func(a, b []float64, what string, row int) {
		t.Helper()
		if len(a) != len(b) {
			t.Fatalf("row %d %s: %d values, want %d", row, what, len(a), len(b))
		}
		for i := range a {
			if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
				t.Fatalf("row %d %s[%d]: got %v, want %v (not bit-identical)", row, what, i, a[i], b[i])
			}
		}
	}
	for r := range want {
		if math.Float64bits(got[r].Scale) != math.Float64bits(want[r].Scale) {
			t.Fatalf("row %d scale: got %v, want %v", r, got[r].Scale, want[r].Scale)
		}
		eq(got[r].Rhos, want[r].Rhos, "rhos", r)
		eq(got[r].Alphas, want[r].Alphas, "alphas", r)
		eq(got[r].D1e6, want[r].D1e6, "d1e6", r)
	}
}

func TestTreeSimParallelMatchesSeedOrderMerge(t *testing.T) {
	seeds := []uint64{11, 22, 33}
	const slots = 4000
	got, err := TreeSimParallel(Set1Rho, slots, seeds)
	if err != nil {
		t.Fatal(err)
	}
	// Serial reference: run each seed alone, merge in seed order.
	want := make([]*stats.Tail, len(Table1))
	for i := range want {
		want[i] = &stats.Tail{}
	}
	for _, seed := range seeds {
		tails, err := TreeSim(Set1Rho, slots, seed)
		if err != nil {
			t.Fatal(err)
		}
		for i, tl := range tails {
			want[i].AddAll(tl.Samples())
		}
	}
	for i := range want {
		gs, ws := got[i].Samples(), want[i].Samples()
		if len(gs) != len(ws) {
			t.Fatalf("session %d: %d samples, want %d", i, len(gs), len(ws))
		}
		for k := range ws {
			if math.Float64bits(gs[k]) != math.Float64bits(ws[k]) {
				t.Fatalf("session %d sample %d: got %v, want %v", i, k, gs[k], ws[k])
			}
		}
	}
}
