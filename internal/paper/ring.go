package paper

import (
	"fmt"

	"repro/internal/ebb"
	"repro/internal/netsim"
	"repro/internal/network"
	"repro/internal/source"
	"repro/internal/stats"
)

// Ring builds an N-node ring network in which session i enters at node i
// and traverses hops nodes clockwise — a deliberately cyclic topology
// where acyclic feed-forward induction fails and CRST stability
// (Theorem 13) is the only analytic route. All sessions use the given
// characterization and the RPPS assignment.
func Ring(n, hops int, char ebb.Process) (network.Network, error) {
	if n < 2 || hops < 1 || hops >= n {
		return network.Network{}, fmt.Errorf("paper: ring(n=%d, hops=%d) invalid", n, hops)
	}
	net := network.Network{}
	for m := 0; m < n; m++ {
		net.Nodes = append(net.Nodes, network.Node{Name: fmt.Sprintf("ring-%d", m), Rate: 1})
	}
	for i := 0; i < n; i++ {
		route := make([]int, hops)
		phi := make([]float64, hops)
		for k := 0; k < hops; k++ {
			route[k] = (i + k) % n
			phi[k] = char.Rho
		}
		net.Sessions = append(net.Sessions, network.Session{
			Name:    fmt.Sprintf("flow-%d", i),
			Arrival: char,
			Route:   route,
			Phi:     phi,
		})
	}
	return net, nil
}

// RingSim runs the matching slotted simulation with one on-off source per
// session (Table 1 session-2 parameters scaled so per-node load is
// hops·ρ), returning per-session end-to-end delay tails.
func RingSim(n, hops, slots int, seed uint64) ([]*stats.Tail, error) {
	tails := make([]*stats.Tail, n)
	for i := range tails {
		tails[i] = &stats.Tail{}
	}
	sessions := make([]netsim.SessionSpec, n)
	nodes := make([]netsim.Node, n)
	for m := 0; m < n; m++ {
		nodes[m] = netsim.Node{Name: fmt.Sprintf("ring-%d", m), Rate: 1}
	}
	for i := 0; i < n; i++ {
		route := make([]int, hops)
		phi := make([]float64, hops)
		for k := 0; k < hops; k++ {
			route[k] = (i + k) % n
			phi[k] = 0.25
		}
		sessions[i] = netsim.SessionSpec{Name: fmt.Sprintf("flow-%d", i), Route: route, Phi: phi}
	}
	sim, err := netsim.New(netsim.Config{
		Nodes:    nodes,
		Sessions: sessions,
		OnDelay:  func(sess, slot int, d float64) { tails[sess].Add(d) },
	})
	if err != nil {
		return nil, err
	}
	srcs := make([]func() float64, n)
	for i := 0; i < n; i++ {
		s, err := newTable1Source(1, seed+uint64(i)) // session-2 params
		if err != nil {
			return nil, err
		}
		srcs[i] = s.Next
	}
	if err := sim.Run(slots, func(i int) float64 { return srcs[i]() }); err != nil {
		return nil, err
	}
	return tails, nil
}

// newTable1Source builds a sampler for one Table 1 row.
func newTable1Source(row int, seed uint64) (*source.OnOff, error) {
	p := Table1[row]
	return source.NewOnOff(p.P, p.Q, p.Lambda, seed)
}
