// Package paper pins down the concrete experiment of the paper's §6.3 —
// Table 1 source parameters, the Table 2 E.B.B. characterization sets,
// the Figure 2 three-node tree network — and produces the series behind
// Figures 3 and 4 plus the simulation-validation extension. The CLI, the
// benchmark harness and the examples all draw on this package so every
// surface reproduces exactly the same numbers.
package paper

import (
	"context"
	"fmt"

	"repro/internal/ebb"
	"repro/internal/netsim"
	"repro/internal/network"
	"repro/internal/parallel"
	"repro/internal/plot"
	"repro/internal/source"
	"repro/internal/stats"
)

// OnOffParams mirrors one row of the paper's Table 1.
type OnOffParams struct {
	P      float64 // off→on transition probability
	Q      float64 // on→off transition probability
	Lambda float64 // on-state rate
}

// Mean returns the source's average rate p·λ/(p+q).
func (o OnOffParams) Mean() float64 { return o.P * o.Lambda / (o.P + o.Q) }

// Table1 is the paper's Table 1: the four on-off sources.
var Table1 = []OnOffParams{
	{P: 0.3, Q: 0.7, Lambda: 0.5},
	{P: 0.4, Q: 0.4, Lambda: 0.4},
	{P: 0.3, Q: 0.3, Lambda: 0.3},
	{P: 0.4, Q: 0.6, Lambda: 0.5},
}

// SessionNames label the four sessions.
var SessionNames = []string{"session 1", "session 2", "session 3", "session 4"}

// Set1Rho and Set2Rho are the two envelope-rate choices of Table 2.
var (
	Set1Rho = []float64{0.2, 0.25, 0.2, 0.25}
	Set2Rho = []float64{0.17, 0.22, 0.17, 0.22}
)

// PaperSet1 and PaperSet2 are the (Λ, α) values the paper prints in
// Table 2, kept for paper-vs-measured reporting.
var (
	PaperSet1Alpha  = []float64{1.74, 1.76, 2.13, 1.62}
	PaperSet1Lambda = []float64{1.0, 0.92, 0.84, 1.0}
	PaperSet2Alpha  = []float64{0.729, 0.672, 0.775, 0.655}
	PaperSet2Lambda = []float64{1.0, 0.968, 0.929, 1.0}
)

// Models returns the analytic Markov-fluid view of the Table 1 sources.
func Models() ([]*source.MarkovFluid, error) {
	out := make([]*source.MarkovFluid, len(Table1))
	for i, p := range Table1 {
		s, err := source.NewOnOff(p.P, p.Q, p.Lambda, 1)
		if err != nil {
			return nil, fmt.Errorf("paper: source %d: %w", i+1, err)
		}
		m, err := s.Markov()
		if err != nil {
			return nil, fmt.Errorf("paper: source %d: %w", i+1, err)
		}
		out[i] = m
	}
	return out, nil
}

// Sources builds fresh samplers for the Table 1 sources, seeded
// deterministically from the given base seed.
func Sources(seed uint64) ([]*source.OnOff, error) {
	out := make([]*source.OnOff, len(Table1))
	for i, p := range Table1 {
		s, err := source.NewOnOff(p.P, p.Q, p.Lambda, seed+uint64(i)*0x9e37)
		if err != nil {
			return nil, err
		}
		out[i] = s
	}
	return out, nil
}

// Table2 regenerates one column block of the paper's Table 2: the
// (ρ, Λ, α)-E.B.B. characterization of each source at the given envelope
// rates, using the [LNT94] prefactor convention the paper used.
func Table2(rhos []float64) ([]ebb.Process, error) {
	if len(rhos) != len(Table1) {
		return nil, fmt.Errorf("paper: %d rhos for %d sources", len(rhos), len(Table1))
	}
	models, err := Models()
	if err != nil {
		return nil, err
	}
	out := make([]ebb.Process, len(models))
	for i, m := range models {
		p, err := m.EBBPaper(rhos[i])
		if err != nil {
			return nil, fmt.Errorf("paper: session %d: %w", i+1, err)
		}
		out[i] = p
	}
	return out, nil
}

// Tree builds the Figure 2 network: sessions 1-2 enter at node 1,
// sessions 3-4 at node 2, and all four traverse node 3, under the RPPS
// assignment (φ_i^m = ρ_i) with unit-rate servers.
func Tree(set []ebb.Process) network.Network {
	net := network.Network{
		Nodes: []network.Node{
			{Name: "node1", Rate: 1},
			{Name: "node2", Rate: 1},
			{Name: "node3", Rate: 1},
		},
	}
	for i, a := range set {
		first := 0
		if i >= 2 {
			first = 1
		}
		net.Sessions = append(net.Sessions, network.Session{
			Name:    SessionNames[i],
			Arrival: a,
			Route:   []int{first, 2},
			Phi:     []float64{a.Rho, a.Rho},
		})
	}
	return net
}

// Figure3 produces the four end-to-end delay-bound curves of Figure 3
// for one Table 2 set: Pr{D_i^net >= d} <= Λ_i^net·e^{-α_i g_i d}
// (paper eq. 67, discrete Lemma 5 form), on an even grid of nPoints+1
// delays over [0, dmax].
func Figure3(set []ebb.Process, dmax float64, nPoints int) ([]plot.Series, error) {
	net := Tree(set)
	bounds, err := net.RPPSBounds(network.VariantDiscrete)
	if err != nil {
		return nil, err
	}
	grid := stats.Levels(0, dmax, nPoints)
	// Every (session, delay) cell is an independent bound evaluation, so
	// the grid fans out across CPUs; cell values land back by index, which
	// keeps the curves identical to the serial loop.
	vals, err := parallel.Map(context.Background(), len(bounds)*len(grid),
		func(_ context.Context, item int) (float64, error) {
			i, k := item/len(grid), item%len(grid)
			return bounds[i].Delay.Eval(grid[k]), nil
		})
	if err != nil {
		return nil, err
	}
	out := make([]plot.Series, len(bounds))
	for i := range bounds {
		out[i] = plot.Series{Name: SessionNames[i], X: grid, Y: vals[i*len(grid) : (i+1)*len(grid)]}
	}
	return out, nil
}

// Figure4 produces the improved Set-2 curves of Figure 4: the direct
// [LNT94]-style queue bound on δ_i at the bottleneck rate g_i^net
// replaces the generic E.B.B.-based Lemma 5 bound, and the network
// reduction D_i^net <= δ_i/g_i^net of Theorem 15 carries it end to end.
func Figure4(dmax float64, nPoints int) ([]plot.Series, error) {
	set, err := Table2(Set2Rho)
	if err != nil {
		return nil, err
	}
	net := Tree(set)
	models, err := Models()
	if err != nil {
		return nil, err
	}
	grid := stats.Levels(0, dmax, nPoints)
	// Stage 1: one δ-tail family per session (the lowest-index error is
	// returned, matching the serial session order).
	type row struct {
		g      float64
		family *source.DeltaTailFamily
	}
	rows, err := parallel.Map(context.Background(), len(models),
		func(_ context.Context, i int) (row, error) {
			g := net.GNet(i)
			family, err := models[i].DeltaTail(g)
			if err != nil {
				return row{}, fmt.Errorf("paper: session %d: %w", i+1, err)
			}
			family.Paper = true
			return row{g: g, family: family}, nil
		})
	if err != nil {
		return nil, err
	}
	// Stage 2: every (session, delay) cell evaluates independently.
	vals, err := parallel.Map(context.Background(), len(models)*len(grid),
		func(_ context.Context, item int) (float64, error) {
			i, k := item/len(grid), item%len(grid)
			return rows[i].family.Eval(rows[i].g * grid[k]), nil
		})
	if err != nil {
		return nil, err
	}
	out := make([]plot.Series, len(models))
	for i := range models {
		out[i] = plot.Series{Name: SessionNames[i], X: grid, Y: vals[i*len(grid) : (i+1)*len(grid)]}
	}
	return out, nil
}

// TreeSim runs the Figure 2 network in the slotted network simulator for
// the given number of slots and returns per-session end-to-end delay
// samples. Weights follow RPPS for the chosen ρ set.
func TreeSim(rhos []float64, slots int, seed uint64) ([]*stats.Tail, error) {
	srcs, err := Sources(seed)
	if err != nil {
		return nil, err
	}
	tails := make([]*stats.Tail, len(Table1))
	for i := range tails {
		tails[i] = &stats.Tail{}
	}
	sessions := make([]netsim.SessionSpec, len(Table1))
	for i := range Table1 {
		first := 0
		if i >= 2 {
			first = 1
		}
		sessions[i] = netsim.SessionSpec{
			Name:  SessionNames[i],
			Route: []int{first, 2},
			Phi:   []float64{rhos[i], rhos[i]},
		}
	}
	sim, err := netsim.New(netsim.Config{
		Nodes: []netsim.Node{
			{Name: "node1", Rate: 1},
			{Name: "node2", Rate: 1},
			{Name: "node3", Rate: 1},
		},
		Sessions: sessions,
		OnDelay: func(sess, slot int, d float64) {
			tails[sess].Add(d)
		},
	})
	if err != nil {
		return nil, err
	}
	if err := sim.Run(slots, func(i int) float64 { return srcs[i].Next() }); err != nil {
		return nil, err
	}
	return tails, nil
}

// BoundVsSim produces, per session, the analytic Figure-3 style bound and
// the simulated end-to-end delay CCDF on a common grid — the validation
// experiment the paper's conclusion calls for. The simulated CCDF
// includes the (documented, conservative) store-and-forward pipeline
// offset of the slotted simulator; it must sit below the bound curve
// shifted by the pipeline depth.
func BoundVsSim(rhos []float64, slots int, seed uint64, dmax float64, nPoints int) (bound, sim []plot.Series, err error) {
	set, err := Table2(rhos)
	if err != nil {
		return nil, nil, err
	}
	bound, err = Figure3(set, dmax, nPoints)
	if err != nil {
		return nil, nil, err
	}
	tails, err := TreeSim(rhos, slots, seed)
	if err != nil {
		return nil, nil, err
	}
	grid := stats.Levels(0, dmax, nPoints)
	sim = make([]plot.Series, len(tails))
	for i, t := range tails {
		sim[i] = plot.Series{Name: SessionNames[i] + " (sim)", X: grid, Y: t.CCDFCurve(grid)}
	}
	return bound, sim, nil
}
