package paper

import (
	"testing"

	"repro/internal/fluid"
	"repro/internal/gpsmath"
	"repro/internal/source"
	"repro/internal/stats"
)

// set1Node builds the Set-1 RPPS single node, its analysis, and fresh
// sources.
func set1Node(t *testing.T, seed uint64) (gpsmath.Server, *gpsmath.Analysis, []*source.OnOff) {
	t.Helper()
	chars, err := Table2(Set1Rho)
	if err != nil {
		t.Fatal(err)
	}
	srv := gpsmath.NewRPPSServer(1, chars, nil)
	a, err := gpsmath.AnalyzeServer(srv, gpsmath.Options{Independent: true, Xi: gpsmath.XiOptimal})
	if err != nil {
		t.Fatal(err)
	}
	srcs, err := Sources(seed)
	if err != nil {
		t.Fatal(err)
	}
	return srv, a, srcs
}

// The input-output relation (Theorem 7/11, eq. 25/53): the departure
// process of each session is an E.B.B. process with the computed
// characterization. We verify it on simulated departures.
func TestOutputEBBHoldsOnDepartures(t *testing.T) {
	srv, a, srcs := set1Node(t, 4242)
	phi := make([]float64, 4)
	for i, s := range srv.Sessions {
		phi[i] = s.Phi
	}
	sim, err := fluid.New(fluid.Config{Rate: 1, Phi: phi})
	if err != nil {
		t.Fatal(err)
	}
	const slots = 300000
	departures := make([][]float64, 4)
	for i := range departures {
		departures[i] = make([]float64, 0, slots)
	}
	prev := make([]float64, 4)
	arr := make([]float64, 4)
	for k := 0; k < slots; k++ {
		for i := range arr {
			arr[i] = srcs[i].Next()
		}
		if _, err := sim.Step(arr); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 4; i++ {
			cum := sim.CumService(i)
			departures[i] = append(departures[i], cum-prev[i])
			prev[i] = cum
		}
	}
	for i := 0; i < 4; i++ {
		sb := a.Bounds[i]
		out, err := sb.OutputEBB(sb.ThetaMax / 2)
		if err != nil {
			t.Fatal(err)
		}
		worst, err := source.VerifyEBB(departures[i], out, []int{1, 4, 16, 64}, []float64{0.2, 0.5, 1.0})
		if err != nil {
			t.Fatal(err)
		}
		if worst > 1.05 {
			t.Errorf("session %d: departure E.B.B. %v violated empirically (ratio %v)", i+1, out, worst)
		}
	}
}

// The paper's §7 asks how the bound's decay rate compares with the
// session's actual backlog decay rate. For H_1 sessions the bound decays
// at α_i (Theorem 10); the measured decay rate must be at least that.
func TestBacklogDecayRateDominatesBound(t *testing.T) {
	srv, _, srcs := set1Node(t, 777)
	phi := make([]float64, 4)
	for i, s := range srv.Sessions {
		phi[i] = s.Phi
	}
	sim, err := fluid.New(fluid.Config{Rate: 1, Phi: phi})
	if err != nil {
		t.Fatal(err)
	}
	tails := make([]*stats.Tail, 4)
	for i := range tails {
		tails[i] = &stats.Tail{}
	}
	arr := make([]float64, 4)
	for k := 0; k < 400000; k++ {
		for i := range arr {
			arr[i] = srcs[i].Next()
		}
		if _, err := sim.Step(arr); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 4; i++ {
			tails[i].Add(sim.Backlog(i))
		}
	}
	for i := 0; i < 4; i++ {
		fitted, err := tails[i].FitDecayRate(0.9, 0.9999)
		if err != nil {
			t.Fatalf("session %d: %v", i+1, err)
		}
		alpha := srv.Sessions[i].Arrival.Alpha
		// The bound's decay rate must not exceed the measured one
		// (10% estimation slack).
		if fitted < 0.9*alpha {
			t.Errorf("session %d: measured decay rate %v below bound rate %v", i+1, fitted, alpha)
		}
	}
}

// End-to-end conservation of characterizations through a full analysis:
// feeding a session's *output* E.B.B. into a fresh downstream server must
// produce finite bounds (the recursion the CRST machinery relies on).
func TestOutputFeedsDownstreamAnalysis(t *testing.T) {
	_, a, _ := set1Node(t, 5)
	outs := make([]struct {
		p   gpsmath.Session
		err error
	}, 4)
	srv2 := gpsmath.Server{Rate: 1}
	for i, sb := range a.Bounds {
		out, err := sb.OutputEBB(sb.ThetaMax / 2)
		outs[i].err = err
		if err != nil {
			t.Fatal(err)
		}
		srv2.Sessions = append(srv2.Sessions, gpsmath.Session{
			Name: "down", Phi: out.Rho, Arrival: out,
		})
	}
	a2, err := gpsmath.AnalyzeServer(srv2, gpsmath.Options{Independent: false, Xi: gpsmath.XiOptimal})
	if err != nil {
		t.Fatal(err)
	}
	for i, sb := range a2.Bounds {
		if v := sb.BacklogTail(200); v > 1e-3 {
			t.Errorf("downstream session %d: bound at 200 = %v (not decaying)", i, v)
		}
	}
}
