package paper

import (
	"context"

	"repro/internal/faults"
	"repro/internal/monitor"
	"repro/internal/parallel"
)

// FaultCell is one (fault schedule, traffic seed) replication of the
// faulted tree: per-session bound exceedances, shed volume, and the
// total delay samples observed.
type FaultCell struct {
	Exceed  []int
	Dropped []float64
	Samples int
}

// FaultReplicaMatrix reruns the §6.3 tree once per configuration across
// the worker pool. Cell k runs schedule cfgs[k] with traffic seed
// srcSeeds[k] and counts delay samples at or beyond dBound per session.
// counters, when non-nil, is fed concurrently from every worker — one
// Fault per scheduled event and one Violation per exceedance — so it
// must be safe for parallel use. The cell results themselves depend only
// on (cfgs, srcSeeds, dBound), never on scheduling.
func FaultReplicaMatrix(ctx context.Context, cfgs []faults.Config, srcSeeds []uint64, dBound []float64, counters *monitor.FaultCounters) ([]FaultCell, error) {
	if len(srcSeeds) != len(cfgs) {
		srcSeeds = make([]uint64, len(cfgs))
		for k := range srcSeeds {
			srcSeeds[k] = uint64(k)
		}
	}
	return parallel.Map(ctx, len(cfgs),
		func(_ context.Context, k int) (FaultCell, error) {
			inj, err := faults.New(cfgs[k])
			if err != nil {
				return FaultCell{}, err
			}
			if counters != nil {
				for _, e := range inj.Events() {
					counters.Fault(e.Class.String())
				}
			}
			c := FaultCell{Exceed: make([]int, len(Table1))}
			run, err := FaultTreeSim(Set1Rho, cfgs[k].Horizon, srcSeeds[k], inj,
				func(sess, slot int, d float64) {
					if d >= dBound[sess] {
						c.Exceed[sess]++
						if counters != nil {
							counters.Violation()
						}
					}
					c.Samples++
				})
			if err != nil {
				return FaultCell{}, err
			}
			c.Dropped = run.Dropped
			return c, nil
		})
}
