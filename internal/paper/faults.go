package paper

import (
	"repro/internal/faults"
	"repro/internal/netsim"
	"repro/internal/stats"
)

// FaultRun is the outcome of rerunning the §6.3 tree under a fault
// schedule.
type FaultRun struct {
	// Tails holds per-session end-to-end delay samples observed while
	// the schedule was active.
	Tails []*stats.Tail
	// Dropped is the per-session volume discarded at the ingress while
	// the session was churned out by a SessionLeave fault.
	Dropped []float64
}

// FaultTreeSim is TreeSim with a fault injector wired into the slotted
// simulator: node capacities scale (or vanish) per the schedule,
// churned sessions have their arrivals dropped at the ingress, and
// delayed-forwarding faults hold fluid between hops. onDelay, when
// non-nil, additionally observes every end-to-end delay sample so the
// caller can count exceedances of the nominal bounds; the same seed and
// schedule reproduce the identical sample stream.
func FaultTreeSim(rhos []float64, slots int, seed uint64, inj *faults.Injector, onDelay func(sess, slot int, d float64)) (FaultRun, error) {
	srcs, err := Sources(seed)
	if err != nil {
		return FaultRun{}, err
	}
	run := FaultRun{
		Tails:   make([]*stats.Tail, len(Table1)),
		Dropped: make([]float64, len(Table1)),
	}
	for i := range run.Tails {
		run.Tails[i] = &stats.Tail{}
	}
	sessions := make([]netsim.SessionSpec, len(Table1))
	for i := range Table1 {
		first := 0
		if i >= 2 {
			first = 1
		}
		sessions[i] = netsim.SessionSpec{
			Name:  SessionNames[i],
			Route: []int{first, 2},
			Phi:   []float64{rhos[i], rhos[i]},
		}
	}
	sim, err := netsim.New(netsim.Config{
		Nodes: []netsim.Node{
			{Name: "node1", Rate: 1},
			{Name: "node2", Rate: 1},
			{Name: "node3", Rate: 1},
		},
		Sessions: sessions,
		OnDelay: func(sess, slot int, d float64) {
			run.Tails[sess].Add(d)
			if onDelay != nil {
				onDelay(sess, slot, d)
			}
		},
		NodeRateScale: inj.NodeRateScale,
		SessionActive: inj.SessionActive,
		ForwardDelay:  inj.ForwardDelay,
		OnDrop: func(sess, slot int, v float64) {
			run.Dropped[sess] += v
		},
	})
	if err != nil {
		return FaultRun{}, err
	}
	if err := sim.Run(slots, func(i int) float64 { return srcs[i].Next() }); err != nil {
		return FaultRun{}, err
	}
	return run, nil
}

// TreeNodeSessions lists, per Figure 2 node, the sessions that traverse
// it: sessions 1-2 enter at node 1, sessions 3-4 at node 2, and all
// four share node 3. Degradation analyses use it to re-evaluate each
// node's feasible partition against its faulted capacity.
func TreeNodeSessions() [][]int {
	return [][]int{{0, 1}, {2, 3}, {0, 1, 2, 3}}
}
