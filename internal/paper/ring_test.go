package paper

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/network"
)

func TestRingValidation(t *testing.T) {
	char, err := Table2(Set1Rho)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Ring(1, 1, char[1]); err == nil {
		t.Error("n < 2: want error")
	}
	if _, err := Ring(4, 0, char[1]); err == nil {
		t.Error("hops < 1: want error")
	}
	if _, err := Ring(4, 4, char[1]); err == nil {
		t.Error("hops >= n: want error")
	}
}

// The ring is a cyclic topology: the CRST machinery must classify it
// (single class under RPPS) and produce finite bounds everywhere —
// Theorem 13 in action beyond feed-forward networks.
func TestRingCRSTStability(t *testing.T) {
	chars, err := Table2(Set1Rho)
	if err != nil {
		t.Fatal(err)
	}
	net, err := Ring(6, 3, chars[1]) // load 3·0.25 = 0.75 per node
	if err != nil {
		t.Fatal(err)
	}
	if err := net.Validate(); err != nil {
		t.Fatalf("ring invalid: %v", err)
	}
	if !net.IsRPPS() {
		t.Error("ring should be RPPS")
	}
	classes, _, err := net.CRSTClasses()
	if err != nil {
		t.Fatalf("CRSTClasses: %v", err)
	}
	if len(classes) != 1 {
		t.Errorf("ring classes = %d, want 1 under RPPS", len(classes))
	}
	a, err := net.AnalyzeCRST(network.CRSTOptions{Independent: false})
	if err != nil {
		t.Fatalf("AnalyzeCRST: %v", err)
	}
	for i := range net.Sessions {
		if v := a.EndToEndDelayTail(i)(3000); v > 1e-6 {
			t.Errorf("session %d: bound at 3000 = %v, not decaying", i, v)
		}
	}
	// Theorem 15's closed form also applies (RPPS) and is route-length
	// independent: all sessions share the same bound by symmetry.
	bounds, err := net.RPPSBounds(network.VariantDiscrete)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i].GNet != bounds[0].GNet {
			t.Errorf("asymmetric g_net: %v vs %v", bounds[i].GNet, bounds[0].GNet)
		}
	}
}

// Simulated ring delays must sit inside the Theorem 15 budget (with the
// per-hop pipeline offset of the slotted simulator).
func TestRingSimWithinBounds(t *testing.T) {
	const (
		n     = 6
		hops  = 3
		slots = 100000
	)
	tails, err := RingSim(n, hops, slots, 33)
	if err != nil {
		t.Fatal(err)
	}
	chars, err := Table2(Set1Rho)
	if err != nil {
		t.Fatal(err)
	}
	net, err := Ring(n, hops, chars[1])
	if err != nil {
		t.Fatal(err)
	}
	bounds, err := net.RPPSBounds(network.VariantDiscrete)
	if err != nil {
		t.Fatal(err)
	}
	for i, tail := range tails {
		if tail.N() < slots/20 {
			t.Fatalf("session %d: only %d samples", i, tail.N())
		}
		for _, d := range []float64{10, 15, 20} {
			emp := tail.CCDF(d)
			// hops slots of pipeline/rounding offset.
			bnd := bounds[i].Delay.Eval(d - float64(hops) - 1)
			if emp > bnd*1.2+1e-9 {
				t.Errorf("session %d: Pr{D>=%v} sim %v above bound %v", i, d, emp, bnd)
			}
		}
	}
}

func TestWriteAll(t *testing.T) {
	dir := t.TempDir()
	if err := WriteAll(dir, 5000, 3); err != nil {
		t.Fatalf("WriteAll: %v", err)
	}
	for _, name := range []string{"fig3a.csv", "fig3b.csv", "fig4.csv", "boundvssim.csv"} {
		info, err := os.Stat(filepath.Join(dir, name))
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		if info.Size() < 100 {
			t.Errorf("%s suspiciously small: %d bytes", name, info.Size())
		}
	}
	// Skipping the simulation leaves only the three figures.
	dir2 := t.TempDir()
	if err := WriteAll(dir2, 0, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir2, "boundvssim.csv")); err == nil {
		t.Error("boundvssim.csv written despite simSlots = 0")
	}
}
