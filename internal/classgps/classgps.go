// Package classgps implements the scheduling structure the paper's §7
// proposes for combining isolation with multiplexing gain: traffic is
// grouped into classes of similar characteristics (similar ρ/φ, hence
// the same feasible-partition class); GPS separates the classes while
// FCFS multiplexes the sessions inside each class.
//
// Analysis follows the paper's recipe: each class is lumped into an
// aggregate E.B.B. session, the single-node theory bounds the aggregate
// class backlog and delay, and — because service inside a class is FCFS —
// the class bound is a per-session worst-case statistical bound for every
// member. A paired fluid simulator (GPS across classes, FIFO within)
// measures the multiplexing gain the scheme buys.
package classgps

import (
	"errors"
	"fmt"

	"repro/internal/ebb"
	"repro/internal/fluid"
	"repro/internal/gpsmath"
)

// Class is one traffic class: a GPS weight shared by member sessions that
// are served FCFS among themselves.
type Class struct {
	Name    string
	Phi     float64
	Members []ebb.Process
}

// Server is a class-based GPS server.
type Server struct {
	Rate    float64
	Classes []Class
}

// Validate checks structure and stability.
func (s Server) Validate() error {
	if !(s.Rate > 0) {
		return fmt.Errorf("classgps: rate = %v, want positive", s.Rate)
	}
	if len(s.Classes) == 0 {
		return errors.New("classgps: no classes")
	}
	total := 0.0
	for ci, c := range s.Classes {
		if !(c.Phi > 0) {
			return fmt.Errorf("classgps: class %d (%s): phi = %v", ci, c.Name, c.Phi)
		}
		if len(c.Members) == 0 {
			return fmt.Errorf("classgps: class %d (%s) has no members", ci, c.Name)
		}
		for mi, m := range c.Members {
			if err := m.Validate(); err != nil {
				return fmt.Errorf("classgps: class %d member %d: %w", ci, mi, err)
			}
			total += m.Rho
		}
	}
	if total >= s.Rate {
		return fmt.Errorf("classgps: sum rho = %v >= rate %v", total, s.Rate)
	}
	return nil
}

// AggregateServer lumps each class into one aggregate session at Chernoff
// parameter theta (paper §5: the aggregate of {(ρ_i, Λ_i, α_i)} is a
// (Σρ_i, e^{θΣσ̂_i(θ)}, θ)-E.B.B. process) and returns the plain GPS
// server whose per-"session" bounds are the per-class bounds.
func (s Server) AggregateServer(theta float64) (gpsmath.Server, error) {
	if err := s.Validate(); err != nil {
		return gpsmath.Server{}, err
	}
	srv := gpsmath.Server{Rate: s.Rate}
	for _, c := range s.Classes {
		agg, err := ebb.Aggregate(c.Members, theta)
		if err != nil {
			return gpsmath.Server{}, fmt.Errorf("classgps: class %s: %w", c.Name, err)
		}
		srv.Sessions = append(srv.Sessions, gpsmath.Session{Name: c.Name, Phi: c.Phi, Arrival: agg})
	}
	return srv, nil
}

// maxAggTheta returns the largest usable aggregation θ: the smallest
// member α across all classes (exclusive).
func (s Server) maxAggTheta() float64 {
	m := 0.0
	first := true
	for _, c := range s.Classes {
		for _, p := range c.Members {
			if first || p.Alpha < m {
				m, first = p.Alpha, false
			}
		}
	}
	return m
}

// ClassBounds is the per-class (and hence per-member, by the FCFS
// argument) statistical bound set.
type ClassBounds struct {
	Class  string
	Bounds *gpsmath.SessionBounds
}

// Analyze computes per-class bounds. thetaFrac in (0,1) selects the
// aggregation Chernoff parameter as a fraction of the smallest member α
// (0 means 0.5). Independence across classes is assumed when independent
// is true (sessions of different classes independent); members within a
// class need no independence assumption at all — aggregation is additive.
func (s Server) Analyze(thetaFrac float64, independent bool, xi gpsmath.XiMode) ([]ClassBounds, error) {
	if thetaFrac == 0 {
		thetaFrac = 0.5
	}
	if thetaFrac <= 0 || thetaFrac >= 1 {
		return nil, fmt.Errorf("classgps: theta fraction = %v, want in (0,1)", thetaFrac)
	}
	theta := thetaFrac * s.maxAggTheta()
	srv, err := s.AggregateServer(theta)
	if err != nil {
		return nil, err
	}
	a, err := gpsmath.AnalyzeServer(srv, gpsmath.Options{Independent: independent, Xi: xi})
	if err != nil {
		return nil, err
	}
	out := make([]ClassBounds, len(s.Classes))
	for i := range s.Classes {
		out[i] = ClassBounds{Class: s.Classes[i].Name, Bounds: a.Bounds[i]}
	}
	return out, nil
}

// Sim simulates the class-based server: exact fluid GPS across classes,
// FIFO inside each class. Per-member arrival batches are tracked against
// the class's cumulative service, which is exactly FIFO-within-class.
type Sim struct {
	inner *fluid.Sim
	// memberOf[k] maps flat member index to class index.
	memberOf []int
	nMembers int
	// pendingMembers[ci] queues the members whose batches are in flight
	// at class ci, in FIFO order; nil when delays are not tracked.
	pendingMembers [][]memberBatch
}

// MemberDelayFunc receives completed member batches: flat member index,
// arrival slot, exact delay.
type MemberDelayFunc func(member, arrivalSlot int, delay float64)

// NewSim builds the simulator. The flat member index enumerates classes
// in order, members within class in order.
func NewSim(s Server, onDelay MemberDelayFunc) (*Sim, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	var memberOf []int
	phi := make([]float64, len(s.Classes))
	for ci, c := range s.Classes {
		phi[ci] = c.Phi
		for range c.Members {
			memberOf = append(memberOf, ci)
		}
	}
	sim := &Sim{memberOf: memberOf, nMembers: len(memberOf)}
	cfg := fluid.Config{Rate: s.Rate, Phi: phi}
	if onDelay != nil {
		// fluid.Sim tracks one FIFO per class; member arrivals of the
		// same slot merge into one class batch, and each member is
		// attributed the merged batch's last-bit delay — conservative
		// per member, and exactly the quantity the class-level bound
		// dominates.
		sim.pendingMembers = make([][]memberBatch, len(s.Classes))
		cfg.OnDelay = func(class, slot int, d float64) {
			q := sim.pendingMembers[class]
			for len(q) > 0 && q[0].slot == slot {
				onDelay(q[0].member, slot, d)
				q = q[1:]
			}
			sim.pendingMembers[class] = q
		}
	}
	inner, err := fluid.New(cfg)
	if err != nil {
		return nil, err
	}
	sim.inner = inner
	return sim, nil
}

type memberBatch struct {
	member int
	slot   int
}

// Step advances one slot; arrivals are per flat member.
func (s *Sim) Step(memberArrivals []float64) error {
	if len(memberArrivals) != s.nMembers {
		return fmt.Errorf("classgps: %d arrivals for %d members", len(memberArrivals), s.nMembers)
	}
	classArr := make([]float64, s.inner.N())
	for k, a := range memberArrivals {
		if a < 0 {
			return fmt.Errorf("classgps: arrival[%d] = %v", k, a)
		}
		if a > 0 {
			ci := s.memberOf[k]
			classArr[ci] += a
			if s.pendingMembers != nil {
				s.pendingMembers[ci] = append(s.pendingMembers[ci], memberBatch{member: k, slot: s.inner.Slot()})
			}
		}
	}
	_, err := s.inner.Step(classArr)
	return err
}

// ClassBacklog returns the backlog of class ci.
func (s *Sim) ClassBacklog(ci int) float64 { return s.inner.Backlog(ci) }

// Slot returns completed slots.
func (s *Sim) Slot() int { return s.inner.Slot() }

// Run drives the simulator with a per-member generator.
func (s *Sim) Run(slots int, gen func(member int) float64) error {
	arr := make([]float64, s.nMembers)
	for t := 0; t < slots; t++ {
		for i := range arr {
			arr[i] = gen(i)
		}
		if err := s.Step(arr); err != nil {
			return err
		}
	}
	return nil
}
