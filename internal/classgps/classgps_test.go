package classgps

import (
	"math"
	"testing"

	"repro/internal/ebb"
	"repro/internal/fluid"
	"repro/internal/gpsmath"
	"repro/internal/source"
	"repro/internal/stats"
)

// threeClassServer mirrors the paper's §7 example: peak-rate, 75%-rate
// and 50%-rate classes (ρ/φ = 1, 4/3, 2).
func threeClassServer() Server {
	voice := ebb.Process{Rho: 0.05, Lambda: 1, Alpha: 3}
	video := ebb.Process{Rho: 0.1, Lambda: 1, Alpha: 2}
	data := ebb.Process{Rho: 0.08, Lambda: 1.2, Alpha: 1.5}
	return Server{
		Rate: 1,
		Classes: []Class{
			{Name: "voice", Phi: 0.20, Members: []ebb.Process{voice, voice, voice, voice}},
			{Name: "video", Phi: 0.225, Members: []ebb.Process{video, video, video}},
			{Name: "data", Phi: 0.12, Members: []ebb.Process{data, data, data}},
		},
	}
}

func TestValidate(t *testing.T) {
	if err := threeClassServer().Validate(); err != nil {
		t.Fatalf("valid server rejected: %v", err)
	}
	bad := threeClassServer()
	bad.Rate = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero rate: want error")
	}
	bad = threeClassServer()
	bad.Classes[0].Phi = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero phi: want error")
	}
	bad = threeClassServer()
	bad.Classes[1].Members = nil
	if err := bad.Validate(); err == nil {
		t.Error("empty class: want error")
	}
	bad = threeClassServer()
	bad.Classes[2].Members[0].Rho = 0.9
	if err := bad.Validate(); err == nil {
		t.Error("overload: want error")
	}
	if err := (Server{Rate: 1}).Validate(); err == nil {
		t.Error("no classes: want error")
	}
}

func TestAggregateServer(t *testing.T) {
	s := threeClassServer()
	srv, err := s.AggregateServer(0.7)
	if err != nil {
		t.Fatalf("AggregateServer: %v", err)
	}
	if err := srv.Validate(); err != nil {
		t.Fatalf("aggregate server invalid: %v", err)
	}
	if len(srv.Sessions) != 3 {
		t.Fatalf("%d aggregate sessions, want 3", len(srv.Sessions))
	}
	// Aggregate rho is the member sum.
	if got, want := srv.Sessions[0].Arrival.Rho, 0.2; math.Abs(got-want) > 1e-12 {
		t.Errorf("voice aggregate rho = %v, want %v", got, want)
	}
	// Aggregation theta must respect the smallest member alpha.
	if _, err := s.AggregateServer(5); err == nil {
		t.Error("theta above member alpha: want error")
	}
}

func TestAnalyzeBoundsValid(t *testing.T) {
	s := threeClassServer()
	for _, independent := range []bool{true, false} {
		bounds, err := s.Analyze(0.5, independent, gpsmath.XiOptimal)
		if err != nil {
			t.Fatalf("Analyze(independent=%v): %v", independent, err)
		}
		if len(bounds) != 3 {
			t.Fatalf("%d class bounds", len(bounds))
		}
		for _, cb := range bounds {
			v0 := cb.Bounds.BacklogTail(0.5)
			v1 := cb.Bounds.BacklogTail(60)
			if v1 > v0 || v1 > 1e-2 {
				t.Errorf("class %s: bound not decaying (%v at 0.5 -> %v at 60)", cb.Class, v0, v1)
			}
		}
	}
	if _, err := s.Analyze(2, true, gpsmath.XiOne); err == nil {
		t.Error("theta fraction >= 1: want error")
	}
}

func TestSimValidation(t *testing.T) {
	s := threeClassServer()
	sim, err := NewSim(s, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.Step([]float64{1}); err == nil {
		t.Error("wrong arrival count: want error")
	}
	arr := make([]float64, 10)
	arr[3] = -1
	if err := sim.Step(arr); err == nil {
		t.Error("negative arrival: want error")
	}
}

func TestSimClassBoundHoldsForMembers(t *testing.T) {
	s := threeClassServer()
	bounds, err := s.Analyze(0.5, true, gpsmath.XiOptimal)
	if err != nil {
		t.Fatal(err)
	}
	tails := make([]*stats.Tail, 10) // 10 flat members
	for i := range tails {
		tails[i] = &stats.Tail{}
	}
	sim, err := NewSim(s, func(member, slot int, d float64) {
		tails[member].Add(d)
	})
	if err != nil {
		t.Fatal(err)
	}
	// Drive each member with an on-off source at its rho (peak 2x rho,
	// duty 50% for voice/video; data slightly burstier).
	srcs := make([]*source.OnOff, 10)
	flat := 0
	for _, c := range s.Classes {
		for range c.Members {
			var err error
			srcs[flat], err = source.NewOnOff(0.5, 0.5, 2*c.Members[0].Rho, uint64(40+flat))
			if err != nil {
				t.Fatal(err)
			}
			flat++
		}
	}
	if err := sim.Run(150000, func(m int) float64 { return srcs[m].Next() }); err != nil {
		t.Fatal(err)
	}
	// Per-member simulated delays must sit below the class bound
	// (class bound dominates every member under FCFS-within-class).
	flat = 0
	for ci, c := range s.Classes {
		g := bounds[ci].Bounds.G
		_ = g
		for range c.Members {
			tail := tails[flat]
			if tail.N() == 0 {
				t.Fatalf("member %d recorded no delays", flat)
			}
			for _, d := range []float64{2, 4, 8} {
				emp := tail.CCDF(d)
				// +1 slot measurement rounding tolerance.
				bnd := bounds[ci].Bounds.DelayTail(math.Max(d-1, 0))
				if emp > bnd*1.5+1e-9 {
					t.Errorf("class %s member %d: Pr{D>=%v} sim %v above bound %v",
						c.Name, flat, d, emp, bnd)
				}
			}
			flat++
		}
	}
}

// Multiplexing-gain demonstration (the point of the paper's §7 proposal):
// grouping 4 identical voice sessions into one class yields markedly
// smaller simulated per-session delays than giving each its own GPS queue
// with a quarter of the class weight.
func TestMultiplexingGain(t *testing.T) {
	mk := func(seed uint64) []*source.OnOff {
		out := make([]*source.OnOff, 4)
		for i := range out {
			var err error
			out[i], err = source.NewOnOff(0.5, 0.5, 0.1, seed+uint64(i))
			if err != nil {
				t.Fatal(err)
			}
		}
		return out
	}
	// Classed: one class of 4, phi 0.2, competing with a CBR background
	// session of phi 0.55 to keep the server busy.
	voice := ebb.Process{Rho: 0.05, Lambda: 1, Alpha: 3}
	bg := ebb.Process{Rho: 0.55, Lambda: 1, Alpha: 3}
	classed := Server{Rate: 1, Classes: []Class{
		{Name: "voice", Phi: 0.2, Members: []ebb.Process{voice, voice, voice, voice}},
		{Name: "bg", Phi: 0.55, Members: []ebb.Process{bg}},
	}}
	var classDelays stats.Tail
	simC, err := NewSim(classed, func(member, slot int, d float64) {
		if member < 4 {
			classDelays.Add(d)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	srcs := mk(100)
	if err := simC.Run(100000, func(m int) float64 {
		if m < 4 {
			return srcs[m].Next()
		}
		return 0.55
	}); err != nil {
		t.Fatal(err)
	}

	// Separate: 4 GPS sessions with phi 0.05 each plus the background.
	var sepDelays stats.Tail
	simS, err := fluid.New(fluid.Config{
		Rate: 1, Phi: []float64{0.05, 0.05, 0.05, 0.05, 0.55},
		OnDelay: func(sess, slot int, d float64) {
			if sess < 4 {
				sepDelays.Add(d)
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	srcs2 := mk(100) // identical traffic
	if err := simS.Run(100000, func(i int) float64 {
		if i < 4 {
			return srcs2[i].Next()
		}
		return 0.55
	}); err != nil {
		t.Fatal(err)
	}
	cq, err := classDelays.Quantile(0.999)
	if err != nil {
		t.Fatal(err)
	}
	sq, err := sepDelays.Quantile(0.999)
	if err != nil {
		t.Fatal(err)
	}
	if !(cq <= sq) {
		t.Errorf("classed p99.9 delay %v not better than separate %v", cq, sq)
	}
}
