package gpsmath

import (
	"testing"
)

func TestYaronSidiBoundsValid(t *testing.T) {
	srv := set1Server(t)
	rates, err := srv.DecomposedRates(SplitEqual, 1)
	if err != nil {
		t.Fatal(err)
	}
	ord, err := srv.FeasibleOrdering(rates)
	if err != nil {
		t.Fatal(err)
	}
	ys, err := srv.YaronSidiBounds(ord, rates, 0, XiOne)
	if err != nil {
		t.Fatalf("YaronSidiBounds: %v", err)
	}
	for i, sb := range ys {
		if sb == nil {
			t.Fatalf("missing bounds for session %d", i)
		}
		prev := 1.1
		for q := 0.0; q <= 200; q += 20 {
			v := sb.BacklogTail(q)
			if v < 0 || v > 1 || v > prev+1e-12 {
				t.Fatalf("session %d: tail misbehaves at %v: %v", i, q, v)
			}
			prev = v
		}
		if sb.BacklogTail(400) > 1e-3 {
			t.Errorf("session %d: recursion bound not decaying (%v at 400)", i, sb.BacklogTail(400))
		}
	}
}

// The first session of the ordering sees no interference in either route,
// so the two coincide there.
func TestYaronSidiFirstMatchesTheorem7(t *testing.T) {
	srv := set1Server(t)
	rates, _ := srv.DecomposedRates(SplitEqual, 1)
	ord, _ := srv.FeasibleOrdering(rates)
	ys, err := srv.YaronSidiBounds(ord, rates, 0, XiOne)
	if err != nil {
		t.Fatal(err)
	}
	t7, err := srv.Theorem7(ord, rates, 0, XiOne)
	if err != nil {
		t.Fatal(err)
	}
	first := ord[0]
	for _, theta := range []float64{0.2, 0.6, 1.0} {
		a, b := ys[first].PrefactorAt(theta), t7.PrefactorAt(theta)
		if a != b {
			t.Errorf("theta %v: YS %v != thm7 %v for the first session", theta, a, b)
		}
	}
}

// The paper's §4 point: the decomposition route beats the output-based
// recursion for downstream sessions — at a deep backlog level, ZTK's
// Theorem 7 quantile is no worse, and strictly better for the last
// session of the ordering.
func TestYaronSidiLooserThanTheorem7(t *testing.T) {
	srv := set1Server(t)
	rates, _ := srv.DecomposedRates(SplitEqual, 1)
	ord, _ := srv.FeasibleOrdering(rates)
	ys, err := srv.YaronSidiBounds(ord, rates, 0, XiOne)
	if err != nil {
		t.Fatal(err)
	}
	eps := 1e-6
	for pos, i := range ord {
		t7, err := srv.Theorem7(ord, rates, pos, XiOne)
		if err != nil {
			t.Fatal(err)
		}
		qZTK := t7.BacklogQuantile(eps)
		qYS := ys[i].BacklogQuantile(eps)
		if qZTK > qYS*1.001 {
			t.Errorf("session %d: decomposition quantile %v worse than recursion %v", i, qZTK, qYS)
		}
		if pos == len(ord)-1 && !(qZTK < qYS) {
			t.Errorf("last session: decomposition %v not strictly better than recursion %v", qZTK, qYS)
		}
	}
}

func TestYaronSidiValidation(t *testing.T) {
	srv := set1Server(t)
	rates, _ := srv.DecomposedRates(SplitEqual, 1)
	ord, _ := srv.FeasibleOrdering(rates)
	if _, err := srv.YaronSidiBounds(ord, rates, 1.5, XiOne); err == nil {
		t.Error("theta fraction out of range: want error")
	}
	if _, err := srv.YaronSidiBounds(ord[:2], rates, 0, XiOne); err == nil {
		t.Error("short ordering: want error")
	}
}
