package gpsmath

import (
	"math"
	"testing"

	"repro/internal/numeric"
)

// fixedOnlyBounds builds a SessionBounds with no θ-family, as a consumer
// composing custom bounds might.
func fixedOnlyBounds() *SessionBounds {
	return &SessionBounds{
		Name:  "fixed",
		G:     0.5,
		Rho:   0.2,
		Fixed: []numeric.ExpTail{{Prefactor: 2, Rate: 1.5}},
	}
}

func TestFixedOnlyBounds(t *testing.T) {
	sb := fixedOnlyBounds()
	if got := sb.PrefactorAt(0.5); !math.IsInf(got, 1) {
		t.Errorf("PrefactorAt without family = %v, want +Inf", got)
	}
	want := math.Min(2*math.Exp(-1.5*4), 1)
	if got := sb.BacklogTail(4); math.Abs(got-want) > 1e-12 {
		t.Errorf("BacklogTail = %v, want fixed tail %v", got, want)
	}
	// Delay converts through g.
	if got := sb.DelayTail(8); math.Abs(got-sb.BacklogTail(4)) > 1e-12 {
		t.Errorf("DelayTail(8) = %v, want BacklogTail(4)", got)
	}
	q := sb.BacklogQuantile(1e-6)
	if math.IsInf(q, 1) || sb.Fixed[0].EvalRaw(q) > 1e-6*(1+1e-9) {
		t.Errorf("BacklogQuantile = %v", q)
	}
	if _, err := sb.OutputEBB(0.5); err == nil {
		t.Error("OutputEBB without family: want error")
	}
	if _, err := sb.BestOutputEBB(1); err == nil {
		t.Error("BestOutputEBB without family: want error")
	}
}

func TestEmptyBoundsDegenerate(t *testing.T) {
	sb := &SessionBounds{Name: "empty", G: 1}
	if got := sb.BacklogTail(1); got != 1 {
		t.Errorf("BacklogTail with no bounds = %v, want trivial 1", got)
	}
	if q := sb.BacklogQuantile(1e-3); !math.IsInf(q, 1) {
		t.Errorf("BacklogQuantile with no bounds = %v, want +Inf", q)
	}
	if q := sb.BacklogQuantile(0); !math.IsInf(q, 1) {
		t.Errorf("BacklogQuantile(0) = %v, want +Inf", q)
	}
}

func TestBestOutputEBBDownstreamBelowRho(t *testing.T) {
	srv := set1Server(t)
	a, err := AnalyzeServer(srv, Options{Independent: true, Xi: XiOptimal})
	if err != nil {
		t.Fatal(err)
	}
	sb := a.Bounds[0]
	// Downstream rate below rho: the fallback path minimizes Λ directly.
	out, err := sb.BestOutputEBB(0.1)
	if err != nil {
		t.Fatalf("BestOutputEBB: %v", err)
	}
	if err := out.Validate(); err != nil {
		t.Errorf("fallback output invalid: %v", err)
	}
}

func TestBacklogTailAtOutOfRange(t *testing.T) {
	srv := set1Server(t)
	a, _ := AnalyzeServer(srv, Options{Independent: true, Xi: XiOne})
	sb := a.Bounds[0]
	tail := sb.BacklogTailAt(sb.ThetaMax * 2)
	if !math.IsInf(tail.Prefactor, 1) {
		t.Errorf("out-of-range theta prefactor = %v, want +Inf", tail.Prefactor)
	}
	if v := tail.Eval(5); v != 1 {
		t.Errorf("clipped eval = %v, want 1", v)
	}
}

// A zero-prefactor family (possible with Λ = 0 sources) must short-
// circuit the quantile search to zero backlog.
func TestZeroPrefactorFamilyQuantile(t *testing.T) {
	sb := &SessionBounds{
		Name:     "zero",
		G:        1,
		Rho:      0.1,
		ThetaMax: 1,
		Prefactor: func(theta float64) float64 {
			if theta <= 0 || theta >= 1 {
				return math.Inf(1)
			}
			return 0
		},
	}
	if q := sb.BacklogQuantile(1e-9); q != 0 {
		t.Errorf("quantile with zero prefactor = %v, want 0", q)
	}
	if v := sb.BacklogTail(0.5); v != 0 {
		t.Errorf("tail with zero prefactor = %v, want 0", v)
	}
}
