package gpsmath

import (
	"fmt"
	"math"
	"sort"
)

// This file implements incremental (delta) analysis: a DeltaAnalyzer
// holds the session population and the structures AnalyzeServer would
// rebuild from scratch — the ρ/φ ratios behind the feasible partition
// (eqs. 37–39) and the feasible ordering of eq. (5) — and patches them
// under single-session admits and releases instead of re-deriving them.
//
// The contract is bit-identity: every Analysis a DeltaAnalyzer produces
// evaluates every bound to the same Float64bits as a fresh
// AnalyzeServer over the same session slice. That falls out of three
// invariants, each pinned by the delta-vs-fresh differential suite:
//
//  1. The session slice itself is maintained exactly as a caller
//     (the gpsd daemon) maintains its population: admits append,
//     releases swap-remove (last session moves into the freed slot).
//     Every left-to-right fold AnalyzeServer performs — TotalPhi,
//     TotalRho, per-class ρ/φ accumulations — is a fold over this
//     slice, so identical slices give identical sums.
//  2. The ordering comparator (ratioOrder) is a strict total order, so
//     the sorted permutation is unique: insertion-repairing the
//     previous epoch's ordering lands on the same permutation a fresh
//     sort would, element for element.
//  3. The per-session bound constructors live behind the shared
//     partitionMemo/orderingMemo machinery, and the lazy Analysis
//     accessors construct bounds through the same *Into helpers the
//     eager path uses — there is no second implementation to drift.
//
// What stays O(N): the decomposed rates r_i = ρ_i + slack/N change for
// every session on every op (slack and N both move), so the rate and
// ratio fills, the memo prefix/suffix passes, and the feasibility sweep
// remain lean linear float passes (~a few ms at 131k sessions). What
// the delta path eliminates is everything superlinear or heavyweight:
// the O(N log N) sort (repaired in O(N + moves)), the eq. (5)
// verification pass, and above all the O(N) construction of per-session
// bound objects and their Θ(N)-cost ordering-route prefactors — the
// dominant cost of a fresh build. Bounds are constructed lazily, only
// for the sessions a caller actually evaluates.

// DeltaStats counts what the analyzer did; the daemon exports them as
// metrics.
type DeltaStats struct {
	// Admits and Releases count successfully applied operations.
	Admits, Releases uint64
	// OrderRepairs counts refreshes where the bounded insertion repair
	// fixed the feasible ordering; OrderSorts counts the fallbacks to a
	// full sort (repair budget exhausted — ratios moved too much).
	OrderRepairs, OrderSorts uint64
}

// DeltaAnalyzer maintains an Analysis across single-session admits and
// releases in O(affected) structural work per operation. It is not
// goroutine-safe; the intended owner is a single writer (the gpsd
// rebuild loop) that publishes the returned analyses to readers via
// epoch snapshots. Returned analyses are immutable and remain valid
// after further operations: admits extend the session slice
// append-share style (old epochs see the old length), and releases
// copy it fresh.
type DeltaAnalyzer struct {
	opts Options
	rate float64
	// sess is the live population. pRatio[i] = ρ_i/φ_i is maintained
	// alongside it (same append/swap-remove moves) and feeds the
	// partition rounds without a per-refresh division pass.
	sess   []Session
	pRatio []float64
	an     *Analysis
	stats  DeltaStats
	// ratioScratch backs the r_i/φ_i ordering ratios during a refresh;
	// nothing epoch-visible retains it, so it is reused across ops.
	ratioScratch []float64
}

// NewDeltaAnalyzer seeds an analyzer with the server's sessions and
// computes the initial analysis along the fully verified fresh path
// (Server.Validate, FeasibleOrdering's eq. (5) check). An empty session
// slice is permitted — Analysis returns nil until the first admit.
func NewDeltaAnalyzer(srv Server, opts Options) (*DeltaAnalyzer, error) {
	if opts.SlackFraction == 0 {
		opts.SlackFraction = 1
	}
	if !(srv.Rate > 0) || math.IsInf(srv.Rate, 1) || math.IsNaN(srv.Rate) {
		return nil, fmt.Errorf("%w: server rate = %v, want positive finite", ErrInvalidInput, srv.Rate)
	}
	n := len(srv.Sessions)
	d := &DeltaAnalyzer{
		opts:   opts,
		rate:   srv.Rate,
		sess:   append(make([]Session, 0, n), srv.Sessions...),
		pRatio: make([]float64, n),
	}
	for i := range d.sess {
		d.pRatio[i] = d.sess[i].Arrival.Rho / d.sess[i].Phi
	}
	if n == 0 {
		return d, nil
	}
	if err := d.refresh(nil); err != nil {
		return nil, err
	}
	return d, nil
}

// Analysis returns the current analysis (nil when no sessions are
// admitted). The returned value is immutable; later operations produce
// new analyses without disturbing it.
func (d *DeltaAnalyzer) Analysis() *Analysis { return d.an }

// Len returns the current session count.
func (d *DeltaAnalyzer) Len() int { return len(d.sess) }

// Server returns the current server view. The session slice is shared
// with the analyzer under the append-share discipline: it is valid
// until the caller's next operation at the returned length.
func (d *DeltaAnalyzer) Server() Server { return Server{Rate: d.rate, Sessions: d.sess} }

// Stats returns operation counters.
func (d *DeltaAnalyzer) Stats() DeltaStats { return d.stats }

// Admit appends one session and refreshes the analysis. The new session
// is validated like Server.Validate would (positive finite φ, valid
// E.B.B. triple); stability (Σρ < r) is enforced by the refresh. On
// error the analyzer is left unchanged.
func (d *DeltaAnalyzer) Admit(s Session) (*Analysis, error) {
	if !(s.Phi > 0) || math.IsInf(s.Phi, 1) || math.IsNaN(s.Phi) {
		return nil, fmt.Errorf("%w: session %s: phi = %v, want positive finite", ErrInvalidInput, s.Name, s.Phi)
	}
	if err := s.Arrival.Validate(); err != nil {
		return nil, fmt.Errorf("gpsmath: session %s: %w", s.Name, err)
	}
	prevSess, prevRatio := d.sess, d.pRatio
	// Append-share: old epochs hold the shorter slice headers; extending
	// the backing arrays past their length never perturbs them. (A
	// failed admit that already grew the backing array is harmless for
	// the same reason — the entry is overwritten by the next append.)
	d.sess = append(d.sess, s)
	d.pRatio = append(d.pRatio, s.Arrival.Rho/s.Phi)
	var seed []int
	if d.an != nil {
		n := len(prevSess)
		seed = make([]int, n+1)
		copy(seed, d.an.Ordering)
		seed[n] = n
	}
	if err := d.refresh(seed); err != nil {
		d.sess, d.pRatio = prevSess, prevRatio
		return nil, err
	}
	d.stats.Admits++
	return d.an, nil
}

// Release removes the session at index pos by swap-remove — the last
// session moves into slot pos, matching the daemon's order-array
// discipline — and refreshes the analysis. Releasing the final session
// returns (nil, nil) and empties the analyzer. On error the analyzer is
// left unchanged.
func (d *DeltaAnalyzer) Release(pos int) (*Analysis, error) {
	n := len(d.sess)
	if pos < 0 || pos >= n {
		return nil, fmt.Errorf("%w: release position %d with %d sessions", ErrInvalidInput, pos, n)
	}
	last := n - 1
	prevSess, prevRatio := d.sess, d.pRatio
	// Releases mutate interior slots, so old epochs need the old arrays
	// intact: copy fresh instead of editing in place. The spare capacity
	// lets the admits that follow extend append-share without paying a
	// second full-array copy (admit/release churn would otherwise copy
	// the population twice per cycle).
	ns := make([]Session, last, last+64)
	nr := make([]float64, last, last+64)
	copy(ns, d.sess[:last])
	copy(nr, d.pRatio[:last])
	if pos != last {
		ns[pos] = d.sess[last]
		nr[pos] = d.pRatio[last]
	}
	d.sess, d.pRatio = ns, nr
	if last == 0 {
		d.an = nil
		d.stats.Releases++
		return nil, nil
	}
	// Seed the ordering repair with the previous permutation, dropping
	// the released session and renaming the moved one (index last is
	// now index pos).
	seed := make([]int, 0, last)
	for _, v := range d.an.Ordering {
		if v == pos {
			continue
		}
		if v == last {
			v = pos
		}
		seed = append(seed, v)
	}
	if err := d.refresh(seed); err != nil {
		d.sess, d.pRatio = prevSess, prevRatio
		return nil, err
	}
	d.stats.Releases++
	return d.an, nil
}

// SetRate changes the service rate the analyzer computes under and
// refreshes the analysis at the unchanged population. Every
// rate-dependent structure — decomposed rates, ordering ratios, the
// partition thresholds, the memo prefix/suffix passes — is recomputed
// by the refresh, so the resulting analysis is bit-identical to a
// fresh AnalyzeServer over the same sessions at the new rate (the
// differential test pins this). The daemon's sharded writer uses it
// when the cross-shard ledger grows or shrinks a shard's capacity
// slice: a capacity move costs one refresh, not a full rebuild. On
// error the analyzer is left at the old rate, unchanged.
func (d *DeltaAnalyzer) SetRate(rate float64) error {
	if !(rate > 0) || math.IsInf(rate, 1) || math.IsNaN(rate) {
		return fmt.Errorf("%w: server rate = %v, want positive finite", ErrInvalidInput, rate)
	}
	if math.Float64bits(rate) == math.Float64bits(d.rate) {
		return nil
	}
	prev := d.rate
	d.rate = rate
	if len(d.sess) == 0 {
		return nil
	}
	var seed []int
	if d.an != nil {
		// The population did not change, so the previous permutation is a
		// near-sorted candidate: only the slack shift nudges ratios.
		seed = append(make([]int, 0, len(d.an.Ordering)), d.an.Ordering...)
	}
	if err := d.refresh(seed); err != nil {
		d.rate = prev
		return err
	}
	return nil
}

// refresh rebuilds the analysis for the current session slice. A nil
// seed takes the fully verified fresh path (Validate + FeasibleOrdering
// with its eq. (5) check); a non-nil seed is a near-sorted candidate
// permutation covering [0, len(sess)) that is repaired in place.
//
// The repair path skips the eq. (5) verification: the greedy min r/φ
// order satisfies eq. (5) whenever Σr_i <= r (paper §3), and
// DecomposedRates guarantees exactly that by construction — it errors
// with ErrOverloaded before producing rates otherwise. The daemon's
// periodic self-check re-runs the verified path against the same
// population, so a violation could not persist silently even if the
// rates were somehow inconsistent.
func (d *DeltaAnalyzer) refresh(seed []int) error {
	srv := Server{Rate: d.rate, Sessions: d.sess}
	var (
		rates []float64
		ord   []int
		err   error
	)
	if seed == nil {
		if err = srv.Validate(); err != nil {
			return err
		}
		if rates, err = srv.DecomposedRates(d.opts.Split, d.opts.SlackFraction); err != nil {
			return err
		}
		if ord, err = srv.FeasibleOrdering(rates); err != nil {
			return err
		}
	} else {
		if rates, err = srv.DecomposedRates(d.opts.Split, d.opts.SlackFraction); err != nil {
			return err
		}
		n := len(seed)
		if cap(d.ratioScratch) < n {
			d.ratioScratch = make([]float64, n, n+n/2+8)
		}
		// Same expression as FeasibleOrdering's ratio fill: the slack
		// moved, so every ratio is recomputed (bit-identically).
		ratio := d.ratioScratch[:n]
		for i := range ratio {
			ratio[i] = rates[i] / d.sess[i].Phi
		}
		ord = seed
		if repairOrder(ord, ratio) {
			d.stats.OrderRepairs++
		} else {
			sort.Sort(ratioOrder{idx: ord, ratio: ratio})
			d.stats.OrderSorts++
		}
	}
	part, err := d.partition(srv)
	if err != nil {
		return err
	}
	posOf := make([]int, len(ord))
	for pos, i := range ord {
		posOf[i] = pos
	}
	an := &Analysis{
		Server:    srv,
		Partition: part,
		Ordering:  ord,
		Rates:     rates,
		opts:      d.opts,
		pm:        srv.newPartitionMemo(part),
		om:        srv.newOrderingMemoOwned(ord, rates),
		posOf:     posOf,
	}
	// Surface the per-session slack guard now, so the lazy accessors of
	// a published analysis cannot fail later.
	if err := an.checkFeasible(); err != nil {
		return err
	}
	d.an = an
	return nil
}

// partition runs the feasible-partition recursion (eqs. 37–39) over the
// maintained ρ/φ ratios. It is the reference round algorithm — scan all
// unplaced sessions in index order against the round threshold — whose
// arithmetic FeasiblePartition is pinned to bit for bit, with the
// per-session ratio divisions already done. O(L·N) scans, but L is the
// class count (small) and a round is a single float compare per
// session, so this is one of the lean linear passes.
func (d *DeltaAnalyzer) partition(srv Server) (Partition, error) {
	n := len(srv.Sessions)
	p := Partition{ClassOf: make([]int, n)}
	for i := range p.ClassOf {
		p.ClassOf[i] = -1
	}
	placedRho := 0.0
	remPhi := srv.TotalPhi()
	remaining := n
	// The arena backs the epoch-visible class slices: allocated fresh
	// per refresh (old epochs keep their own).
	arena := make([]int, 0, n)
	for remaining > 0 {
		threshold := (srv.Rate - placedRho) / remPhi
		start := len(arena)
		for i, r := range d.pRatio {
			if p.ClassOf[i] >= 0 {
				continue
			}
			if r < threshold {
				arena = append(arena, i)
			}
		}
		class := arena[start:len(arena):len(arena)]
		if len(class) == 0 {
			return Partition{}, fmt.Errorf("gpsmath: feasible partition stalled with %d sessions left (sum rho >= rate?)", remaining)
		}
		k := len(p.Classes)
		for _, i := range class {
			p.ClassOf[i] = k
			placedRho += srv.Sessions[i].Arrival.Rho
			remPhi -= srv.Sessions[i].Phi
		}
		p.Classes = append(p.Classes, class)
		remaining -= len(class)
	}
	return p, nil
}

// repairOrder insertion-sorts ord by (ratio, index) in place, assuming
// it is already nearly sorted, and reports whether it finished within
// its move budget. A single admit/release displaces O(1) elements, but
// the slack shift also nudges every ratio, occasionally flipping
// near-equal neighbors — hence a budget of a few N rather than exactly
// the seeded displacement. On a bust the caller falls back to a full
// sort; either way the result is the unique (ratio, index)-sorted
// permutation, so the fallback changes cost, never bits.
func repairOrder(ord []int, ratio []float64) bool {
	budget := 4*len(ord) + 64
	moves := 0
	for i := 1; i < len(ord); i++ {
		v := ord[i]
		j := i - 1
		for j >= 0 && (ratio[v] < ratio[ord[j]] || (ratio[v] == ratio[ord[j]] && v < ord[j])) {
			ord[j+1] = ord[j]
			j--
			moves++
		}
		ord[j+1] = v
		if moves > budget {
			return false
		}
	}
	return true
}
