package gpsmath

import (
	"fmt"
	"math"

	"repro/internal/ebb"
)

// This file retains the pre-scaling implementations of the feasible
// partition (eqs. 37-39) and the per-session Theorem 8/11/12
// constructions as references. The production paths in ordering.go and
// memo.go were restructured around one global sort plus prefix/suffix
// running sums so a full AnalyzeServer pass is O(N log N); these bodies
// keep the original per-session rescans, whose cost is O(N·L) (and
// O(N²) for the Hölder exponent assembly) but whose arithmetic is the
// ground truth. Differential tests at small N pin the fast paths to
// them (see scaling_test.go). They are not exported and carry no
// performance expectations.

// feasiblePartitionReference is the original round-based recursion: every
// round rescans all unplaced sessions against a fresh threshold.
func (s Server) feasiblePartitionReference() (Partition, error) {
	n := len(s.Sessions)
	p := Partition{ClassOf: make([]int, n)}
	ratio := make([]float64, n)
	for i := range p.ClassOf {
		p.ClassOf[i] = -1
		ratio[i] = s.Sessions[i].Arrival.Rho / s.Sessions[i].Phi
	}
	placedRho := 0.0
	remPhi := s.TotalPhi()
	remaining := n
	arena := make([]int, 0, n)
	for remaining > 0 {
		threshold := (s.Rate - placedRho) / remPhi
		start := len(arena)
		for i := range s.Sessions {
			if p.ClassOf[i] >= 0 {
				continue
			}
			if ratio[i] < threshold {
				arena = append(arena, i)
			}
		}
		class := arena[start:len(arena):len(arena)]
		if len(class) == 0 {
			return Partition{}, fmt.Errorf("gpsmath: feasible partition stalled with %d sessions left (sum rho >= rate?)", remaining)
		}
		k := len(p.Classes)
		for _, i := range class {
			p.ClassOf[i] = k
			placedRho += s.Sessions[i].Arrival.Rho
			remPhi -= s.Sessions[i].Phi
		}
		p.Classes = append(p.Classes, class)
		remaining -= len(class)
	}
	return p, nil
}

// theorem8RefInto is the original Theorem 8 construction: it materializes
// the predecessors' decay rates and Hölder exponents per session, which
// is O(pos) work and memory each (O(N²) across a full ordering).
func (m *orderingMemo) theorem8RefInto(sb *SessionBounds, pos int, ps []float64, mode XiMode) error {
	if pos < 0 || pos >= len(m.ord) {
		return fmt.Errorf("gpsmath: position %d outside ordering of length %d", pos, len(m.ord))
	}
	i := m.ord[pos]
	sess := &m.s.Sessions[i]
	psi := sess.Phi / m.tailPhi[pos]

	k := pos + 1
	if ps == nil {
		alphas := make([]float64, 0, k)
		for _, j := range m.ord[:pos] {
			alphas = append(alphas, m.s.Sessions[j].Arrival.Alpha)
		}
		alphas = append(alphas, sess.Arrival.Alpha)
		ps, _ = ebb.HolderExponents(alphas)
	}
	if len(ps) != k {
		return fmt.Errorf("gpsmath: %d Hölder exponents for %d terms", len(ps), k)
	}
	sum := 0.0
	for _, p := range ps {
		if !(p > 1) && k > 1 {
			return fmt.Errorf("gpsmath: Hölder exponent %v, want > 1", p)
		}
		sum += 1 / p
	}
	if math.Abs(sum-1) > 1e-9 {
		return fmt.Errorf("gpsmath: Hölder exponents sum of reciprocals = %v, want 1", sum)
	}

	thetaMax := sess.Arrival.Alpha / ps[k-1]
	for idx, j := range m.ord[:pos] {
		if lim := m.s.Sessions[j].Arrival.Alpha / (ps[idx] * psi); lim < thetaMax {
			thetaMax = lim
		}
	}

	ahead := m.ord[:pos]
	self := m.termOf(i)
	exps := append([]float64(nil), ps...)
	prefactor := func(theta float64) float64 {
		if theta <= 0 || theta >= thetaMax {
			return math.Inf(1)
		}
		pi := exps[k-1]
		lam := math.Pow(self.eval(pi*theta, mode), 1/pi)
		for idx, j := range ahead {
			mj := m.termOf(j).eval(exps[idx]*psi*theta, mode)
			lam *= math.Pow(mj, 1/exps[idx])
			if math.IsInf(lam, 1) {
				return math.Inf(1)
			}
		}
		return lam
	}
	*sb = SessionBounds{
		Name:      sess.Name,
		Index:     i,
		G:         m.gOf(i),
		Rho:       sess.Arrival.Rho,
		Theorem:   "thm8",
		ThetaMax:  thetaMax,
		Prefactor: prefactor,
	}
	return nil
}

// theorem11RefInto is the original Theorem 11 construction: the θ ceiling
// rescans every earlier class and the aggregate Lemma 6 terms are
// materialized per session (O(L) work and memory each).
func (m *partitionMemo) theorem11RefInto(sb *SessionBounds, i int, mode XiMode) error {
	if err := m.checkIndex(i); err != nil {
		return err
	}
	geo := m.geometry(i)
	if geo.epsBudget <= 0 {
		return fmt.Errorf("gpsmath: session %d has no rate slack in its class (gEff = %v, rho = %v)", i, geo.gEff, m.s.Sessions[i].Arrival.Rho)
	}
	c := geo.class
	k := float64(c + 1)
	sess := &m.s.Sessions[i]

	epsI := geo.epsBudget / k
	epsAgg := geo.epsBudget / (k * geo.psi)

	thetaMax := sess.Arrival.Alpha
	for _, a := range m.classMinA[:c] {
		if lim := a / geo.psi; lim < thetaMax {
			thetaMax = lim
		}
	}

	selfTerm := singleTerm(sess.Arrival, epsI)
	aggTerms := make([]mgfTerm, c)
	for l := 0; l < c; l++ {
		aggTerms[l] = aggTerm(m.classSumSH[l], m.classRho[l], epsAgg)
	}
	psi := geo.psi
	prefactor := func(theta float64) float64 {
		if theta <= 0 || theta >= thetaMax {
			return math.Inf(1)
		}
		lam := selfTerm.eval(theta, mode)
		for l := range aggTerms {
			lam *= aggTerms[l].eval(psi*theta, mode)
			if math.IsInf(lam, 1) {
				return math.Inf(1)
			}
		}
		return lam
	}
	*sb = SessionBounds{
		Name:      sess.Name,
		Index:     i,
		G:         m.gOf(i),
		Rho:       sess.Arrival.Rho,
		Theorem:   "thm11",
		ThetaMax:  thetaMax,
		Prefactor: prefactor,
	}
	return nil
}

// theorem12RefInto is the original Theorem 12 construction, materializing
// the per-session ceiling list and Hölder exponents (O(L) each).
func (m *partitionMemo) theorem12RefInto(sb *SessionBounds, i int, ps []float64, mode XiMode) error {
	if err := m.checkIndex(i); err != nil {
		return err
	}
	geo := m.geometry(i)
	if geo.epsBudget <= 0 {
		return fmt.Errorf("gpsmath: session %d has no rate slack in its class", i)
	}
	c := geo.class
	k := c + 1
	sess := &m.s.Sessions[i]

	if ps == nil {
		ceilings := append(append(make([]float64, 0, k), m.classMinA[:c]...), sess.Arrival.Alpha)
		ps, _ = ebb.HolderExponents(ceilings)
	}
	if len(ps) != k {
		return fmt.Errorf("gpsmath: %d Hölder exponents for %d terms", len(ps), k)
	}
	sum := 0.0
	for _, v := range ps {
		if !(v >= 1-1e-12) || math.IsInf(v, 1) {
			return fmt.Errorf("%w: Hölder exponent %v, want finite >= 1", ErrInvalidInput, v)
		}
		sum += 1 / v
	}
	if !(math.Abs(sum-1) <= 1e-9) {
		return fmt.Errorf("%w: Hölder exponents sum of reciprocals = %v, want 1", ErrInvalidInput, sum)
	}

	epsI := geo.epsBudget / float64(k)
	epsAgg := geo.epsBudget / (float64(k) * geo.psi)

	thetaMax := sess.Arrival.Alpha / ps[k-1]
	for l, a := range m.classMinA[:c] {
		if lim := a / (ps[l] * geo.psi); lim < thetaMax {
			thetaMax = lim
		}
	}

	selfTerm := singleTerm(sess.Arrival, epsI)
	aggTerms := make([]mgfTerm, c)
	for l := 0; l < c; l++ {
		aggTerms[l] = aggTerm(m.classSumSH[l], m.classRho[l], epsAgg)
	}
	psi := geo.psi
	exps := append([]float64(nil), ps...)
	prefactor := func(theta float64) float64 {
		if theta <= 0 || theta >= thetaMax {
			return math.Inf(1)
		}
		pk := exps[k-1]
		lam := math.Pow(selfTerm.eval(pk*theta, mode), 1/pk)
		for l := range aggTerms {
			ml := aggTerms[l].eval(exps[l]*psi*theta, mode)
			lam *= math.Pow(ml, 1/exps[l])
			if math.IsInf(lam, 1) {
				return math.Inf(1)
			}
		}
		return lam
	}
	*sb = SessionBounds{
		Name:      sess.Name,
		Index:     i,
		G:         m.gOf(i),
		Rho:       sess.Arrival.Rho,
		Theorem:   "thm12",
		ThetaMax:  thetaMax,
		Prefactor: prefactor,
	}
	return nil
}
