package gpsmath

import "math"

// ShardOf maps a session's leaky-bucket class to one of n shards. The
// key is the ρ/φ ratio — the quantity the feasible-partition recursion
// (eqs. 37–39) orders sessions by — so sessions of one declared type
// (same arrival, same required rate) always land on the same shard and
// a shard's per-type bookkeeping (eval cache, type fold) keeps working
// at full strength. The ratio's bits are mixed through a splitmix64
// finalizer so adjacent service classes spread across shards instead
// of clustering in the low bits.
func ShardOf(rho, phi float64, n int) int {
	if n <= 1 {
		return 0
	}
	x := math.Float64bits(rho / phi)
	// splitmix64 finalizer (Steele et al.): full-avalanche mix of the
	// ratio bits.
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return int(x % uint64(n))
}
