// Package gpsmath implements the single-node statistical GPS theory of
// Zhang, Towsley & Kurose: feasible orderings and feasible partitions of
// sessions, and the backlog/delay/output tail bounds of Theorems 7, 8,
// 10, 11 and 12, for E.B.B.-characterized session traffic sharing one
// Generalized Processor Sharing server.
package gpsmath

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/ebb"
)

// Session is one GPS session: a weight φ and an E.B.B. characterization
// of its arrival process.
type Session struct {
	Name    string
	Phi     float64     // GPS weight φ > 0
	Arrival ebb.Process // (ρ, Λ, α) arrival characterization
}

// Server is a single GPS server of rate Rate shared by Sessions.
type Server struct {
	Rate     float64
	Sessions []Session
}

// NewRPPSServer builds a Rate Proportional Processor Sharing server:
// every session's weight equals its long-term rate (φ_i = ρ_i), the
// assignment for which the feasible partition collapses to a single class
// and Theorem 10 applies to every session (paper §5).
func NewRPPSServer(rate float64, arrivals []ebb.Process, names []string) Server {
	srv := Server{Rate: rate}
	for i, a := range arrivals {
		name := fmt.Sprintf("session-%d", i+1)
		if names != nil && i < len(names) {
			name = names[i]
		}
		srv.Sessions = append(srv.Sessions, Session{Name: name, Phi: a.Rho, Arrival: a})
	}
	return srv
}

// ErrOverloaded is returned when Σρ_i >= r, violating the paper's
// stability condition.
var ErrOverloaded = errors.New("gpsmath: sum of session rates must be less than the server rate")

// Validate checks the server satisfies the standing assumptions of the
// analysis: positive rate and weights, valid E.B.B. triples, Σρ < r.
func (s Server) Validate() error {
	if !(s.Rate > 0) || math.IsInf(s.Rate, 1) || math.IsNaN(s.Rate) {
		return fmt.Errorf("%w: server rate = %v, want positive finite", ErrInvalidInput, s.Rate)
	}
	if len(s.Sessions) == 0 {
		return errors.New("gpsmath: server has no sessions")
	}
	sum := 0.0
	for i, sess := range s.Sessions {
		if !(sess.Phi > 0) || math.IsInf(sess.Phi, 1) || math.IsNaN(sess.Phi) {
			return fmt.Errorf("%w: session %d (%s): phi = %v, want positive finite", ErrInvalidInput, i, sess.Name, sess.Phi)
		}
		if err := sess.Arrival.Validate(); err != nil {
			return fmt.Errorf("gpsmath: session %d (%s): %w", i, sess.Name, err)
		}
		sum += sess.Arrival.Rho
	}
	if sum >= s.Rate {
		return fmt.Errorf("%w (sum rho = %v, rate = %v)", ErrOverloaded, sum, s.Rate)
	}
	return nil
}

// TotalPhi returns Σφ_j.
func (s Server) TotalPhi() float64 {
	t := 0.0
	for _, sess := range s.Sessions {
		t += sess.Phi
	}
	return t
}

// TotalRho returns Σρ_j.
func (s Server) TotalRho() float64 {
	t := 0.0
	for _, sess := range s.Sessions {
		t += sess.Arrival.Rho
	}
	return t
}

// Slack returns r - Σρ_j, the rate headroom distributable as ε_i.
func (s Server) Slack() float64 { return s.Rate - s.TotalRho() }

// GuaranteedRate returns g_i = φ_i/Σφ_j · r, the backlog clearing rate GPS
// guarantees session i whenever it is backlogged.
func (s Server) GuaranteedRate(i int) float64 {
	return s.Sessions[i].Phi / s.TotalPhi() * s.Rate
}

// GuaranteedRates returns all g_i.
func (s Server) GuaranteedRates() []float64 {
	total := s.TotalPhi()
	out := make([]float64, len(s.Sessions))
	for i, sess := range s.Sessions {
		out[i] = sess.Phi / total * s.Rate
	}
	return out
}

// IsRPPS reports whether the assignment is rate proportional
// (φ_i ∝ ρ_i), in which case every session lands in partition class H_1.
func (s Server) IsRPPS() bool {
	if len(s.Sessions) == 0 {
		return false
	}
	ratio := s.Sessions[0].Arrival.Rho / s.Sessions[0].Phi
	for _, sess := range s.Sessions[1:] {
		if math.Abs(sess.Arrival.Rho/sess.Phi-ratio) > 1e-12*ratio {
			return false
		}
	}
	return true
}

// Arrivals returns the sessions' E.B.B. characterizations in declaration
// order.
func (s Server) Arrivals() []ebb.Process {
	out := make([]ebb.Process, len(s.Sessions))
	for i, sess := range s.Sessions {
		out[i] = sess.Arrival
	}
	return out
}
