package gpsmath

import (
	"fmt"
	"math"

	"repro/internal/ebb"
	"repro/internal/numeric"
)

// classGeometry collects the quantities Theorems 10–12 need for session i
// sitting in partition class c (0-based): ψ_i, the effective clearing rate
// gEff = ψ_i·(r - Σ_{j in earlier classes} ρ_j), and the per-term ε budget.
//
// The paper's g_i in Theorem 11 is exactly this effective rate: its proof
// uses Σ ρ̃_l + ψ_i^{-1}·g_i = r. For sessions in H_1 it coincides with
// the global guaranteed rate φ_i/Σφ·r. The feasible-partition property
// (eq. 39) guarantees gEff > ρ_i.
type classGeometry struct {
	class     int
	psi       float64
	gEff      float64
	epsBudget float64 // gEff - ρ_i
}

func (s Server) classGeometry(p Partition, i int) classGeometry {
	c := p.ClassOf[i]
	earlierRho := 0.0
	laterPhi := 0.0
	for j, sess := range s.Sessions {
		if p.ClassOf[j] < c {
			earlierRho += sess.Arrival.Rho
		} else {
			laterPhi += sess.Phi
		}
	}
	psi := s.Sessions[i].Phi / laterPhi
	gEff := psi * (s.Rate - earlierRho)
	return classGeometry{class: c, psi: psi, gEff: gEff, epsBudget: gEff - s.Sessions[i].Arrival.Rho}
}

// Theorem10 returns the fixed backlog tail of paper Theorem 10 for a
// session in partition class H_1: Pr{Q_i >= q} <= Λ*·e^{-α_i q} with Λ*
// from Lemma 5 at the session's guaranteed rate (eq. 50). It holds with
// no independence assumption. An error is returned for sessions outside
// H_1.
func (s Server) Theorem10(p Partition, i int) (numeric.ExpTail, error) {
	if i < 0 || i >= len(s.Sessions) || i >= len(p.ClassOf) {
		return numeric.ExpTail{}, fmt.Errorf("%w: session index %d with %d sessions", ErrInvalidInput, i, len(s.Sessions))
	}
	if p.ClassOf[i] != 0 {
		return numeric.ExpTail{}, fmt.Errorf("gpsmath: session %d is in class H_%d, Theorem 10 needs H_1", i, p.ClassOf[i]+1)
	}
	return s.Sessions[i].Arrival.DeltaTail(s.GuaranteedRate(i))
}

// classAggregates returns, for each class l < c, the member arrival
// processes, aggregate rate ρ̃_l, and the smallest member decay rate.
func (s Server) classAggregates(p Partition, c int) (members [][]ebb.Process, rhos []float64, minAlphas []float64) {
	for l := 0; l < c; l++ {
		var ms []ebb.Process
		rho := 0.0
		minA := math.Inf(1)
		for _, j := range p.Classes[l] {
			a := s.Sessions[j].Arrival
			ms = append(ms, a)
			rho += a.Rho
			if a.Alpha < minA {
				minA = a.Alpha
			}
		}
		members = append(members, ms)
		rhos = append(rhos, rho)
		minAlphas = append(minAlphas, minA)
	}
	return members, rhos, minAlphas
}

// Theorem11 builds the bound family of paper Theorem 11 for session i
// using the feasible partition: the k-1 earlier classes are lumped into
// aggregate sessions and session i is placed k-th in a constructed
// feasible ordering (k = class index + 1). Arrival processes must be
// independent. With ξ = 1 the prefactor reproduces eq. (54) exactly.
func (s Server) Theorem11(p Partition, i int, mode XiMode) (*SessionBounds, error) {
	if i < 0 || i >= len(s.Sessions) || i >= len(p.ClassOf) {
		return nil, fmt.Errorf("%w: session index %d with %d sessions", ErrInvalidInput, i, len(s.Sessions))
	}
	geo := s.classGeometry(p, i)
	if geo.epsBudget <= 0 {
		return nil, fmt.Errorf("gpsmath: session %d has no rate slack in its class (gEff = %v, rho = %v)", i, geo.gEff, s.Sessions[i].Arrival.Rho)
	}
	c := geo.class
	k := float64(c + 1)
	sess := s.Sessions[i]
	members, rhos, minAlphas := s.classAggregates(p, c)

	epsI := geo.epsBudget / k
	epsAgg := geo.epsBudget / (k * geo.psi)

	thetaMax := sess.Arrival.Alpha
	for _, a := range minAlphas {
		if lim := a / geo.psi; lim < thetaMax {
			thetaMax = lim
		}
	}

	prefactor := func(theta float64) float64 {
		if theta <= 0 || theta >= thetaMax {
			return math.Inf(1)
		}
		lam := deltaMGF(singleSigmaHat(sess.Arrival), sess.Arrival.Rho, epsI, theta, mode)
		for l := range members {
			lam *= deltaMGF(sumSigmaHat(members[l]), rhos[l], epsAgg, geo.psi*theta, mode)
			if math.IsInf(lam, 1) {
				return math.Inf(1)
			}
		}
		return lam
	}
	return &SessionBounds{
		Name:      sess.Name,
		Index:     i,
		G:         s.GuaranteedRate(i),
		Rho:       sess.Arrival.Rho,
		Theorem:   "thm11",
		ThetaMax:  thetaMax,
		Prefactor: prefactor,
	}, nil
}

// Theorem12 is the dependent-arrivals counterpart of Theorem 11 (paper
// Theorem 12): Hölder's inequality with conjugate exponents {p_l} over the
// k-1 aggregates plus session i. Passing nil selects exponents that
// equalize (class ceiling)/p_l, maximizing the usable θ range. As in
// Theorem8, the exact Hölder powers are kept on the denominators, which
// is never looser than the paper's eq. (59).
func (s Server) Theorem12(p Partition, i int, ps []float64, mode XiMode) (*SessionBounds, error) {
	if i < 0 || i >= len(s.Sessions) || i >= len(p.ClassOf) {
		return nil, fmt.Errorf("%w: session index %d with %d sessions", ErrInvalidInput, i, len(s.Sessions))
	}
	geo := s.classGeometry(p, i)
	if geo.epsBudget <= 0 {
		return nil, fmt.Errorf("gpsmath: session %d has no rate slack in its class", i)
	}
	c := geo.class
	k := c + 1
	sess := s.Sessions[i]
	members, rhos, minAlphas := s.classAggregates(p, c)

	if ps == nil {
		ceilings := append(append([]float64(nil), minAlphas...), sess.Arrival.Alpha)
		ps, _ = ebb.HolderExponents(ceilings)
	}
	if len(ps) != k {
		return nil, fmt.Errorf("gpsmath: %d Hölder exponents for %d terms", len(ps), k)
	}
	sum := 0.0
	for _, v := range ps {
		// Negated form: NaN fails every comparison, so `v < 1-1e-12`
		// alone would wave a NaN exponent through.
		if !(v >= 1-1e-12) || math.IsInf(v, 1) {
			return nil, fmt.Errorf("%w: Hölder exponent %v, want finite >= 1", ErrInvalidInput, v)
		}
		sum += 1 / v
	}
	if !(math.Abs(sum-1) <= 1e-9) {
		return nil, fmt.Errorf("%w: Hölder exponents sum of reciprocals = %v, want 1", ErrInvalidInput, sum)
	}

	epsI := geo.epsBudget / float64(k)
	epsAgg := geo.epsBudget / (float64(k) * geo.psi)

	thetaMax := sess.Arrival.Alpha / ps[k-1]
	for l, a := range minAlphas {
		if lim := a / (ps[l] * geo.psi); lim < thetaMax {
			thetaMax = lim
		}
	}

	exps := append([]float64(nil), ps...)
	prefactor := func(theta float64) float64 {
		if theta <= 0 || theta >= thetaMax {
			return math.Inf(1)
		}
		pk := exps[k-1]
		lam := math.Pow(deltaMGF(singleSigmaHat(sess.Arrival), sess.Arrival.Rho, epsI, pk*theta, mode), 1/pk)
		for l := range members {
			m := deltaMGF(sumSigmaHat(members[l]), rhos[l], epsAgg, exps[l]*geo.psi*theta, mode)
			lam *= math.Pow(m, 1/exps[l])
			if math.IsInf(lam, 1) {
				return math.Inf(1)
			}
		}
		return lam
	}
	return &SessionBounds{
		Name:      sess.Name,
		Index:     i,
		G:         s.GuaranteedRate(i),
		Rho:       sess.Arrival.Rho,
		Theorem:   "thm12",
		ThetaMax:  thetaMax,
		Prefactor: prefactor,
	}, nil
}

// Theorem11PaperPrefactor evaluates the literal eq. (54) prefactor (ξ = 1)
// for cross-checking the family implementation in tests and ablations.
func (s Server) Theorem11PaperPrefactor(p Partition, i int, theta float64) float64 {
	geo := s.classGeometry(p, i)
	c := geo.class
	k := float64(c + 1)
	sess := s.Sessions[i]

	num := sess.Arrival.SigmaHat(theta) + sess.Arrival.Rho
	for l := 0; l < c; l++ {
		for _, j := range p.Classes[l] {
			a := s.Sessions[j].Arrival
			num += geo.psi * (a.SigmaHat(geo.psi*theta) + a.Rho)
		}
	}
	den := math.Pow(1-math.Exp(-theta*geo.epsBudget/k), k)
	if den <= 0 || math.IsInf(num, 1) {
		return math.Inf(1)
	}
	return math.Exp(theta*num) / den
}
