package gpsmath

import (
	"math"

	"repro/internal/numeric"
)

// classGeometry collects the quantities Theorems 10–12 need for session i
// sitting in partition class c (0-based): ψ_i, the effective clearing rate
// gEff = ψ_i·(r - Σ_{j in earlier classes} ρ_j), and the per-term ε budget.
//
// The paper's g_i in Theorem 11 is exactly this effective rate: its proof
// uses Σ ρ̃_l + ψ_i^{-1}·g_i = r. For sessions in H_1 it coincides with
// the global guaranteed rate φ_i/Σφ·r. The feasible-partition property
// (eq. 39) guarantees gEff > ρ_i.
type classGeometry struct {
	class     int
	psi       float64
	gEff      float64
	epsBudget float64 // gEff - ρ_i
}

func (s Server) classGeometry(p Partition, i int) classGeometry {
	c := p.ClassOf[i]
	earlierRho := 0.0
	laterPhi := 0.0
	for j, sess := range s.Sessions {
		if p.ClassOf[j] < c {
			earlierRho += sess.Arrival.Rho
		} else {
			laterPhi += sess.Phi
		}
	}
	psi := s.Sessions[i].Phi / laterPhi
	gEff := psi * (s.Rate - earlierRho)
	return classGeometry{class: c, psi: psi, gEff: gEff, epsBudget: gEff - s.Sessions[i].Arrival.Rho}
}

// Theorem10 returns the fixed backlog tail of paper Theorem 10 for a
// session in partition class H_1: Pr{Q_i >= q} <= Λ*·e^{-α_i q} with Λ*
// from Lemma 5 at the session's guaranteed rate (eq. 50). It holds with
// no independence assumption. An error is returned for sessions outside
// H_1.
func (s Server) Theorem10(p Partition, i int) (numeric.ExpTail, error) {
	return s.newPartitionMemo(p).theorem10(i)
}

// Theorem11 builds the bound family of paper Theorem 11 for session i
// using the feasible partition: the k-1 earlier classes are lumped into
// aggregate sessions and session i is placed k-th in a constructed
// feasible ordering (k = class index + 1). Arrival processes must be
// independent. With ξ = 1 the prefactor reproduces eq. (54) exactly.
func (s Server) Theorem11(p Partition, i int, mode XiMode) (*SessionBounds, error) {
	return s.newPartitionMemo(p).theorem11(i, mode)
}

// Theorem12 is the dependent-arrivals counterpart of Theorem 11 (paper
// Theorem 12): Hölder's inequality with conjugate exponents {p_l} over the
// k-1 aggregates plus session i. Passing nil selects exponents that
// equalize (class ceiling)/p_l, maximizing the usable θ range. As in
// Theorem8, the exact Hölder powers are kept on the denominators, which
// is never looser than the paper's eq. (59).
func (s Server) Theorem12(p Partition, i int, ps []float64, mode XiMode) (*SessionBounds, error) {
	return s.newPartitionMemo(p).theorem12(i, ps, mode)
}

// Theorem11PaperPrefactor evaluates the literal eq. (54) prefactor (ξ = 1)
// for cross-checking the family implementation in tests and ablations.
func (s Server) Theorem11PaperPrefactor(p Partition, i int, theta float64) float64 {
	geo := s.classGeometry(p, i)
	c := geo.class
	k := float64(c + 1)
	sess := s.Sessions[i]

	num := sess.Arrival.SigmaHat(theta) + sess.Arrival.Rho
	for l := 0; l < c; l++ {
		for _, j := range p.Classes[l] {
			a := s.Sessions[j].Arrival
			num += geo.psi * (a.SigmaHat(geo.psi*theta) + a.Rho)
		}
	}
	den := math.Pow(1-math.Exp(-theta*geo.epsBudget/k), k)
	if den <= 0 || math.IsInf(num, 1) {
		return math.Inf(1)
	}
	return math.Exp(theta*num) / den
}
