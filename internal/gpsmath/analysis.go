package gpsmath

import (
	"fmt"
	"math"

	"repro/internal/numeric"
)

// Options steers AnalyzeServer.
type Options struct {
	// Independent declares the session arrival processes mutually
	// independent, enabling Theorems 7 and 11; otherwise the Hölder
	// variants (Theorems 8 and 12) are used.
	Independent bool
	// Xi selects the ξ handling inside the Lemma 6 terms.
	Xi XiMode
	// Split selects how slack is distributed when a global feasible
	// ordering is needed (Theorem 7/8 paths).
	Split EpsilonSplit
	// SlackFraction in (0, 1] scales down the distributed slack to keep
	// the feasible-ordering inequalities strictly satisfiable; the default
	// 0 means 1 (use all slack).
	SlackFraction float64
}

// Analysis is the full single-node result: the feasible partition and,
// per session, the best bound object the selected theorems provide.
//
// An Analysis comes in two builds. AnalyzeServer materializes every
// bound eagerly into Bounds/OrderingBounds. The DeltaAnalyzer produces
// lazy analyses: Bounds and OrderingBounds stay nil and the bound
// objects are constructed on demand from the retained memos — an O(1)
// construction per session, so a per-op epoch never pays for N bound
// objects nobody reads. Use PartitionBound/OrderingBound (or the Best*
// evaluators and AdmissionDecision, which go through them) to stay
// agnostic of the build; both produce bit-identical bound families.
type Analysis struct {
	Server    Server
	Partition Partition
	// Bounds[i] corresponds to Server.Sessions[i]. Each aggregates the
	// partition-based family (Theorem 11/12), the Theorem 10 fixed tail
	// for H_1 sessions, and is independent of any global ordering. Nil
	// for lazily built analyses — use PartitionBound.
	Bounds []*SessionBounds
	// OrderingBounds[i] is the Theorem 7/8 bound for session i with
	// respect to one global feasible ordering (the greedy min r/φ order);
	// kept separately so the two routes can be compared (ablation). Nil
	// for lazily built analyses — use OrderingBound.
	OrderingBounds []*SessionBounds
	// Ordering is the global feasible ordering used for OrderingBounds.
	Ordering []int
	// Rates are the decomposed rates r_i used for OrderingBounds.
	Rates []float64

	opts Options
	pm   *partitionMemo
	om   *orderingMemo
	// posOf[i] is session i's position in Ordering (the inverse
	// permutation); set on lazy builds, where OrderingBounds cannot be
	// indexed to recover it.
	posOf []int
}

// AnalyzeServer validates the server and computes every per-session bound
// the paper's single-node theory offers under the given options.
func AnalyzeServer(srv Server, opts Options) (*Analysis, error) {
	if err := srv.Validate(); err != nil {
		return nil, err
	}
	if opts.SlackFraction == 0 {
		opts.SlackFraction = 1
	}
	part, err := srv.FeasiblePartition()
	if err != nil {
		return nil, err
	}
	a := &Analysis{Server: srv, Partition: part, opts: opts}

	// Partition-route bounds (Theorems 10/11/12). One memo carries the
	// class geometry and per-class aggregates shared by every session.
	a.pm = srv.newPartitionMemo(part)
	a.Bounds = make([]*SessionBounds, len(srv.Sessions))
	// Arena allocations: one block for all SessionBounds and one for
	// every H_1 session's Theorem 10 tail, instead of a heap object per
	// session.
	boundsArena := make([]SessionBounds, len(srv.Sessions))
	fixedArena := make([]numeric.ExpTail, len(part.Classes[0]))
	nFixed := 0
	for i := range srv.Sessions {
		sb := &boundsArena[i]
		var slot []numeric.ExpTail
		if part.ClassOf[i] == 0 {
			slot = fixedArena[nFixed : nFixed+1 : nFixed+1]
			nFixed++
		}
		if err := a.partitionBoundInto(sb, i, slot); err != nil {
			return nil, fmt.Errorf("gpsmath: session %d: %w", i, err)
		}
		a.Bounds[i] = sb
	}

	// Ordering-route bounds (Theorems 7/8), again via one shared memo.
	rates, err := srv.DecomposedRates(opts.Split, opts.SlackFraction)
	if err != nil {
		return nil, err
	}
	ord, err := srv.FeasibleOrdering(rates)
	if err != nil {
		return nil, err
	}
	a.Ordering = ord
	a.Rates = rates
	a.om = srv.newOrderingMemoOwned(ord, rates)
	a.OrderingBounds = make([]*SessionBounds, len(srv.Sessions))
	ordArena := make([]SessionBounds, len(ord))
	for pos := range ord {
		sb := &ordArena[pos]
		if err := a.orderingBoundInto(sb, pos); err != nil {
			return nil, fmt.Errorf("gpsmath: ordering position %d: %w", pos, err)
		}
		a.OrderingBounds[sb.Index] = sb
	}
	return a, nil
}

// partitionBoundInto builds session i's partition-route bound (Theorem
// 11 or 12, plus the Theorem 10 fixed tail for H_1 sessions) into sb.
// fixed, when non-nil, is a caller-provided one-element arena slot for
// the Theorem 10 tail; nil allocates one. Both the eager AnalyzeServer
// loop and the lazy accessors funnel through here, so the two builds
// cannot drift.
func (a *Analysis) partitionBoundInto(sb *SessionBounds, i int, fixed []numeric.ExpTail) error {
	var err error
	if a.opts.Independent {
		err = a.pm.theorem11Into(sb, i, a.opts.Xi)
	} else {
		err = a.pm.theorem12Into(sb, i, nil, a.opts.Xi)
	}
	if err != nil {
		return err
	}
	if a.Partition.ClassOf[i] != 0 {
		return nil
	}
	ft, err := a.pm.theorem10(i)
	if err != nil {
		return err
	}
	if fixed == nil {
		fixed = make([]numeric.ExpTail, 1)
	}
	fixed[0] = ft
	sb.Fixed = fixed[:1:1]
	// Constant strings for the common cases keep the hot construction
	// path free of concat allocations.
	switch sb.Theorem {
	case "thm11":
		sb.Theorem = "thm11+thm10"
	case "thm12":
		sb.Theorem = "thm12+thm10"
	default:
		sb.Theorem += "+thm10"
	}
	return nil
}

// orderingBoundInto builds the Theorem 7/8 bound for the session at
// ordering position pos into sb.
func (a *Analysis) orderingBoundInto(sb *SessionBounds, pos int) error {
	if a.opts.Independent {
		return a.om.theorem7Into(sb, pos, a.opts.Xi)
	}
	return a.om.theorem8Into(sb, pos, nil, a.opts.Xi)
}

// PartitionBound returns session i's partition-route bound object,
// constructing it on demand when the analysis was built lazily. Lazy
// constructions are not cached: they are O(1), and a shared cache would
// race the many readers an epoch snapshot serves concurrently. Returns
// nil only if construction fails, which checkFeasible excludes for any
// analysis the DeltaAnalyzer publishes.
func (a *Analysis) PartitionBound(i int) *SessionBounds {
	if a.Bounds != nil {
		return a.Bounds[i]
	}
	sb := new(SessionBounds)
	if err := a.partitionBoundInto(sb, i, nil); err != nil {
		return nil
	}
	return sb
}

// OrderingBound returns session i's Theorem 7/8 bound with respect to
// the analysis's global feasible ordering, constructing it on demand
// for lazy builds.
func (a *Analysis) OrderingBound(i int) *SessionBounds {
	if a.OrderingBounds != nil {
		return a.OrderingBounds[i]
	}
	sb := new(SessionBounds)
	if err := a.orderingBoundInto(sb, a.posOf[i]); err != nil {
		return nil
	}
	return sb
}

// SessionG returns session i's guaranteed rate g_i = φ_i/Σφ·r exactly
// as the bound constructors compute it (the G field of PartitionBound).
func (a *Analysis) SessionG(i int) float64 { return a.pm.gOf(i) }

// EffectiveRate returns session i's effective service rate within its
// partition class (the eq. 38 geometry): ψ_i·(r - Σ_{earlier classes} ρ̃).
func (a *Analysis) EffectiveRate(i int) float64 { return a.pm.geometry(i).gEff }

// checkFeasible verifies that every session's bound family is
// constructible — the same per-session guard the eager AnalyzeServer
// loop applies (a session with no rate slack inside its class aborts the
// analysis). The DeltaAnalyzer runs it before publishing a lazy
// analysis, so the lazy accessors cannot fail afterwards.
func (a *Analysis) checkFeasible() error {
	for i := range a.Server.Sessions {
		if geo := a.pm.geometry(i); !(geo.epsBudget > 0) {
			return fmt.Errorf("gpsmath: session %d has no rate slack in its class (gEff = %v, rho = %v)",
				i, geo.gEff, a.Server.Sessions[i].Arrival.Rho)
		}
	}
	return nil
}

// BestBacklogTailValue returns, for session i, the smallest bound on
// Pr{Q_i >= q} across the partition and ordering routes.
func (a *Analysis) BestBacklogTailValue(i int, q float64) float64 {
	v := math.Inf(1)
	if b := a.PartitionBound(i); b != nil {
		v = b.BacklogTail(q)
	}
	if b := a.OrderingBound(i); b != nil {
		if w := b.BacklogTail(q); w < v {
			v = w
		}
	}
	return v
}

// BestDelayTailValue returns, for session i, the smallest bound on
// Pr{D_i >= d} across the partition and ordering routes.
func (a *Analysis) BestDelayTailValue(i int, d float64) float64 {
	v := math.Inf(1)
	if b := a.PartitionBound(i); b != nil {
		v = b.DelayTail(d)
	}
	if b := a.OrderingBound(i); b != nil {
		if w := b.DelayTail(d); w < v {
			v = w
		}
	}
	return v
}

// DimensionError reports per-session target slices whose lengths do not
// match the analyzed session count. It wraps ErrInvalidInput, so both
// errors.As with *DimensionError and errors.Is with ErrInvalidInput
// match.
type DimensionError struct {
	Sessions int // sessions in the analysis
	Dmax     int // len(dmax) supplied
	Eps      int // len(eps) supplied
}

// Error implements error.
func (e *DimensionError) Error() string {
	return fmt.Sprintf("gpsmath: admission targets for %d sessions: %d delay targets, %d eps targets",
		e.Sessions, e.Dmax, e.Eps)
}

// Unwrap ties the typed error into the package's ErrInvalidInput family.
func (e *DimensionError) Unwrap() error { return ErrInvalidInput }

// AdmissionDecision reports whether every session meets a per-session
// delay target: Pr{D_i >= dmax_i} <= eps_i. Sessions with dmax_i == +Inf
// are unconstrained. It is the paper's motivating soft-QOS admission
// test. A dmax or eps slice whose length differs from the session count
// is rejected with a *DimensionError instead of a silent misdecision.
//
// probs[i] is the bound that justified session i's verdict: the
// partition-route value when it alone meets eps_i, otherwise the best of
// the partition and ordering routes (BestDelayTailValue). The decision
// is identical either way — any valid bound at or below eps_i proves the
// target — but the ordering route's Theorem 7/8 prefactor costs Θ(i) per
// evaluation, so consulting it only on a partition-route miss keeps a
// large decision (the gpsd epoch rebuild) linear instead of quadratic in
// the session count.
func (a *Analysis) AdmissionDecision(dmax, eps []float64) (bool, []float64, error) {
	n := len(a.Server.Sessions)
	if len(dmax) != n || len(eps) != n {
		return false, nil, &DimensionError{Sessions: n, Dmax: len(dmax), Eps: len(eps)}
	}
	probs := make([]float64, n)
	ok := true
	for i := 0; i < n; i++ {
		if math.IsInf(dmax[i], 1) {
			probs[i] = 0
			continue
		}
		p := math.Inf(1)
		if b := a.PartitionBound(i); b != nil {
			p = b.DelayTail(dmax[i])
		}
		if p > eps[i] {
			if b := a.OrderingBound(i); b != nil {
				if w := b.DelayTail(dmax[i]); w < p {
					p = w
				}
			}
		}
		probs[i] = p
		if p > eps[i] {
			ok = false
		}
	}
	return ok, probs, nil
}
