package gpsmath

import (
	"fmt"
	"math"
)

// Options steers AnalyzeServer.
type Options struct {
	// Independent declares the session arrival processes mutually
	// independent, enabling Theorems 7 and 11; otherwise the Hölder
	// variants (Theorems 8 and 12) are used.
	Independent bool
	// Xi selects the ξ handling inside the Lemma 6 terms.
	Xi XiMode
	// Split selects how slack is distributed when a global feasible
	// ordering is needed (Theorem 7/8 paths).
	Split EpsilonSplit
	// SlackFraction in (0, 1] scales down the distributed slack to keep
	// the feasible-ordering inequalities strictly satisfiable; the default
	// 0 means 1 (use all slack).
	SlackFraction float64
}

// Analysis is the full single-node result: the feasible partition and,
// per session, the best bound object the selected theorems provide.
type Analysis struct {
	Server    Server
	Partition Partition
	// Bounds[i] corresponds to Server.Sessions[i]. Each aggregates the
	// partition-based family (Theorem 11/12), the Theorem 10 fixed tail
	// for H_1 sessions, and is independent of any global ordering.
	Bounds []*SessionBounds
	// OrderingBounds[i] is the Theorem 7/8 bound for session i with
	// respect to one global feasible ordering (the greedy min r/φ order);
	// kept separately so the two routes can be compared (ablation).
	OrderingBounds []*SessionBounds
	// Ordering is the global feasible ordering used for OrderingBounds.
	Ordering []int
	// Rates are the decomposed rates r_i used for OrderingBounds.
	Rates []float64
}

// AnalyzeServer validates the server and computes every per-session bound
// the paper's single-node theory offers under the given options.
func AnalyzeServer(srv Server, opts Options) (*Analysis, error) {
	if err := srv.Validate(); err != nil {
		return nil, err
	}
	if opts.SlackFraction == 0 {
		opts.SlackFraction = 1
	}
	part, err := srv.FeasiblePartition()
	if err != nil {
		return nil, err
	}
	a := &Analysis{Server: srv, Partition: part}

	// Partition-route bounds (Theorems 10/11/12).
	a.Bounds = make([]*SessionBounds, len(srv.Sessions))
	for i := range srv.Sessions {
		var sb *SessionBounds
		if opts.Independent {
			sb, err = srv.Theorem11(part, i, opts.Xi)
		} else {
			sb, err = srv.Theorem12(part, i, nil, opts.Xi)
		}
		if err != nil {
			return nil, fmt.Errorf("gpsmath: session %d: %w", i, err)
		}
		if part.ClassOf[i] == 0 {
			fixed, err := srv.Theorem10(part, i)
			if err != nil {
				return nil, fmt.Errorf("gpsmath: session %d: %w", i, err)
			}
			sb.Fixed = append(sb.Fixed, fixed)
			sb.Theorem += "+thm10"
		}
		a.Bounds[i] = sb
	}

	// Ordering-route bounds (Theorems 7/8).
	rates, err := srv.DecomposedRates(opts.Split, opts.SlackFraction)
	if err != nil {
		return nil, err
	}
	ord, err := srv.FeasibleOrdering(rates)
	if err != nil {
		return nil, err
	}
	a.Ordering = ord
	a.Rates = rates
	a.OrderingBounds = make([]*SessionBounds, len(srv.Sessions))
	for pos := range ord {
		var sb *SessionBounds
		if opts.Independent {
			sb, err = srv.Theorem7(ord, rates, pos, opts.Xi)
		} else {
			sb, err = srv.Theorem8(ord, rates, pos, nil, opts.Xi)
		}
		if err != nil {
			return nil, fmt.Errorf("gpsmath: ordering position %d: %w", pos, err)
		}
		a.OrderingBounds[sb.Index] = sb
	}
	return a, nil
}

// BestBacklogTailValue returns, for session i, the smallest bound on
// Pr{Q_i >= q} across the partition and ordering routes.
func (a *Analysis) BestBacklogTailValue(i int, q float64) float64 {
	v := a.Bounds[i].BacklogTail(q)
	if w := a.OrderingBounds[i].BacklogTail(q); w < v {
		v = w
	}
	return v
}

// BestDelayTailValue returns, for session i, the smallest bound on
// Pr{D_i >= d} across the partition and ordering routes.
func (a *Analysis) BestDelayTailValue(i int, d float64) float64 {
	v := a.Bounds[i].DelayTail(d)
	if w := a.OrderingBounds[i].DelayTail(d); w < v {
		v = w
	}
	return v
}

// AdmissionDecision reports whether every session meets a per-session
// delay target: Pr{D_i >= dmax_i} <= eps_i. Sessions with dmax_i == +Inf
// are unconstrained. It is the paper's motivating soft-QOS admission test.
func (a *Analysis) AdmissionDecision(dmax, eps []float64) (bool, []float64) {
	probs := make([]float64, len(a.Bounds))
	ok := true
	for i := range a.Bounds {
		if math.IsInf(dmax[i], 1) {
			probs[i] = 0
			continue
		}
		probs[i] = a.BestDelayTailValue(i, dmax[i])
		if probs[i] > eps[i] {
			ok = false
		}
	}
	return ok, probs
}
