package gpsmath

import (
	"fmt"
	"math"

	"repro/internal/numeric"
)

// Options steers AnalyzeServer.
type Options struct {
	// Independent declares the session arrival processes mutually
	// independent, enabling Theorems 7 and 11; otherwise the Hölder
	// variants (Theorems 8 and 12) are used.
	Independent bool
	// Xi selects the ξ handling inside the Lemma 6 terms.
	Xi XiMode
	// Split selects how slack is distributed when a global feasible
	// ordering is needed (Theorem 7/8 paths).
	Split EpsilonSplit
	// SlackFraction in (0, 1] scales down the distributed slack to keep
	// the feasible-ordering inequalities strictly satisfiable; the default
	// 0 means 1 (use all slack).
	SlackFraction float64
}

// Analysis is the full single-node result: the feasible partition and,
// per session, the best bound object the selected theorems provide.
type Analysis struct {
	Server    Server
	Partition Partition
	// Bounds[i] corresponds to Server.Sessions[i]. Each aggregates the
	// partition-based family (Theorem 11/12), the Theorem 10 fixed tail
	// for H_1 sessions, and is independent of any global ordering.
	Bounds []*SessionBounds
	// OrderingBounds[i] is the Theorem 7/8 bound for session i with
	// respect to one global feasible ordering (the greedy min r/φ order);
	// kept separately so the two routes can be compared (ablation).
	OrderingBounds []*SessionBounds
	// Ordering is the global feasible ordering used for OrderingBounds.
	Ordering []int
	// Rates are the decomposed rates r_i used for OrderingBounds.
	Rates []float64
}

// AnalyzeServer validates the server and computes every per-session bound
// the paper's single-node theory offers under the given options.
func AnalyzeServer(srv Server, opts Options) (*Analysis, error) {
	if err := srv.Validate(); err != nil {
		return nil, err
	}
	if opts.SlackFraction == 0 {
		opts.SlackFraction = 1
	}
	part, err := srv.FeasiblePartition()
	if err != nil {
		return nil, err
	}
	a := &Analysis{Server: srv, Partition: part}

	// Partition-route bounds (Theorems 10/11/12). One memo carries the
	// class geometry and per-class aggregates shared by every session.
	pm := srv.newPartitionMemo(part)
	a.Bounds = make([]*SessionBounds, len(srv.Sessions))
	// Arena allocations: one block for all SessionBounds and one for
	// every H_1 session's Theorem 10 tail, instead of a heap object per
	// session.
	boundsArena := make([]SessionBounds, len(srv.Sessions))
	fixedArena := make([]numeric.ExpTail, len(part.Classes[0]))
	nFixed := 0
	for i := range srv.Sessions {
		sb := &boundsArena[i]
		if opts.Independent {
			err = pm.theorem11Into(sb, i, opts.Xi)
		} else {
			err = pm.theorem12Into(sb, i, nil, opts.Xi)
		}
		if err != nil {
			return nil, fmt.Errorf("gpsmath: session %d: %w", i, err)
		}
		if part.ClassOf[i] == 0 {
			fixed, err := pm.theorem10(i)
			if err != nil {
				return nil, fmt.Errorf("gpsmath: session %d: %w", i, err)
			}
			fixedArena[nFixed] = fixed
			sb.Fixed = fixedArena[nFixed : nFixed+1 : nFixed+1]
			nFixed++
			// Constant strings for the common cases keep the hot
			// construction path free of concat allocations.
			switch sb.Theorem {
			case "thm11":
				sb.Theorem = "thm11+thm10"
			case "thm12":
				sb.Theorem = "thm12+thm10"
			default:
				sb.Theorem += "+thm10"
			}
		}
		a.Bounds[i] = sb
	}

	// Ordering-route bounds (Theorems 7/8), again via one shared memo.
	rates, err := srv.DecomposedRates(opts.Split, opts.SlackFraction)
	if err != nil {
		return nil, err
	}
	ord, err := srv.FeasibleOrdering(rates)
	if err != nil {
		return nil, err
	}
	a.Ordering = ord
	a.Rates = rates
	om := srv.newOrderingMemo(ord, rates)
	a.OrderingBounds = make([]*SessionBounds, len(srv.Sessions))
	ordArena := make([]SessionBounds, len(ord))
	for pos := range ord {
		sb := &ordArena[pos]
		if opts.Independent {
			err = om.theorem7Into(sb, pos, opts.Xi)
		} else {
			err = om.theorem8Into(sb, pos, nil, opts.Xi)
		}
		if err != nil {
			return nil, fmt.Errorf("gpsmath: ordering position %d: %w", pos, err)
		}
		a.OrderingBounds[sb.Index] = sb
	}
	return a, nil
}

// BestBacklogTailValue returns, for session i, the smallest bound on
// Pr{Q_i >= q} across the partition and ordering routes.
func (a *Analysis) BestBacklogTailValue(i int, q float64) float64 {
	v := a.Bounds[i].BacklogTail(q)
	if w := a.OrderingBounds[i].BacklogTail(q); w < v {
		v = w
	}
	return v
}

// BestDelayTailValue returns, for session i, the smallest bound on
// Pr{D_i >= d} across the partition and ordering routes.
func (a *Analysis) BestDelayTailValue(i int, d float64) float64 {
	v := a.Bounds[i].DelayTail(d)
	if w := a.OrderingBounds[i].DelayTail(d); w < v {
		v = w
	}
	return v
}

// DimensionError reports per-session target slices whose lengths do not
// match the analyzed session count. It wraps ErrInvalidInput, so both
// errors.As with *DimensionError and errors.Is with ErrInvalidInput
// match.
type DimensionError struct {
	Sessions int // sessions in the analysis
	Dmax     int // len(dmax) supplied
	Eps      int // len(eps) supplied
}

// Error implements error.
func (e *DimensionError) Error() string {
	return fmt.Sprintf("gpsmath: admission targets for %d sessions: %d delay targets, %d eps targets",
		e.Sessions, e.Dmax, e.Eps)
}

// Unwrap ties the typed error into the package's ErrInvalidInput family.
func (e *DimensionError) Unwrap() error { return ErrInvalidInput }

// AdmissionDecision reports whether every session meets a per-session
// delay target: Pr{D_i >= dmax_i} <= eps_i. Sessions with dmax_i == +Inf
// are unconstrained. It is the paper's motivating soft-QOS admission
// test. A dmax or eps slice whose length differs from the session count
// is rejected with a *DimensionError instead of a silent misdecision.
//
// probs[i] is the bound that justified session i's verdict: the
// partition-route value when it alone meets eps_i, otherwise the best of
// the partition and ordering routes (BestDelayTailValue). The decision
// is identical either way — any valid bound at or below eps_i proves the
// target — but the ordering route's Theorem 7/8 prefactor costs Θ(i) per
// evaluation, so consulting it only on a partition-route miss keeps a
// large decision (the gpsd epoch rebuild) linear instead of quadratic in
// the session count.
func (a *Analysis) AdmissionDecision(dmax, eps []float64) (bool, []float64, error) {
	if len(dmax) != len(a.Bounds) || len(eps) != len(a.Bounds) {
		return false, nil, &DimensionError{Sessions: len(a.Bounds), Dmax: len(dmax), Eps: len(eps)}
	}
	probs := make([]float64, len(a.Bounds))
	ok := true
	for i := range a.Bounds {
		if math.IsInf(dmax[i], 1) {
			probs[i] = 0
			continue
		}
		p := a.Bounds[i].DelayTail(dmax[i])
		if p > eps[i] {
			if w := a.OrderingBounds[i].DelayTail(dmax[i]); w < p {
				p = w
			}
		}
		probs[i] = p
		if p > eps[i] {
			ok = false
		}
	}
	return ok, probs, nil
}
