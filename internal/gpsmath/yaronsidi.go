package gpsmath

import (
	"fmt"
	"math"

	"repro/internal/ebb"
)

// YaronSidiBounds reconstructs the *recursive* output-characterization
// route of Yaron & Sidi ([YaSi94]) that the paper's §4 compares against:
// instead of decomposing the GPS system into fictitious dedicated-rate
// queues fed by the *input* processes (the paper's approach), the
// recursive route characterizes session i's bound using the E.B.B.
// characterizations of the *departure* processes of the sessions ahead
// of it in the feasible ordering.
//
// Because each output characterization already carries the prefactors of
// everything before it, the prefactors compound along the ordering and
// the usable decay rate shrinks at every step (each output's α is the θ
// chosen for it, strictly below its own ceiling). The EXT-YS ablation
// quantifies the advantage of the paper's decomposition.
//
// thetaFrac in (0,1) picks each stage's Chernoff parameter as a fraction
// of its admissible ceiling (0 selects 0.5). The exact recursion of
// [YaSi94] differs in constants; this reconstruction preserves its
// structure (output-based recursion) — see DESIGN.md §3.
func (s Server) YaronSidiBounds(ord []int, rates []float64, thetaFrac float64, mode XiMode) ([]*SessionBounds, error) {
	if thetaFrac == 0 {
		thetaFrac = 0.5
	}
	if thetaFrac <= 0 || thetaFrac >= 1 {
		return nil, fmt.Errorf("gpsmath: theta fraction = %v, want in (0,1)", thetaFrac)
	}
	if len(ord) != len(s.Sessions) || len(rates) != len(s.Sessions) {
		return nil, fmt.Errorf("gpsmath: ordering/rates length mismatch")
	}
	out := make([]*SessionBounds, len(s.Sessions))
	// interferers[j] is the E.B.B. characterization used for session j's
	// traffic when it interferes with later sessions: its *output*.
	interferers := make([]ebb.Process, len(s.Sessions))

	for pos, i := range ord {
		sess := s.Sessions[i]
		// ψ_i with respect to the ordering (same geometry as Theorem 7).
		tailPhi := 0.0
		for _, j := range ord[pos:] {
			tailPhi += s.Sessions[j].Phi
		}
		psi := sess.Phi / tailPhi

		thetaMax := sess.Arrival.Alpha
		for _, j := range ord[:pos] {
			if lim := interferers[j].Alpha / psi; lim < thetaMax {
				thetaMax = lim
			}
		}
		if !(thetaMax > 0) {
			return nil, fmt.Errorf("gpsmath: session %d: no admissible theta left in the recursion", i)
		}
		ahead := append([]int(nil), ord[:pos]...)
		inter := make([]ebb.Process, len(s.Sessions))
		copy(inter, interferers)
		prefactor := func(theta float64) float64 {
			if theta <= 0 || theta >= thetaMax {
				return math.Inf(1)
			}
			lam := deltaMGF(singleSigmaHat(sess.Arrival), sess.Arrival.Rho, rates[i]-sess.Arrival.Rho, theta, mode)
			for _, j := range ahead {
				a := inter[j]
				lam *= deltaMGF(singleSigmaHat(a), a.Rho, rates[j]-a.Rho, psi*theta, mode)
				if math.IsInf(lam, 1) {
					return math.Inf(1)
				}
			}
			return lam
		}
		sb := &SessionBounds{
			Name:      sess.Name,
			Index:     i,
			G:         s.GuaranteedRate(i),
			Rho:       sess.Arrival.Rho,
			Theorem:   "yaron-sidi",
			ThetaMax:  thetaMax,
			Prefactor: prefactor,
		}
		out[i] = sb
		// Fix this stage's θ and emit the output characterization that
		// later stages must use.
		theta := thetaFrac * thetaMax
		o, err := sb.OutputEBB(theta)
		if err != nil {
			return nil, err
		}
		interferers[i] = o
	}
	return out, nil
}
