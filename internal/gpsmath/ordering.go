package gpsmath

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// EpsilonSplit selects how the rate slack r - Σρ is distributed among the
// sessions as ε_i when forming the dedicated rates r_i = ρ_i + ε_i of the
// decomposed system (paper §3).
type EpsilonSplit int

const (
	// SplitEqual gives every session ε_i = slack/N.
	SplitEqual EpsilonSplit = iota
	// SplitProportional gives ε_i = slack·ρ_i/Σρ_j, preserving the
	// relative loading of the sessions.
	SplitProportional
	// SplitByPhi gives ε_i = slack·φ_i/Σφ_j, mirroring the GPS weights.
	SplitByPhi
)

// String implements fmt.Stringer.
func (e EpsilonSplit) String() string {
	switch e {
	case SplitEqual:
		return "equal"
	case SplitProportional:
		return "proportional"
	case SplitByPhi:
		return "by-phi"
	default:
		return fmt.Sprintf("EpsilonSplit(%d)", int(e))
	}
}

// DecomposedRates returns r_i = ρ_i + ε_i with the slack distributed
// according to split, scaled by frac in (0, 1] of the available slack
// (using slightly less than the full slack keeps strict inequalities
// strict in the presence of rounding).
func (s Server) DecomposedRates(split EpsilonSplit, frac float64) ([]float64, error) {
	// The negated form catches NaN, which satisfies neither comparison.
	if !(frac > 0 && frac <= 1) {
		return nil, fmt.Errorf("%w: slack fraction = %v, want in (0,1]", ErrInvalidInput, frac)
	}
	slack := s.Slack() * frac
	if slack <= 0 {
		return nil, ErrOverloaded
	}
	n := len(s.Sessions)
	rates := make([]float64, n)
	switch split {
	case SplitEqual:
		for i, sess := range s.Sessions {
			rates[i] = sess.Arrival.Rho + slack/float64(n)
		}
	case SplitProportional:
		tot := s.TotalRho()
		for i, sess := range s.Sessions {
			rates[i] = sess.Arrival.Rho + slack*sess.Arrival.Rho/tot
		}
	case SplitByPhi:
		tot := s.TotalPhi()
		for i, sess := range s.Sessions {
			rates[i] = sess.Arrival.Rho + slack*sess.Phi/tot
		}
	default:
		return nil, fmt.Errorf("gpsmath: unknown epsilon split %v", split)
	}
	return rates, nil
}

// ErrNoFeasibleOrdering is returned when no ordering satisfies eq. (5);
// with Σr_i <= r this cannot happen, so seeing it indicates inconsistent
// inputs.
var ErrNoFeasibleOrdering = errors.New("gpsmath: no feasible ordering exists")

// FeasibleOrdering returns a permutation ord of the sessions such that,
// relabeling by ord, paper eq. (5) holds:
//
//	r_{ord[k]} <= φ_{ord[k]} / Σ_{j>=k} φ_{ord[j]} · (r - Σ_{j<k} r_{ord[j]}).
//
// It uses the greedy rule of picking, at each step, the remaining session
// with the smallest r_i/φ_i; if that session violates the inequality no
// feasible ordering exists.
func (s Server) FeasibleOrdering(rates []float64) ([]int, error) {
	n := len(s.Sessions)
	if len(rates) != n {
		return nil, fmt.Errorf("%w: %d rates for %d sessions", ErrInvalidInput, len(rates), n)
	}
	for i, r := range rates {
		// NaN would both scramble the sort and slip past the eq. (5)
		// check below (every comparison with NaN is false).
		if !(r > 0) || math.IsInf(r, 1) || math.IsNaN(r) {
			return nil, fmt.Errorf("%w: rate[%d] = %v, want positive finite", ErrInvalidInput, i, r)
		}
	}
	// Precompute r_i/φ_i once: a closure comparator would otherwise redo
	// two divisions per comparison (O(n log n) of them). The concrete
	// sort.Interface type sidesteps sort.Slice's reflection-based swapper.
	ratio := make([]float64, n)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
		ratio[i] = rates[i] / s.Sessions[i].Phi
	}
	sort.Sort(ratioOrder{idx: idx, ratio: ratio})
	// Verify eq. (5) along the sorted order. At large N this check is
	// numerically delicate: with the full slack distributed (frac = 1 in
	// DecomposedRates) the last position satisfies eq. (5) with exact
	// equality, and near-equal ratios make earlier positions almost tight
	// too, so the margin can sit below the rounding error of the running
	// sums. Suffix φ sums (fresh backward accumulation, no cancellation
	// from repeated subtraction) and a Neumaier-compensated Σr keep the
	// sums themselves at O(ulp) error, and the tolerance is relative at
	// 1e-9 — wide enough to absorb the O(n·ulp) error already baked into
	// the rates by DecomposedRates at n ~ 10^5, narrow enough to reject
	// genuinely infeasible inputs (callers derive rates from Σρ < r, for
	// which eq. (5) holds exactly).
	tailPhi := make([]float64, n+1)
	for k := n - 1; k >= 0; k-- {
		tailPhi[k] = tailPhi[k+1] + s.Sessions[idx[k]].Phi
	}
	used, usedComp := 0.0, 0.0
	const tol = 1e-9
	for k, i := range idx {
		limit := s.Sessions[i].Phi / tailPhi[k] * (s.Rate - (used + usedComp))
		if rates[i] > limit+tol*math.Abs(limit) {
			return nil, fmt.Errorf("%w: session %d needs rate %v > limit %v",
				ErrNoFeasibleOrdering, i, rates[i], limit)
		}
		t := used + rates[i]
		if math.Abs(used) >= math.Abs(rates[i]) {
			usedComp += (used - t) + rates[i]
		} else {
			usedComp += (rates[i] - t) + used
		}
		used = t
	}
	return idx, nil
}

// ratioOrder sorts a session index permutation by precomputed r_i/φ_i,
// breaking ties toward the lower session index. The tie-break makes the
// comparator a strict total order, so the sorted permutation is unique:
// any sorting procedure — the fresh sort here, or the DeltaAnalyzer's
// incremental insertion repair — lands on bit-identical orderings, which
// the delta-vs-fresh differential suite relies on (equal-ratio sessions
// are common under the daemon's small type palettes).
type ratioOrder struct {
	idx   []int
	ratio []float64
}

func (o ratioOrder) Len() int { return len(o.idx) }
func (o ratioOrder) Less(a, b int) bool {
	ra, rb := o.ratio[o.idx[a]], o.ratio[o.idx[b]]
	if ra != rb {
		return ra < rb
	}
	return o.idx[a] < o.idx[b]
}
func (o ratioOrder) Swap(a, b int) { o.idx[a], o.idx[b] = o.idx[b], o.idx[a] }

// Partition is the feasible partition H_1, ..., H_L of paper §5: Classes[k]
// holds the original indices of the sessions in H_{k+1}.
type Partition struct {
	Classes [][]int
	// ClassOf[i] is the 0-based class index of session i.
	ClassOf []int
}

// L returns the number of partition classes.
func (p Partition) L() int { return len(p.Classes) }

// FeasiblePartition computes the feasible partition induced by
// {φ_i} and {ρ_i} (paper eqs. 37–39): session i joins the first class
// H_{k+1} with
//
//	ρ_i/φ_i < (r - Σ_{j∈H^k} ρ_j) / Σ_{j∉H^k} φ_j.
//
// Under the stability condition Σρ < r the recursion always terminates
// with every session placed.
//
// The rounds are computed over one global sort of ρ_i/φ_i instead of the
// round-per-rescan recursion the definition suggests (retained as
// feasiblePartitionReference): the membership predicate ρ_i/φ_i <
// threshold is monotone in the ratio, so each class H_{k+1} is a
// contiguous block of the ascending ratio order and each round only has
// to advance a cursor. That makes the whole partition O(N log N) instead
// of O(L·N). Within a block the ρ/φ running sums are accumulated in
// ascending session-index order — exactly the order the reference's
// index scan uses — so the per-round thresholds, and hence the resulting
// partition, are bit-identical to the reference.
func (s Server) FeasiblePartition() (Partition, error) {
	n := len(s.Sessions)
	p := Partition{ClassOf: make([]int, n)}
	ratio := make([]float64, n)
	// idx doubles as the arena backing every class slice: the classes are
	// contiguous blocks of the sorted order, re-sorted by session index in
	// place.
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
		p.ClassOf[i] = -1
		ratio[i] = s.Sessions[i].Arrival.Rho / s.Sessions[i].Phi
	}
	sort.Sort(ratioOrder{idx: idx, ratio: ratio})
	placedRho := 0.0
	remPhi := s.TotalPhi()
	start := 0
	for start < n {
		threshold := (s.Rate - placedRho) / remPhi
		end := start
		for end < n && ratio[idx[end]] < threshold {
			end++
		}
		if end == start {
			return Partition{}, fmt.Errorf("gpsmath: feasible partition stalled with %d sessions left (sum rho >= rate?)", n-start)
		}
		class := idx[start:end:end]
		sort.Ints(class)
		k := len(p.Classes)
		for _, i := range class {
			p.ClassOf[i] = k
			placedRho += s.Sessions[i].Arrival.Rho
			remPhi -= s.Sessions[i].Phi
		}
		p.Classes = append(p.Classes, class)
		start = end
	}
	return p, nil
}

// AggregateClass lumps the sessions of partition class k into the paper's
// aggregate session: ρ̃ = Σρ_i, φ̃ = Σφ_i, and the E.B.B. prefactor at a
// given θ is exp(θ·Σσ̂_i(θ)) (paper §5). It returns ρ̃, φ̃ and the list of
// member arrival processes for downstream MGF computations.
func (s Server) AggregateClass(p Partition, k int) (rho, phi float64, members []int) {
	for _, i := range p.Classes[k] {
		rho += s.Sessions[i].Arrival.Rho
		phi += s.Sessions[i].Phi
	}
	return rho, phi, p.Classes[k]
}
