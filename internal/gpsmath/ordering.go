package gpsmath

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// EpsilonSplit selects how the rate slack r - Σρ is distributed among the
// sessions as ε_i when forming the dedicated rates r_i = ρ_i + ε_i of the
// decomposed system (paper §3).
type EpsilonSplit int

const (
	// SplitEqual gives every session ε_i = slack/N.
	SplitEqual EpsilonSplit = iota
	// SplitProportional gives ε_i = slack·ρ_i/Σρ_j, preserving the
	// relative loading of the sessions.
	SplitProportional
	// SplitByPhi gives ε_i = slack·φ_i/Σφ_j, mirroring the GPS weights.
	SplitByPhi
)

// String implements fmt.Stringer.
func (e EpsilonSplit) String() string {
	switch e {
	case SplitEqual:
		return "equal"
	case SplitProportional:
		return "proportional"
	case SplitByPhi:
		return "by-phi"
	default:
		return fmt.Sprintf("EpsilonSplit(%d)", int(e))
	}
}

// DecomposedRates returns r_i = ρ_i + ε_i with the slack distributed
// according to split, scaled by frac in (0, 1] of the available slack
// (using slightly less than the full slack keeps strict inequalities
// strict in the presence of rounding).
func (s Server) DecomposedRates(split EpsilonSplit, frac float64) ([]float64, error) {
	// The negated form catches NaN, which satisfies neither comparison.
	if !(frac > 0 && frac <= 1) {
		return nil, fmt.Errorf("%w: slack fraction = %v, want in (0,1]", ErrInvalidInput, frac)
	}
	slack := s.Slack() * frac
	if slack <= 0 {
		return nil, ErrOverloaded
	}
	n := len(s.Sessions)
	rates := make([]float64, n)
	switch split {
	case SplitEqual:
		for i, sess := range s.Sessions {
			rates[i] = sess.Arrival.Rho + slack/float64(n)
		}
	case SplitProportional:
		tot := s.TotalRho()
		for i, sess := range s.Sessions {
			rates[i] = sess.Arrival.Rho + slack*sess.Arrival.Rho/tot
		}
	case SplitByPhi:
		tot := s.TotalPhi()
		for i, sess := range s.Sessions {
			rates[i] = sess.Arrival.Rho + slack*sess.Phi/tot
		}
	default:
		return nil, fmt.Errorf("gpsmath: unknown epsilon split %v", split)
	}
	return rates, nil
}

// ErrNoFeasibleOrdering is returned when no ordering satisfies eq. (5);
// with Σr_i <= r this cannot happen, so seeing it indicates inconsistent
// inputs.
var ErrNoFeasibleOrdering = errors.New("gpsmath: no feasible ordering exists")

// FeasibleOrdering returns a permutation ord of the sessions such that,
// relabeling by ord, paper eq. (5) holds:
//
//	r_{ord[k]} <= φ_{ord[k]} / Σ_{j>=k} φ_{ord[j]} · (r - Σ_{j<k} r_{ord[j]}).
//
// It uses the greedy rule of picking, at each step, the remaining session
// with the smallest r_i/φ_i; if that session violates the inequality no
// feasible ordering exists.
func (s Server) FeasibleOrdering(rates []float64) ([]int, error) {
	n := len(s.Sessions)
	if len(rates) != n {
		return nil, fmt.Errorf("%w: %d rates for %d sessions", ErrInvalidInput, len(rates), n)
	}
	for i, r := range rates {
		// NaN would both scramble the sort and slip past the eq. (5)
		// check below (every comparison with NaN is false).
		if !(r > 0) || math.IsInf(r, 1) || math.IsNaN(r) {
			return nil, fmt.Errorf("%w: rate[%d] = %v, want positive finite", ErrInvalidInput, i, r)
		}
	}
	// Precompute r_i/φ_i once: a closure comparator would otherwise redo
	// two divisions per comparison (O(n log n) of them). The concrete
	// sort.Interface type sidesteps sort.Slice's reflection-based swapper.
	ratio := make([]float64, n)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
		ratio[i] = rates[i] / s.Sessions[i].Phi
	}
	sort.Sort(ratioOrder{idx: idx, ratio: ratio})
	// Verify eq. (5) along the sorted order.
	remPhi := s.TotalPhi()
	used := 0.0
	const tol = 1e-12
	for _, i := range idx {
		limit := s.Sessions[i].Phi / remPhi * (s.Rate - used)
		if rates[i] > limit*(1+tol) {
			return nil, fmt.Errorf("%w: session %d needs rate %v > limit %v",
				ErrNoFeasibleOrdering, i, rates[i], limit)
		}
		used += rates[i]
		remPhi -= s.Sessions[i].Phi
	}
	return idx, nil
}

// ratioOrder sorts a session index permutation by precomputed r_i/φ_i.
type ratioOrder struct {
	idx   []int
	ratio []float64
}

func (o ratioOrder) Len() int           { return len(o.idx) }
func (o ratioOrder) Less(a, b int) bool { return o.ratio[o.idx[a]] < o.ratio[o.idx[b]] }
func (o ratioOrder) Swap(a, b int)      { o.idx[a], o.idx[b] = o.idx[b], o.idx[a] }

// Partition is the feasible partition H_1, ..., H_L of paper §5: Classes[k]
// holds the original indices of the sessions in H_{k+1}.
type Partition struct {
	Classes [][]int
	// ClassOf[i] is the 0-based class index of session i.
	ClassOf []int
}

// L returns the number of partition classes.
func (p Partition) L() int { return len(p.Classes) }

// FeasiblePartition computes the feasible partition induced by
// {φ_i} and {ρ_i} (paper eqs. 37–39): session i joins the first class
// H_{k+1} with
//
//	ρ_i/φ_i < (r - Σ_{j∈H^k} ρ_j) / Σ_{j∉H^k} φ_j.
//
// Under the stability condition Σρ < r the recursion always terminates
// with every session placed.
func (s Server) FeasiblePartition() (Partition, error) {
	n := len(s.Sessions)
	p := Partition{ClassOf: make([]int, n)}
	// ρ_i/φ_i is scanned against a fresh threshold every round; computing
	// the ratios once keeps each round to a compare per unplaced session.
	ratio := make([]float64, n)
	for i := range p.ClassOf {
		p.ClassOf[i] = -1
		ratio[i] = s.Sessions[i].Arrival.Rho / s.Sessions[i].Phi
	}
	placedRho := 0.0
	remPhi := s.TotalPhi()
	remaining := n
	// Every session lands in exactly one class, so one n-slot arena backs
	// all the class slices.
	arena := make([]int, 0, n)
	for remaining > 0 {
		threshold := (s.Rate - placedRho) / remPhi
		start := len(arena)
		for i := range s.Sessions {
			if p.ClassOf[i] >= 0 {
				continue
			}
			if ratio[i] < threshold {
				arena = append(arena, i)
			}
		}
		class := arena[start:len(arena):len(arena)]
		if len(class) == 0 {
			return Partition{}, fmt.Errorf("gpsmath: feasible partition stalled with %d sessions left (sum rho >= rate?)", remaining)
		}
		k := len(p.Classes)
		for _, i := range class {
			p.ClassOf[i] = k
			placedRho += s.Sessions[i].Arrival.Rho
			remPhi -= s.Sessions[i].Phi
		}
		p.Classes = append(p.Classes, class)
		remaining -= len(class)
	}
	return p, nil
}

// AggregateClass lumps the sessions of partition class k into the paper's
// aggregate session: ρ̃ = Σρ_i, φ̃ = Σφ_i, and the E.B.B. prefactor at a
// given θ is exp(θ·Σσ̂_i(θ)) (paper §5). It returns ρ̃, φ̃ and the list of
// member arrival processes for downstream MGF computations.
func (s Server) AggregateClass(p Partition, k int) (rho, phi float64, members []int) {
	for _, i := range p.Classes[k] {
		rho += s.Sessions[i].Arrival.Rho
		phi += s.Sessions[i].Phi
	}
	return rho, phi, p.Classes[k]
}
