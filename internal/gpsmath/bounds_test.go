package gpsmath

import (
	"errors"
	"math"
	"testing"

	"repro/internal/ebb"
)

func set1Server(t *testing.T) Server {
	t.Helper()
	srv := NewRPPSServer(1, paperSet1(), nil)
	if err := srv.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	return srv
}

// Theorem 7 with ξ = 1 must reproduce eq. (26) literally.
func TestTheorem7MatchesEq26(t *testing.T) {
	srv := set1Server(t)
	rates, err := srv.DecomposedRates(SplitEqual, 1)
	if err != nil {
		t.Fatal(err)
	}
	ord, err := srv.FeasibleOrdering(rates)
	if err != nil {
		t.Fatal(err)
	}
	for pos := range ord {
		sb, err := srv.Theorem7(ord, rates, pos, XiOne)
		if err != nil {
			t.Fatalf("Theorem7(pos=%d): %v", pos, err)
		}
		i := ord[pos]
		sess := srv.Sessions[i]
		tailPhi := 0.0
		for _, j := range ord[pos:] {
			tailPhi += srv.Sessions[j].Phi
		}
		psi := sess.Phi / tailPhi
		for _, theta := range []float64{0.1, 0.4, 0.8} {
			// Literal eq. (26).
			num := sess.Arrival.SigmaHat(theta) + sess.Arrival.Rho
			den := 1 - math.Exp(-theta*(rates[i]-sess.Arrival.Rho))
			valid := true
			for _, j := range ord[:pos] {
				a := srv.Sessions[j].Arrival
				if psi*theta >= a.Alpha {
					valid = false
					break
				}
				num += psi * (a.SigmaHat(psi*theta) + a.Rho)
				den *= 1 - math.Exp(-psi*theta*(rates[j]-a.Rho))
			}
			if !valid || theta >= sess.Arrival.Alpha {
				continue
			}
			want := math.Exp(theta*num) / den
			got := sb.PrefactorAt(theta)
			if math.Abs(got-want) > 1e-9*want {
				t.Errorf("pos %d theta %v: prefactor %v, want eq.(26) value %v", pos, theta, got, want)
			}
		}
	}
}

func TestTheorem7XiOptimalNeverWorse(t *testing.T) {
	srv := set1Server(t)
	rates, _ := srv.DecomposedRates(SplitEqual, 1)
	ord, _ := srv.FeasibleOrdering(rates)
	for pos := range ord {
		one, _ := srv.Theorem7(ord, rates, pos, XiOne)
		opt, _ := srv.Theorem7(ord, rates, pos, XiOptimal)
		for k := 1; k < 20; k++ {
			theta := one.ThetaMax * float64(k) / 20
			a, b := opt.PrefactorAt(theta), one.PrefactorAt(theta)
			if math.IsInf(b, 1) {
				continue
			}
			if a > b*(1+1e-9) {
				t.Errorf("pos %d theta %v: optimal-xi prefactor %v > xi=1 prefactor %v", pos, theta, a, b)
			}
		}
	}
}

func TestTheorem7FirstPositionIgnoresOthers(t *testing.T) {
	// The first session of a feasible ordering sees no cross terms: its
	// prefactor must equal the bare Lemma 6 bound for its own queue.
	srv := set1Server(t)
	rates, _ := srv.DecomposedRates(SplitEqual, 1)
	ord, _ := srv.FeasibleOrdering(rates)
	sb, _ := srv.Theorem7(ord, rates, 0, XiOne)
	i := ord[0]
	a := srv.Sessions[i].Arrival
	theta := 0.5
	want := a.DeltaMGFBound(theta, rates[i], 1)
	if got := sb.PrefactorAt(theta); math.Abs(got-want) > 1e-12*want {
		t.Errorf("prefactor = %v, want bare Lemma 6 value %v", got, want)
	}
}

func TestTheorem7Errors(t *testing.T) {
	srv := set1Server(t)
	rates, _ := srv.DecomposedRates(SplitEqual, 1)
	ord, _ := srv.FeasibleOrdering(rates)
	if _, err := srv.Theorem7(ord, rates, -1, XiOne); err == nil {
		t.Error("negative position: want error")
	}
	if _, err := srv.Theorem7(ord, rates, len(ord), XiOne); err == nil {
		t.Error("position past end: want error")
	}
}

func TestBacklogTailProperties(t *testing.T) {
	srv := set1Server(t)
	rates, _ := srv.DecomposedRates(SplitEqual, 1)
	ord, _ := srv.FeasibleOrdering(rates)
	sb, _ := srv.Theorem7(ord, rates, len(ord)-1, XiOptimal)

	prev := 1.0
	for q := 0.0; q <= 30; q += 0.5 {
		v := sb.BacklogTail(q)
		if v < 0 || v > 1 {
			t.Fatalf("BacklogTail(%v) = %v outside [0,1]", q, v)
		}
		if v > prev+1e-12 {
			t.Fatalf("BacklogTail not monotone at q=%v: %v > %v", q, v, prev)
		}
		prev = v
	}
	// Delay bound is the backlog bound at q = g·d.
	d := 7.0
	if got, want := sb.DelayTail(d), sb.BacklogTail(sb.G*d); math.Abs(got-want) > 1e-12 {
		t.Errorf("DelayTail(%v) = %v, want BacklogTail(g·d) = %v", d, got, want)
	}
}

func TestBacklogQuantileInvertsBound(t *testing.T) {
	srv := set1Server(t)
	a, err := AnalyzeServer(srv, Options{Independent: true, Xi: XiOptimal})
	if err != nil {
		t.Fatal(err)
	}
	sb := a.Bounds[0]
	for _, eps := range []float64{1e-2, 1e-4, 1e-6} {
		q := sb.BacklogQuantile(eps)
		if math.IsInf(q, 1) {
			t.Fatalf("BacklogQuantile(%v) infinite", eps)
		}
		// The bound at the quantile must be at most eps (up to numerics).
		if v := sb.BacklogTail(q * (1 + 1e-9)); v > eps*(1+1e-6) {
			t.Errorf("bound at quantile(%v) = %v, want <= eps", eps, v)
		}
		if d := sb.DelayQuantile(eps); math.Abs(d-q/sb.G) > 1e-9*d {
			t.Errorf("DelayQuantile = %v, want q/g = %v", d, q/sb.G)
		}
	}
}

func TestTheorem8NotLooserThanPaperEq36(t *testing.T) {
	srv := set1Server(t)
	rates, _ := srv.DecomposedRates(SplitEqual, 1)
	ord, _ := srv.FeasibleOrdering(rates)
	for pos := 1; pos < len(ord); pos++ {
		alphas := make([]float64, 0, pos+1)
		for _, j := range ord[:pos] {
			alphas = append(alphas, srv.Sessions[j].Arrival.Alpha)
		}
		alphas = append(alphas, srv.Sessions[ord[pos]].Arrival.Alpha)
		ps, _ := ebb.HolderExponents(alphas)
		sb, err := srv.Theorem8(ord, rates, pos, ps, XiOne)
		if err != nil {
			t.Fatalf("Theorem8(pos=%d): %v", pos, err)
		}
		for k := 1; k < 10; k++ {
			theta := sb.ThetaMax * float64(k) / 10
			got := sb.PrefactorAt(theta)
			paper := srv.Theorem8PaperPrefactor(ord, rates, pos, ps, theta)
			if math.IsInf(paper, 1) {
				continue
			}
			if got > paper*(1+1e-9) {
				t.Errorf("pos %d theta %v: exact Hölder %v > paper eq.(36) %v", pos, theta, got, paper)
			}
		}
	}
}

func TestTheorem8FirstPositionEqualsTheorem7(t *testing.T) {
	srv := set1Server(t)
	rates, _ := srv.DecomposedRates(SplitEqual, 1)
	ord, _ := srv.FeasibleOrdering(rates)
	t7, _ := srv.Theorem7(ord, rates, 0, XiOne)
	t8, err := srv.Theorem8(ord, rates, 0, nil, XiOne)
	if err != nil {
		t.Fatalf("Theorem8: %v", err)
	}
	for _, theta := range []float64{0.2, 0.5, 1.0} {
		a, b := t7.PrefactorAt(theta), t8.PrefactorAt(theta)
		if math.IsInf(a, 1) && math.IsInf(b, 1) {
			continue
		}
		if math.Abs(a-b) > 1e-9*a {
			t.Errorf("theta %v: thm7 %v != thm8 (single term) %v", theta, a, b)
		}
	}
}

func TestTheorem8HolderCeilingBelowTheorem7(t *testing.T) {
	// Dependence costs decay rate: the Hölder θ ceiling must be below the
	// independent one for positions past the first.
	srv := set1Server(t)
	rates, _ := srv.DecomposedRates(SplitEqual, 1)
	ord, _ := srv.FeasibleOrdering(rates)
	pos := len(ord) - 1
	t7, _ := srv.Theorem7(ord, rates, pos, XiOne)
	t8, _ := srv.Theorem8(ord, rates, pos, nil, XiOne)
	if !(t8.ThetaMax < t7.ThetaMax) {
		t.Errorf("Hölder ThetaMax %v not below independent %v", t8.ThetaMax, t7.ThetaMax)
	}
}

func TestTheorem8BadExponents(t *testing.T) {
	srv := set1Server(t)
	rates, _ := srv.DecomposedRates(SplitEqual, 1)
	ord, _ := srv.FeasibleOrdering(rates)
	if _, err := srv.Theorem8(ord, rates, 1, []float64{2}, XiOne); err == nil {
		t.Error("wrong exponent count: want error")
	}
	if _, err := srv.Theorem8(ord, rates, 1, []float64{0.5, 2}, XiOne); err == nil {
		t.Error("exponent <= 1: want error")
	}
	if _, err := srv.Theorem8(ord, rates, 1, []float64{3, 3}, XiOne); err == nil {
		t.Error("reciprocals not summing to 1: want error")
	}
}

func TestTheorem10RPPSAllSessions(t *testing.T) {
	srv := set1Server(t)
	p, err := srv.FeasiblePartition()
	if err != nil {
		t.Fatal(err)
	}
	for i := range srv.Sessions {
		tail, err := srv.Theorem10(p, i)
		if err != nil {
			t.Fatalf("Theorem10(%d): %v", i, err)
		}
		if !tail.Valid() {
			t.Errorf("session %d: invalid tail %v", i, tail)
		}
		// Theorem 10 decays at the full source rate α_i.
		if tail.Rate != srv.Sessions[i].Arrival.Alpha {
			t.Errorf("session %d: tail rate %v, want alpha %v", i, tail.Rate, srv.Sessions[i].Arrival.Alpha)
		}
	}
}

func TestTheorem10RejectsHigherClasses(t *testing.T) {
	srv := mixedServer()
	p, _ := srv.FeasiblePartition()
	if _, err := srv.Theorem10(p, 1); err == nil {
		t.Error("Theorem10 on H_2 session: want error")
	}
}

func TestTheorem11MatchesEq54(t *testing.T) {
	srv := mixedServer()
	p, _ := srv.FeasiblePartition()
	sb, err := srv.Theorem11(p, 1, XiOne) // session in H_2
	if err != nil {
		t.Fatalf("Theorem11: %v", err)
	}
	for _, theta := range []float64{0.1, 0.3, 0.6} {
		if theta >= sb.ThetaMax {
			continue
		}
		want := srv.Theorem11PaperPrefactor(p, 1, theta)
		got := sb.PrefactorAt(theta)
		if math.Abs(got-want) > 1e-9*want {
			t.Errorf("theta %v: prefactor %v, want eq.(54) value %v", theta, got, want)
		}
	}
}

func TestTheorem11ClassGeometry(t *testing.T) {
	srv := mixedServer()
	p, _ := srv.FeasiblePartition()
	geo := srv.classGeometry(p, 1)
	// Session b: ψ = φ_b/φ_b = 1 (only session outside H_1);
	// gEff = 1·(1 - ρ_a) = 0.9; eps budget = 0.9 - 0.4 = 0.5.
	if math.Abs(geo.psi-1) > 1e-12 || math.Abs(geo.gEff-0.9) > 1e-12 || math.Abs(geo.epsBudget-0.5) > 1e-12 {
		t.Errorf("geometry = %+v, want psi=1 gEff=0.9 eps=0.5", geo)
	}
	// H_1 session: gEff equals the global guaranteed rate.
	geoA := srv.classGeometry(p, 0)
	if math.Abs(geoA.gEff-srv.GuaranteedRate(0)) > 1e-12 {
		t.Errorf("H_1 gEff = %v, want global g = %v", geoA.gEff, srv.GuaranteedRate(0))
	}
}

func TestTheorem12SingleClassEqualsTheorem11(t *testing.T) {
	srv := mixedServer()
	p, _ := srv.FeasiblePartition()
	t11, _ := srv.Theorem11(p, 0, XiOne)
	t12, err := srv.Theorem12(p, 0, nil, XiOne)
	if err != nil {
		t.Fatalf("Theorem12: %v", err)
	}
	for _, theta := range []float64{0.3, 0.8, 1.5} {
		a, b := t11.PrefactorAt(theta), t12.PrefactorAt(theta)
		if math.IsInf(a, 1) && math.IsInf(b, 1) {
			continue
		}
		if math.Abs(a-b) > 1e-9*a {
			t.Errorf("theta %v: thm11 %v != thm12 %v for H_1 session", theta, a, b)
		}
	}
}

func TestTheorem12BadExponents(t *testing.T) {
	srv := mixedServer()
	p, _ := srv.FeasiblePartition()
	if _, err := srv.Theorem12(p, 1, []float64{2, 2, 2}, XiOne); err == nil {
		t.Error("wrong count: want error")
	}
	if _, err := srv.Theorem12(p, 1, []float64{0.2, 1.25}, XiOne); err == nil {
		t.Error("exponent < 1: want error")
	}
}

func TestAnalyzeServerRPPS(t *testing.T) {
	srv := set1Server(t)
	a, err := AnalyzeServer(srv, Options{Independent: true, Xi: XiOptimal})
	if err != nil {
		t.Fatalf("AnalyzeServer: %v", err)
	}
	if a.Partition.L() != 1 {
		t.Errorf("partition classes = %d, want 1", a.Partition.L())
	}
	for i, sb := range a.Bounds {
		if len(sb.Fixed) == 0 {
			t.Errorf("session %d: RPPS session missing Theorem 10 fixed tail", i)
		}
		if sb.Index != i {
			t.Errorf("Bounds[%d].Index = %d", i, sb.Index)
		}
		ob := a.OrderingBounds[i]
		if ob == nil || ob.Index != i {
			t.Errorf("OrderingBounds[%d] misaligned", i)
		}
		// Combined best bound behaves like a tail.
		if v := a.BestDelayTailValue(i, 0); v != 1 && v > 1 {
			t.Errorf("best delay bound at 0 = %v, want <= 1", v)
		}
		if v := a.BestDelayTailValue(i, 40); v > 1e-4 {
			t.Errorf("best delay bound at 40 = %v, want tiny", v)
		}
	}
}

func TestAnalyzeServerDependent(t *testing.T) {
	srv := set1Server(t)
	a, err := AnalyzeServer(srv, Options{Independent: false, Xi: XiOne})
	if err != nil {
		t.Fatalf("AnalyzeServer: %v", err)
	}
	// Dependence must not yield better (smaller) bounds than independence.
	ai, err := AnalyzeServer(srv, Options{Independent: true, Xi: XiOne})
	if err != nil {
		t.Fatal(err)
	}
	for i := range srv.Sessions {
		for _, q := range []float64{2, 5, 10} {
			dep := a.OrderingBounds[i].BacklogTail(q)
			ind := ai.OrderingBounds[i].BacklogTail(q)
			if ind > dep*(1+1e-9) {
				t.Errorf("session %d q=%v: independent bound %v worse than dependent %v", i, q, ind, dep)
			}
		}
	}
}

func TestAnalyzeServerRejectsInvalid(t *testing.T) {
	srv := NewRPPSServer(0.5, paperSet1(), nil) // overloaded
	if _, err := AnalyzeServer(srv, Options{Independent: true}); err == nil {
		t.Error("overloaded server: want error")
	}
}

func TestAdmissionDecision(t *testing.T) {
	srv := set1Server(t)
	a, err := AnalyzeServer(srv, Options{Independent: true, Xi: XiOptimal})
	if err != nil {
		t.Fatal(err)
	}
	n := len(srv.Sessions)
	loose := make([]float64, n)
	eps := make([]float64, n)
	for i := range loose {
		loose[i] = 200
		eps[i] = 1e-6
	}
	if ok, _, err := a.AdmissionDecision(loose, eps); err != nil {
		t.Fatal(err)
	} else if !ok {
		t.Error("very loose delay targets rejected")
	}
	tight := make([]float64, n)
	for i := range tight {
		tight[i] = 1e-3
	}
	if ok, _, err := a.AdmissionDecision(tight, eps); err != nil {
		t.Fatal(err)
	} else if ok {
		t.Error("impossibly tight delay targets admitted")
	}
	unconstrained := make([]float64, n)
	for i := range unconstrained {
		unconstrained[i] = math.Inf(1)
	}
	ok, probs, err := a.AdmissionDecision(unconstrained, eps)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Error("unconstrained sessions rejected")
	}
	for i, p := range probs {
		if p != 0 {
			t.Errorf("probs[%d] = %v, want 0 for unconstrained", i, p)
		}
	}
}

func TestOutputEBB(t *testing.T) {
	srv := set1Server(t)
	a, _ := AnalyzeServer(srv, Options{Independent: true, Xi: XiOptimal})
	sb := a.Bounds[2]
	theta := sb.ThetaMax / 2
	out, err := sb.OutputEBB(theta)
	if err != nil {
		t.Fatalf("OutputEBB: %v", err)
	}
	if out.Rho != sb.Rho || out.Alpha != theta {
		t.Errorf("OutputEBB = %v, want rho %v alpha %v", out, sb.Rho, theta)
	}
	if err := out.Validate(); err != nil {
		t.Errorf("output process invalid: %v", err)
	}
	if _, err := sb.OutputEBB(sb.ThetaMax * 2); err == nil {
		t.Error("theta above ceiling: want error")
	}

	best, err := sb.BestOutputEBB(0.5)
	if err != nil {
		t.Fatalf("BestOutputEBB: %v", err)
	}
	if err := best.Validate(); err != nil {
		t.Errorf("best output invalid: %v", err)
	}
}

func TestXiModeString(t *testing.T) {
	if XiOne.String() != "xi-1" || XiOptimal.String() != "xi-optimal" {
		t.Error("XiMode String mismatch")
	}
}

func TestPartitionRouteBeatsOrderingRouteForLastSession(t *testing.T) {
	// Under RPPS every session is in H_1, so the partition route gives a
	// Theorem 10 tail decaying at rate α_i, while the ordering route's
	// last session decays no faster than min_j α_j — partition must win
	// for large q.
	srv := set1Server(t)
	a, _ := AnalyzeServer(srv, Options{Independent: true, Xi: XiOptimal})
	last := a.Ordering[len(a.Ordering)-1]
	q := 60.0
	pv := a.Bounds[last].BacklogTail(q)
	ov := a.OrderingBounds[last].BacklogTail(q)
	if pv > ov {
		t.Errorf("partition bound %v worse than ordering bound %v at q=%v", pv, ov, q)
	}
}

func TestAdmissionDecisionDimensionError(t *testing.T) {
	srv := set1Server(t)
	a, err := AnalyzeServer(srv, Options{Independent: true, Xi: XiOptimal})
	if err != nil {
		t.Fatal(err)
	}
	n := len(srv.Sessions)
	good := make([]float64, n)
	for i := range good {
		good[i] = 100
	}
	short := good[:n-1]
	for _, tc := range [][2][]float64{{short, good}, {good, short}, {nil, good}} {
		_, _, err := a.AdmissionDecision(tc[0], tc[1])
		var dim *DimensionError
		if !errors.As(err, &dim) {
			t.Fatalf("dmax len %d, eps len %d: error %v, want *DimensionError", len(tc[0]), len(tc[1]), err)
		}
		if dim.Sessions != n || dim.Dmax != len(tc[0]) || dim.Eps != len(tc[1]) {
			t.Errorf("DimensionError = %+v, want sessions %d, dmax %d, eps %d", dim, n, len(tc[0]), len(tc[1]))
		}
		if !errors.Is(err, ErrInvalidInput) {
			t.Errorf("dimension error does not wrap ErrInvalidInput: %v", err)
		}
	}
}
