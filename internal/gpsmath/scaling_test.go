package gpsmath

import (
	"fmt"
	"math"
	"testing"

	"repro/internal/ebb"
	"repro/internal/source"
)

// scalingServer builds the heterogeneous population the scaling
// benchmarks use: total load 0.9 split unevenly, spread weights and
// E.B.B. parameters.
func scalingServer(n int, seed uint64) Server {
	srv := Server{Rate: 1}
	rng := source.NewRNG(seed)
	budget := 0.9
	for i := 0; i < n; i++ {
		rho := budget / float64(n) * (0.5 + 0.5*rng.Float64())
		srv.Sessions = append(srv.Sessions, Session{
			Name: fmt.Sprint(i),
			Phi:  0.1 + rng.Float64(),
			Arrival: ebb.Process{
				Rho: rho, Lambda: 0.5 + rng.Float64(), Alpha: 0.5 + 2*rng.Float64(),
			},
		})
	}
	return srv
}

func sameBits(a, b float64) bool {
	return math.Float64bits(a) == math.Float64bits(b)
}

func relClose(a, b, tol float64) bool {
	if sameBits(a, b) || (math.IsInf(a, 1) && math.IsInf(b, 1)) {
		return true
	}
	d := math.Abs(a - b)
	m := math.Max(math.Abs(a), math.Abs(b))
	return d <= tol*m
}

// TestFeasiblePartitionMatchesReference pins the sorted-block partition
// to the round-per-rescan reference bit for bit: the fast path
// accumulates the per-round ρ/φ sums in the same session order, so even
// the float thresholds must agree exactly.
func TestFeasiblePartitionMatchesReference(t *testing.T) {
	for _, n := range []int{1, 2, 3, 5, 8, 16, 33, 64, 257} {
		for seed := uint64(1); seed <= 5; seed++ {
			srv := scalingServer(n, seed*7919+uint64(n))
			got, errGot := srv.FeasiblePartition()
			want, errWant := srv.feasiblePartitionReference()
			if (errGot == nil) != (errWant == nil) {
				t.Fatalf("n=%d seed=%d: fast err=%v ref err=%v", n, seed, errGot, errWant)
			}
			if errGot != nil {
				continue
			}
			if len(got.Classes) != len(want.Classes) {
				t.Fatalf("n=%d seed=%d: %d classes, reference has %d", n, seed, len(got.Classes), len(want.Classes))
			}
			for c := range got.Classes {
				if len(got.Classes[c]) != len(want.Classes[c]) {
					t.Fatalf("n=%d seed=%d class %d: size %d vs %d", n, seed, c, len(got.Classes[c]), len(want.Classes[c]))
				}
				for j := range got.Classes[c] {
					if got.Classes[c][j] != want.Classes[c][j] {
						t.Fatalf("n=%d seed=%d class %d member %d: %d vs %d",
							n, seed, c, j, got.Classes[c][j], want.Classes[c][j])
					}
				}
			}
			for i := range got.ClassOf {
				if got.ClassOf[i] != want.ClassOf[i] {
					t.Fatalf("n=%d seed=%d: ClassOf[%d] = %d, reference %d", n, seed, i, got.ClassOf[i], want.ClassOf[i])
				}
			}
		}
	}
}

// TestFeasiblePartitionOverload keeps the stalled-partition error on the
// fast path.
func TestFeasiblePartitionOverload(t *testing.T) {
	srv := Server{Rate: 1}
	for i := 0; i < 3; i++ {
		srv.Sessions = append(srv.Sessions, Session{
			Name: fmt.Sprint(i), Phi: 1,
			Arrival: ebb.Process{Rho: 0.5, Lambda: 1, Alpha: 1},
		})
	}
	if _, err := srv.FeasiblePartition(); err == nil {
		t.Fatal("overloaded server: want stalled-partition error, got nil")
	}
	if _, err := srv.feasiblePartitionReference(); err == nil {
		t.Fatal("overloaded server: reference accepted overload")
	}
}

// thetaProbe samples θ across (0, θmax): below, at fractions of, and
// just above the ceiling.
func thetaProbe(thetaMax float64) []float64 {
	return []float64{
		thetaMax * 1e-3, thetaMax * 0.25, thetaMax * 0.5,
		thetaMax * 0.9, thetaMax * 0.999, thetaMax * 1.001, -1, 0,
	}
}

// TestOrderingBoundsMatchReference pins theorem7/8 fast constructions to
// the retained references across random populations. Theorem 7 shares
// its arithmetic with the old code exactly; Theorem 8's fast path may
// differ from the reference θ ceiling by a couple of ulps (the
// predecessor limits collapse to 1/(inv·ψ)), so the ceiling is compared
// with a 4-ulp-scale relative tolerance and the prefactors bit for bit
// at θ strictly below both ceilings.
func TestOrderingBoundsMatchReference(t *testing.T) {
	for _, n := range []int{1, 2, 4, 9, 16, 33, 64} {
		for seed := uint64(1); seed <= 3; seed++ {
			srv := scalingServer(n, seed*104729+uint64(n))
			rates, err := srv.DecomposedRates(SplitEqual, 1)
			if err != nil {
				t.Fatalf("n=%d: DecomposedRates: %v", n, err)
			}
			ord, err := srv.FeasibleOrdering(rates)
			if err != nil {
				t.Fatalf("n=%d: FeasibleOrdering: %v", n, err)
			}
			memo := srv.newOrderingMemo(ord, rates)
			for _, mode := range []XiMode{XiOne, XiOptimal} {
				for pos := 0; pos < n; pos++ {
					var fast, ref SessionBounds
					if err := memo.theorem8Into(&fast, pos, nil, mode); err != nil {
						t.Fatalf("n=%d pos=%d: theorem8Into: %v", n, pos, err)
					}
					if err := memo.theorem8RefInto(&ref, pos, nil, mode); err != nil {
						t.Fatalf("n=%d pos=%d: theorem8RefInto: %v", n, pos, err)
					}
					if !relClose(fast.ThetaMax, ref.ThetaMax, 1e-12) {
						t.Fatalf("n=%d pos=%d mode=%v: thm8 ThetaMax %v vs reference %v",
							n, pos, mode, fast.ThetaMax, ref.ThetaMax)
					}
					ceil := math.Min(fast.ThetaMax, ref.ThetaMax)
					for _, theta := range thetaProbe(ceil) {
						if theta >= ceil && theta <= math.Max(fast.ThetaMax, ref.ThetaMax) {
							continue // inside the ulp band the Inf cutoffs may differ
						}
						a, b := fast.Prefactor(theta), ref.Prefactor(theta)
						if !sameBits(a, b) {
							t.Fatalf("n=%d pos=%d mode=%v θ=%v: thm8 prefactor %v vs reference %v",
								n, pos, mode, theta, a, b)
						}
					}
				}
			}
		}
	}
}

// TestPartitionBoundsMatchReference pins theorem11/12 fast constructions
// to the retained references: Theorem 11 must agree bit for bit
// (prefix-min and closure-built aggregate terms reproduce the same
// floats); Theorem 12's ceiling gets the same ulp-band treatment as
// Theorem 8.
func TestPartitionBoundsMatchReference(t *testing.T) {
	for _, n := range []int{1, 2, 4, 9, 16, 33, 64, 129} {
		for seed := uint64(1); seed <= 3; seed++ {
			srv := scalingServer(n, seed*31337+uint64(n))
			part, err := srv.FeasiblePartition()
			if err != nil {
				t.Fatalf("n=%d: FeasiblePartition: %v", n, err)
			}
			memo := srv.newPartitionMemo(part)
			for _, mode := range []XiMode{XiOne, XiOptimal} {
				for i := 0; i < n; i++ {
					var fast, ref SessionBounds
					if err := memo.theorem11Into(&fast, i, mode); err != nil {
						t.Fatalf("n=%d i=%d: theorem11Into: %v", n, i, err)
					}
					if err := memo.theorem11RefInto(&ref, i, mode); err != nil {
						t.Fatalf("n=%d i=%d: theorem11RefInto: %v", n, i, err)
					}
					if !sameBits(fast.ThetaMax, ref.ThetaMax) {
						t.Fatalf("n=%d i=%d mode=%v: thm11 ThetaMax %v vs reference %v",
							n, i, mode, fast.ThetaMax, ref.ThetaMax)
					}
					for _, theta := range thetaProbe(fast.ThetaMax) {
						a, b := fast.Prefactor(theta), ref.Prefactor(theta)
						if !sameBits(a, b) {
							t.Fatalf("n=%d i=%d mode=%v θ=%v: thm11 prefactor %v vs reference %v",
								n, i, mode, theta, a, b)
						}
					}

					if err := memo.theorem12Into(&fast, i, nil, mode); err != nil {
						t.Fatalf("n=%d i=%d: theorem12Into: %v", n, i, err)
					}
					if err := memo.theorem12RefInto(&ref, i, nil, mode); err != nil {
						t.Fatalf("n=%d i=%d: theorem12RefInto: %v", n, i, err)
					}
					if !relClose(fast.ThetaMax, ref.ThetaMax, 1e-12) {
						t.Fatalf("n=%d i=%d mode=%v: thm12 ThetaMax %v vs reference %v",
							n, i, mode, fast.ThetaMax, ref.ThetaMax)
					}
					ceil := math.Min(fast.ThetaMax, ref.ThetaMax)
					for _, theta := range thetaProbe(ceil) {
						if theta >= ceil && theta <= math.Max(fast.ThetaMax, ref.ThetaMax) {
							continue
						}
						a, b := fast.Prefactor(theta), ref.Prefactor(theta)
						if !sameBits(a, b) {
							t.Fatalf("n=%d i=%d mode=%v θ=%v: thm12 prefactor %v vs reference %v",
								n, i, mode, theta, a, b)
						}
					}
				}
			}
		}
	}
}

// TestAnalyzeServerLargeN exercises the full pass well past the old
// numerical ceiling (FeasibleOrdering's eq. (5) check used to reject
// spuriously around N ≈ 1024) and sanity-checks the output shape.
func TestAnalyzeServerLargeN(t *testing.T) {
	if testing.Short() {
		t.Skip("large-N analysis in -short mode")
	}
	srv := scalingServer(4096, 4096)
	a, err := AnalyzeServer(srv, Options{Independent: true, Xi: XiOptimal})
	if err != nil {
		t.Fatalf("AnalyzeServer(4096): %v", err)
	}
	if len(a.Bounds) != 4096 || len(a.OrderingBounds) != 4096 {
		t.Fatalf("bounds sets: %d partition, %d ordering, want 4096 each",
			len(a.Bounds), len(a.OrderingBounds))
	}
	for i := range a.Bounds {
		if a.Bounds[i].ThetaMax <= 0 || a.OrderingBounds[i].ThetaMax <= 0 {
			t.Fatalf("session %d: non-positive θ ceiling", i)
		}
	}
}

// TestFeasibleOrderingTightSlack covers the regime that used to fail: a
// full-slack equal split makes the last eq. (5) position an exact
// equality, so only rounding decides it at every N.
func TestFeasibleOrderingTightSlack(t *testing.T) {
	for _, n := range []int{64, 1024, 8192} {
		srv := scalingServer(n, uint64(n)*13)
		rates, err := srv.DecomposedRates(SplitEqual, 1)
		if err != nil {
			t.Fatalf("n=%d: DecomposedRates: %v", n, err)
		}
		if _, err := srv.FeasibleOrdering(rates); err != nil {
			t.Fatalf("n=%d: FeasibleOrdering rejected a feasible full-slack split: %v", n, err)
		}
	}
}
