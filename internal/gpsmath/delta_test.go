package gpsmath

import (
	"math"
	"testing"

	"repro/internal/ebb"
	"repro/internal/source"
)

// churnPalette returns the session types the churn tests draw from. The
// ratios ρ/φ straddle the partition thresholds a mid-size population
// produces, so admits and releases move the class boundaries: the
// high-ratio types sit in H_2+ when the population is large (threshold
// r/Σφ small) and migrate into earlier classes as releases shrink Σφ.
// Exact duplicates are common by construction, exercising the
// (ratio, index) tie-break of the ordering comparator.
func churnPalette() []Session {
	return []Session{
		{Name: "bulk", Phi: 1.0, Arrival: ebb.Process{Rho: 0.8, Lambda: 1.0, Alpha: 1.4}},
		{Name: "heavy", Phi: 1.0, Arrival: ebb.Process{Rho: 1.2, Lambda: 0.7, Alpha: 1.1}},
		{Name: "tight", Phi: 0.25, Arrival: ebb.Process{Rho: 1.0, Lambda: 1.3, Alpha: 2.0}},
		{Name: "spiky", Phi: 0.12, Arrival: ebb.Process{Rho: 0.6, Lambda: 0.9, Alpha: 0.8}},
	}
}

// churnSession draws a palette type, sometimes jittered so not every
// ratio collides.
func churnSession(rng *source.RNG) Session {
	s := churnPalette()[rng.Intn(4)]
	if rng.Float64() < 0.3 {
		s.Arrival.Rho *= 0.9 + 0.2*rng.Float64()
		s.Phi *= 0.95 + 0.1*rng.Float64()
	}
	return s
}

// compareStructure pins the delta analysis's ordering, rates, partition
// and session slice to a fresh AnalyzeServer result, element for
// element and bit for bit.
func compareStructure(t *testing.T, tag string, got, want *Analysis) {
	t.Helper()
	if len(got.Server.Sessions) != len(want.Server.Sessions) {
		t.Fatalf("%s: %d sessions vs fresh %d", tag, len(got.Server.Sessions), len(want.Server.Sessions))
	}
	for i := range got.Server.Sessions {
		g, w := got.Server.Sessions[i], want.Server.Sessions[i]
		if g.Name != w.Name || !sameBits(g.Phi, w.Phi) || g.Arrival != w.Arrival {
			t.Fatalf("%s: session %d = %+v, fresh %+v", tag, i, g, w)
		}
	}
	for i := range got.Rates {
		if !sameBits(got.Rates[i], want.Rates[i]) {
			t.Fatalf("%s: rate[%d] = %v (%x), fresh %v (%x)", tag, i,
				got.Rates[i], math.Float64bits(got.Rates[i]),
				want.Rates[i], math.Float64bits(want.Rates[i]))
		}
	}
	for i := range got.Ordering {
		if got.Ordering[i] != want.Ordering[i] {
			t.Fatalf("%s: ordering[%d] = %d, fresh %d (delta %v vs fresh %v)",
				tag, i, got.Ordering[i], want.Ordering[i], got.Ordering, want.Ordering)
		}
	}
	if len(got.Partition.Classes) != len(want.Partition.Classes) {
		t.Fatalf("%s: %d classes, fresh %d", tag, len(got.Partition.Classes), len(want.Partition.Classes))
	}
	for i := range got.Partition.ClassOf {
		if got.Partition.ClassOf[i] != want.Partition.ClassOf[i] {
			t.Fatalf("%s: ClassOf[%d] = %d, fresh %d", tag, i,
				got.Partition.ClassOf[i], want.Partition.ClassOf[i])
		}
	}
	for c := range got.Partition.Classes {
		gc, wc := got.Partition.Classes[c], want.Partition.Classes[c]
		if len(gc) != len(wc) {
			t.Fatalf("%s: class %d has %d members, fresh %d", tag, c, len(gc), len(wc))
		}
		for j := range gc {
			if gc[j] != wc[j] {
				t.Fatalf("%s: class %d member %d = %d, fresh %d", tag, c, j, gc[j], wc[j])
			}
		}
	}
}

// compareBounds pins session i's lazily constructed delta bounds to the
// fresh eager ones: scalar fields and prefactor evaluations bit for
// bit, plus the evaluated tails.
func compareBounds(t *testing.T, tag string, got, want *Analysis, i int) {
	t.Helper()
	pairs := [2][2]*SessionBounds{
		{got.PartitionBound(i), want.Bounds[i]},
		{got.OrderingBound(i), want.OrderingBounds[i]},
	}
	for r, pair := range pairs {
		route := [...]string{"partition", "ordering"}[r]
		db, fb := pair[0], pair[1]
		if db == nil || fb == nil {
			t.Fatalf("%s: session %d %s bound nil (delta %v, fresh %v)", tag, i, route, db == nil, fb == nil)
		}
		if db.Index != fb.Index || db.Name != fb.Name || db.Theorem != fb.Theorem {
			t.Fatalf("%s: session %d %s identity %q/%d/%q, fresh %q/%d/%q",
				tag, i, route, db.Name, db.Index, db.Theorem, fb.Name, fb.Index, fb.Theorem)
		}
		if !sameBits(db.G, fb.G) || !sameBits(db.Rho, fb.Rho) || !sameBits(db.ThetaMax, fb.ThetaMax) {
			t.Fatalf("%s: session %d %s scalars G=%v/%v Rho=%v/%v θmax=%v/%v",
				tag, i, route, db.G, fb.G, db.Rho, fb.Rho, db.ThetaMax, fb.ThetaMax)
		}
		if len(db.Fixed) != len(fb.Fixed) {
			t.Fatalf("%s: session %d %s: %d fixed tails, fresh %d", tag, i, route, len(db.Fixed), len(fb.Fixed))
		}
		for k := range db.Fixed {
			if db.Fixed[k] != fb.Fixed[k] {
				t.Fatalf("%s: session %d %s fixed[%d] = %+v, fresh %+v", tag, i, route, k, db.Fixed[k], fb.Fixed[k])
			}
		}
		for _, theta := range thetaProbe(db.ThetaMax) {
			a, b := db.Prefactor(theta), fb.Prefactor(theta)
			if !sameBits(a, b) {
				t.Fatalf("%s: session %d %s prefactor(%v) = %v (%x), fresh %v (%x)",
					tag, i, route, theta, a, math.Float64bits(a), b, math.Float64bits(b))
			}
		}
	}
	for _, q := range []float64{0.5, 4, 32} {
		if a, b := got.BestBacklogTailValue(i, q), want.BestBacklogTailValue(i, q); !sameBits(a, b) {
			t.Fatalf("%s: session %d BestBacklogTailValue(%v) = %v, fresh %v", tag, i, q, a, b)
		}
		if a, b := got.BestDelayTailValue(i, q), want.BestDelayTailValue(i, q); !sameBits(a, b) {
			t.Fatalf("%s: session %d BestDelayTailValue(%v) = %v, fresh %v", tag, i, q, a, b)
		}
	}
}

// churnStep applies one random op to the analyzer and the mirror
// population, mimicking the daemon's swap-remove discipline. It returns
// the analysis if the op was applied (nil if rejected or emptied).
func churnStep(rng *source.RNG, d *DeltaAnalyzer, mirror *[]Session, nMin, nMax int) (*Analysis, error) {
	n := len(*mirror)
	admit := n < nMin || (n < nMax && rng.Float64() < 0.5)
	if admit {
		s := churnSession(rng)
		an, err := d.Admit(s)
		if err != nil {
			return nil, err
		}
		*mirror = append(*mirror, s)
		return an, nil
	}
	pos := rng.Intn(n)
	an, err := d.Release(pos)
	if err != nil {
		return nil, err
	}
	m := *mirror
	last := len(m) - 1
	m[pos] = m[last]
	*mirror = m[:last]
	return an, nil
}

// TestDeltaAnalyzerMatchesFresh churns a small population and pins every
// epoch the DeltaAnalyzer produces — structure and a full sweep of the
// lazily constructed bounds — to a fresh AnalyzeServer, bit for bit,
// under both theorem families.
func TestDeltaAnalyzerMatchesFresh(t *testing.T) {
	for _, opts := range []Options{
		{Independent: true, Xi: XiOptimal},
		{Independent: false, Xi: XiOne},
	} {
		rate := 40.0
		d, err := NewDeltaAnalyzer(Server{Rate: rate}, opts)
		if err != nil {
			t.Fatal(err)
		}
		rng := source.NewRNG(11)
		var mirror []Session
		steps := 400
		if raceEnabled {
			steps = 160
		}
		if testing.Short() {
			steps = 120
		}
		applied := 0
		for op := 0; op < steps; op++ {
			an, err := churnStep(rng, d, &mirror, 2, 30)
			if err != nil {
				// Rejected op: the analyzer must be unchanged, which the
				// next successful op's comparison verifies.
				continue
			}
			if an == nil {
				continue
			}
			fresh, err := AnalyzeServer(Server{Rate: rate, Sessions: mirror}, opts)
			if err != nil {
				t.Fatalf("op %d: fresh AnalyzeServer: %v", op, err)
			}
			compareStructure(t, "op", an, fresh)
			// A full bound sweep costs two routes, prefactor probes, and
			// six optimized tail evaluations per session, so it runs on a
			// cadence; the rotating sample in between still pins every
			// index many times across the run.
			if applied%16 == 0 {
				for i := range mirror {
					compareBounds(t, "op", an, fresh, i)
				}
			} else {
				for k := 0; k < 2; k++ {
					compareBounds(t, "op", an, fresh, (applied*2+k)%len(mirror))
				}
			}
			applied++
		}
		if d.Stats().OrderRepairs == 0 {
			t.Fatal("churn never took the ordering repair path")
		}
	}
}

// TestDeltaChurnLong is the long seeded differential: 100k+ randomized
// admits and releases with the population swinging across the class
// boundary thresholds, every op structurally compared to a fresh
// analysis and the bound families spot-checked on a sampling cadence.
func TestDeltaChurnLong(t *testing.T) {
	ops := 100_000
	if raceEnabled {
		// The race detector multiplies the per-op structural compare by
		// ~10x; the full 100k-op sweep runs in the default build, the
		// race build keeps the same churn shape at a length that still
		// crosses class boundaries hundreds of times.
		ops = 25_000
	}
	if testing.Short() {
		ops = 10_000
	}
	opts := Options{Independent: true, Xi: XiOptimal}
	rate := 90.0
	d, err := NewDeltaAnalyzer(Server{Rate: rate}, opts)
	if err != nil {
		t.Fatal(err)
	}
	rng := source.NewRNG(20260808)
	var mirror []Session
	maxL := 0
	classFlips := 0
	prevClass := map[string]int{}
	rejected := 0
	for op := 0; op < ops; op++ {
		an, err := churnStep(rng, d, &mirror, 8, 96)
		if err != nil {
			rejected++
			continue
		}
		if an == nil {
			continue
		}
		if L := an.Partition.L(); L > maxL {
			maxL = L
		}
		// Track a fixed palette member's class to witness boundary
		// crossings (shed/degrade transitions downstream).
		for i, s := range an.Server.Sessions {
			if s.Name == "tight" {
				if c, seen := prevClass["tight"]; seen && c != an.Partition.ClassOf[i] {
					classFlips++
				}
				prevClass["tight"] = an.Partition.ClassOf[i]
				break
			}
		}
		fresh, err := AnalyzeServer(Server{Rate: rate, Sessions: mirror}, opts)
		if err != nil {
			t.Fatalf("op %d: fresh AnalyzeServer: %v", op, err)
		}
		compareStructure(t, "op", an, fresh)
		if op%497 == 0 {
			for k := 0; k < 3 && k < len(mirror); k++ {
				compareBounds(t, "op", an, fresh, rng.Intn(len(mirror)))
			}
		}
	}
	if maxL < 2 {
		t.Fatalf("churn never produced a multi-class partition (max L = %d)", maxL)
	}
	if classFlips == 0 {
		t.Fatal("churn never moved a session across a class boundary")
	}
	st := d.Stats()
	if st.OrderRepairs == 0 {
		t.Fatal("long churn never took the ordering repair path")
	}
	t.Logf("ops=%d rejected=%d maxL=%d classFlips=%d stats=%+v", ops, rejected, maxL, classFlips, st)
}

// TestDeltaAnalyzerEdges covers the empty analyzer, rejection of invalid
// sessions, draining to empty, and out-of-range releases.
func TestDeltaAnalyzerEdges(t *testing.T) {
	opts := Options{Independent: true, Xi: XiOptimal}
	d, err := NewDeltaAnalyzer(Server{Rate: 10}, opts)
	if err != nil {
		t.Fatal(err)
	}
	if d.Analysis() != nil || d.Len() != 0 {
		t.Fatal("empty analyzer should have nil analysis")
	}
	if _, err := d.Release(0); err == nil {
		t.Fatal("release on empty analyzer must fail")
	}
	if _, err := d.Admit(Session{Name: "bad", Phi: 0, Arrival: ebb.Process{Rho: 1, Lambda: 1, Alpha: 1}}); err == nil {
		t.Fatal("phi = 0 must be rejected")
	}
	if _, err := d.Admit(Session{Name: "bad", Phi: 1, Arrival: ebb.Process{Rho: -1, Lambda: 1, Alpha: 1}}); err == nil {
		t.Fatal("invalid arrival must be rejected")
	}
	s := churnPalette()[0]
	if _, err := d.Admit(s); err != nil {
		t.Fatalf("first admit: %v", err)
	}
	if d.Len() != 1 || d.Analysis() == nil {
		t.Fatal("admit did not populate the analyzer")
	}
	// Overload: ρ = 11 > slack.
	if _, err := d.Admit(Session{Name: "huge", Phi: 1, Arrival: ebb.Process{Rho: 11, Lambda: 1, Alpha: 1}}); err == nil {
		t.Fatal("overloading admit must be rejected")
	}
	if d.Len() != 1 {
		t.Fatalf("rejected admit changed the population to %d", d.Len())
	}
	an, err := d.Release(0)
	if err != nil || an != nil {
		t.Fatalf("draining release: an=%v err=%v", an, err)
	}
	if d.Len() != 0 || d.Analysis() != nil {
		t.Fatal("analyzer not empty after draining release")
	}
	if _, err := NewDeltaAnalyzer(Server{Rate: 0}, opts); err == nil {
		t.Fatal("rate 0 must be rejected")
	}
}

// FuzzDeltaAnalyzer interleaves admits and releases decoded from the
// fuzz input and asserts bit-identity against fresh AnalyzeServer after
// every op.
func FuzzDeltaAnalyzer(f *testing.F) {
	f.Add([]byte{0x01, 0x42, 0x83, 0x10, 0xff, 0x07, 0x20, 0x91})
	f.Add([]byte{0x00, 0x00, 0x00, 0x80, 0x80, 0x80, 0x10, 0x10, 0x10, 0x10})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 64 {
			data = data[:64]
		}
		opts := Options{Independent: true, Xi: XiOptimal}
		rate := 30.0
		d, err := NewDeltaAnalyzer(Server{Rate: rate}, opts)
		if err != nil {
			t.Fatal(err)
		}
		var mirror []Session
		palette := churnPalette()
		for _, b := range data {
			var an *Analysis
			if b&0x80 == 0 || len(mirror) == 0 {
				s := palette[int(b>>5)&0x3]
				// Derive a deterministic jitter from the byte so the fuzzer
				// can explore near-collisions of the sort ratios.
				s.Arrival.Rho *= 1 + float64(b&0x1f)/512
				an, err = d.Admit(s)
				if err != nil {
					continue
				}
				mirror = append(mirror, s)
			} else {
				pos := int(b&0x7f) % len(mirror)
				an, err = d.Release(pos)
				if err != nil {
					t.Fatalf("release %d/%d: %v", pos, len(mirror), err)
				}
				last := len(mirror) - 1
				mirror[pos] = mirror[last]
				mirror = mirror[:last]
			}
			if an == nil {
				continue
			}
			fresh, err := AnalyzeServer(Server{Rate: rate, Sessions: mirror}, opts)
			if err != nil {
				t.Fatalf("fresh AnalyzeServer: %v", err)
			}
			compareStructure(t, "fuzz", an, fresh)
			for i := range mirror {
				compareBounds(t, "fuzz", an, fresh, i)
			}
		}
	})
}
