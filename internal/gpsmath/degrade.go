package gpsmath

import (
	"fmt"
	"math"
	"sort"
)

// ErrInvalidInput flags arguments outside the domain of the analysis
// (non-positive or non-finite rates, NaN parameters). Every validation
// error in this package wraps it, so callers can test with errors.Is
// without matching message text.
var ErrInvalidInput = fmt.Errorf("gpsmath: invalid input")

// SessionState classifies a session's standing once the server rate has
// degraded below its nominal value.
type SessionState int

const (
	// Guaranteed: the session sits in class H_1 of the feasible
	// partition at the degraded rate and its guaranteed rate still
	// covers its requirement — Theorem 10 keeps the original bound.
	Guaranteed SessionState = iota
	// Degraded: the session remains stable (it survives the shed) but
	// either its guaranteed rate fell below the requirement or it
	// dropped out of H_1, so only weaker aggregate bounds apply.
	Degraded
	// Infeasible: the session had to be shed — keeping it would push
	// Σρ to or past the degraded rate and void every bound.
	Infeasible
)

// String implements fmt.Stringer.
func (s SessionState) String() string {
	switch s {
	case Guaranteed:
		return "guaranteed"
	case Degraded:
		return "degraded"
	case Infeasible:
		return "infeasible"
	default:
		return fmt.Sprintf("SessionState(%d)", int(s))
	}
}

// DegradeReport is the outcome of re-evaluating a session set against a
// degraded server rate.
type DegradeReport struct {
	Rate   float64        // the effective rate evaluated against
	States []SessionState // per session, in declaration order
	GEff   []float64      // effective guaranteed rate among survivors (0 when shed)
	Shed   []int          // indices shed, in shed order
}

// Counts returns how many sessions landed in each state.
func (r DegradeReport) Counts() (guaranteed, degraded, infeasible int) {
	for _, st := range r.States {
		switch st {
		case Guaranteed:
			guaranteed++
		case Degraded:
			degraded++
		default:
			infeasible++
		}
	}
	return
}

// ClassifyUnderRate re-runs the paper's feasibility machinery against a
// degraded server rate and classifies every session. required[i] is the
// service rate session i was promised (the rate its delay target was
// sized against); rate is the effective capacity.
//
// The procedure, in the order the theory forces it:
//
//  1. Stability first (eq. 2): while Σρ of the surviving set reaches
//     rate, shed the survivor with the largest ρ_i/φ_i — the session
//     whose load is largest relative to its claim on the server, i.e.
//     the last one any feasible ordering (eq. 5) would place and the
//     last to enter the feasible partition (eqs. 37–39). Ties shed the
//     higher index, so the order is deterministic. Shed sessions are
//     Infeasible.
//  2. Partition the survivors at the degraded rate (eqs. 37–39).
//     Survivors in H_1 whose guaranteed rate g_i = φ_i/Σφ·rate (the
//     share among survivors only — shed sessions release their weight)
//     still reaches required[i] keep their Theorem 10 bound and are
//     Guaranteed; all other survivors are Degraded.
//
// A rate of zero (total outage) is a legal query: every session is
// Infeasible. NaN or infinite inputs are rejected with ErrInvalidInput.
func (s Server) ClassifyUnderRate(required []float64, rate float64) (DegradeReport, error) {
	n := len(s.Sessions)
	if len(required) != n {
		return DegradeReport{}, fmt.Errorf("%w: %d required rates for %d sessions", ErrInvalidInput, len(required), n)
	}
	if math.IsNaN(rate) || math.IsInf(rate, 0) || rate < 0 {
		return DegradeReport{}, fmt.Errorf("%w: effective rate = %v", ErrInvalidInput, rate)
	}
	for i, g := range required {
		if math.IsNaN(g) || math.IsInf(g, 0) || g < 0 {
			return DegradeReport{}, fmt.Errorf("%w: required[%d] = %v", ErrInvalidInput, i, g)
		}
	}
	for i, sess := range s.Sessions {
		if !(sess.Phi > 0) || math.IsInf(sess.Phi, 1) || math.IsNaN(sess.Phi) {
			return DegradeReport{}, fmt.Errorf("%w: session %d phi = %v", ErrInvalidInput, i, sess.Phi)
		}
		if rho := sess.Arrival.Rho; !(rho > 0) || math.IsInf(rho, 1) || math.IsNaN(rho) {
			return DegradeReport{}, fmt.Errorf("%w: session %d rho = %v", ErrInvalidInput, i, rho)
		}
	}

	rep := DegradeReport{
		Rate:   rate,
		States: make([]SessionState, n),
		GEff:   make([]float64, n),
	}
	alive := make([]bool, n)
	sumRho := 0.0
	for i := range alive {
		alive[i] = true
		sumRho += s.Sessions[i].Arrival.Rho
	}

	// Shed order: decreasing ρ/φ, ties broken toward the higher index.
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		ra := s.Sessions[order[a]].Arrival.Rho / s.Sessions[order[a]].Phi
		rb := s.Sessions[order[b]].Arrival.Rho / s.Sessions[order[b]].Phi
		if ra != rb {
			return ra > rb
		}
		return order[a] > order[b]
	})
	remaining := n
	for _, i := range order {
		if remaining == 0 || sumRho < rate {
			break
		}
		alive[i] = false
		sumRho -= s.Sessions[i].Arrival.Rho
		rep.States[i] = Infeasible
		rep.Shed = append(rep.Shed, i)
		remaining--
	}
	if remaining == 0 {
		return rep, nil
	}

	// Survivors share the degraded rate; partition them (eqs. 37–39).
	surv := Server{Rate: rate}
	back := make([]int, 0, remaining)
	phiSum := 0.0
	for i, ok := range alive {
		if !ok {
			continue
		}
		surv.Sessions = append(surv.Sessions, s.Sessions[i])
		back = append(back, i)
		phiSum += s.Sessions[i].Phi
	}
	part, err := surv.FeasiblePartition()
	if err != nil {
		// Cannot happen once Σρ < rate, but surface it rather than
		// misreport a session as safe.
		return DegradeReport{}, err
	}
	for k, i := range back {
		g := s.Sessions[i].Phi / phiSum * rate
		rep.GEff[i] = g
		if part.ClassOf[k] == 0 && g >= required[i]*(1-1e-12) {
			rep.States[i] = Guaranteed
		} else {
			rep.States[i] = Degraded
		}
	}
	return rep, nil
}
