package gpsmath

import (
	"fmt"
	"math"

	"repro/internal/ebb"
)

// XiMode selects the discretization parameter ξ used inside the Lemma 6
// MGF bounds that make up every theorem prefactor.
type XiMode int

const (
	// XiOne uses ξ = 1, matching the paper's stated formulas (eq. 26
	// takes ξ = 1 "for simplicity of notation").
	XiOne XiMode = iota
	// XiOptimal uses the minimizing ξ0 = ln(r/ρ)/(ε·θ) per term
	// (Remark 1 after Lemma 6), which is never worse than ξ = 1.
	XiOptimal
)

// String implements fmt.Stringer.
func (m XiMode) String() string {
	if m == XiOptimal {
		return "xi-optimal"
	}
	return "xi-1"
}

// deltaMGF evaluates the Lemma 6 bound on E e^{u·δ} for a queue fed by a
// flow with overhead function σ̂ (log-MGF excess), long-term rate rho, and
// dedicated service rate rho+eps. sigmaHat must return +Inf outside its
// admissible range, which propagates naturally.
func deltaMGF(sigmaHat func(float64) float64, rho, eps, u float64, mode XiMode) float64 {
	if u <= 0 || eps <= 0 {
		return math.Inf(1)
	}
	sh := sigmaHat(u)
	if math.IsInf(sh, 1) {
		return math.Inf(1)
	}
	xi := 1.0
	if mode == XiOptimal {
		xi = math.Log((rho+eps)/rho) / (eps * u)
	}
	return math.Exp(u*(sh+rho*xi)) / (-math.Expm1(-u * eps * xi))
}

// singleSigmaHat adapts one E.B.B. process to the σ̂ shape deltaMGF wants.
func singleSigmaHat(p ebb.Process) func(float64) float64 {
	return p.SigmaHat
}

// Theorem7 builds the bound family of paper Theorem 7 for the session at
// position pos of the feasible ordering ord (0-based), assuming the
// session arrival processes are mutually independent:
//
//	Λ_i(θ) = E e^{θδ_i} bound · Π_{j before i} E e^{ψ_i θ δ_j} bound,
//
// which with ξ = 1 reproduces eq. (26) exactly. rates are the decomposed
// rates r_j = ρ_j + ε_j aligned with the server's session indices; ord
// must be a feasible ordering with respect to them.
func (s Server) Theorem7(ord []int, rates []float64, pos int, mode XiMode) (*SessionBounds, error) {
	if pos < 0 || pos >= len(ord) {
		return nil, fmt.Errorf("gpsmath: position %d outside ordering of length %d", pos, len(ord))
	}
	return s.newOrderingMemo(ord, rates).theorem7(pos, mode)
}

// Theorem8 builds the dependent-arrivals bound family of paper Theorem 8:
// Hölder's inequality replaces the independence factorization, with
// conjugate exponents {p_j}. Passing nil for ps selects the
// decay-rate-maximizing exponents (α_j/p_j constant, remark after
// Theorem 8). The implementation keeps the exact Hölder powers
// (M_j)^{1/p_j}, which is never looser than the paper's eq. (36) (which
// drops the 1/p_j power on the denominators); tests verify the relation.
func (s Server) Theorem8(ord []int, rates []float64, pos int, ps []float64, mode XiMode) (*SessionBounds, error) {
	if pos < 0 || pos >= len(ord) {
		return nil, fmt.Errorf("gpsmath: position %d outside ordering of length %d", pos, len(ord))
	}
	return s.newOrderingMemo(ord, rates).theorem8(pos, ps, mode)
}

// Theorem8PaperPrefactor evaluates the literal eq. (36) prefactor (ξ = 1,
// no 1/p_j powers on the denominators). It exists so tests and ablation
// benchmarks can compare the exact-Hölder implementation against the
// paper's stated formula.
func (s Server) Theorem8PaperPrefactor(ord []int, rates []float64, pos int, ps []float64, theta float64) float64 {
	i := ord[pos]
	sess := s.Sessions[i]
	tailPhi := 0.0
	for _, j := range ord[pos:] {
		tailPhi += s.Sessions[j].Phi
	}
	psi := sess.Phi / tailPhi
	k := pos + 1
	pi := ps[k-1]

	num := sess.Arrival.SigmaHat(pi*theta) + sess.Arrival.Rho
	den := -math.Expm1(-pi * theta * (rates[i] - sess.Arrival.Rho))
	for idx, j := range ord[:pos] {
		a := s.Sessions[j].Arrival
		num += psi * (a.SigmaHat(ps[idx]*psi*theta) + a.Rho)
		den *= -math.Expm1(-ps[idx] * psi * theta * (rates[j] - a.Rho))
	}
	if den <= 0 || math.IsInf(num, 1) {
		return math.Inf(1)
	}
	return math.Exp(theta*num) / den
}
