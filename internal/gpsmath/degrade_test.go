package gpsmath

import (
	"errors"
	"math"
	"testing"

	"repro/internal/ebb"
)

func degradeServer() (Server, []float64) {
	// RPPS over the paper's Set 1 rates at unit capacity: Σρ = 0.9,
	// so every session is H_1 and guaranteed at full rate.
	rhos := []float64{0.2, 0.25, 0.2, 0.25}
	procs := make([]ebb.Process, len(rhos))
	for i, r := range rhos {
		procs[i] = ebb.Process{Rho: r, Lambda: 1, Alpha: 1.5}
	}
	srv := NewRPPSServer(1, procs, nil)
	// Require exactly the nominal guaranteed share g_i = ρ_i/Σρ · r.
	req := make([]float64, len(rhos))
	for i, r := range rhos {
		req[i] = r / 0.9
	}
	return srv, req
}

func TestClassifyFullRateAllGuaranteed(t *testing.T) {
	srv, req := degradeServer()
	rep, err := srv.ClassifyUnderRate(req, 1)
	if err != nil {
		t.Fatal(err)
	}
	g, d, inf := rep.Counts()
	if g != 4 || d != 0 || inf != 0 {
		t.Fatalf("at full rate: %d/%d/%d guaranteed/degraded/infeasible, states %v", g, d, inf, rep.States)
	}
	for i, geff := range rep.GEff {
		if math.Abs(geff-req[i]) > 1e-12 {
			t.Errorf("session %d: g_eff = %v, want %v", i, geff, req[i])
		}
	}
}

func TestClassifyModerateLossDegrades(t *testing.T) {
	srv, req := degradeServer()
	// 0.95 capacity still clears Σρ = 0.9 — nobody shed — but every
	// g_eff scales by 0.95, below the nominal requirement.
	rep, err := srv.ClassifyUnderRate(req, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	g, d, inf := rep.Counts()
	if inf != 0 {
		t.Fatalf("shed %v at rate 0.95 with sum rho 0.9", rep.Shed)
	}
	if g != 0 || d != 4 {
		t.Errorf("want all degraded, got %d guaranteed / %d degraded (%v)", g, d, rep.States)
	}
}

func TestClassifySheddingOrder(t *testing.T) {
	srv, req := degradeServer()
	// Rate 0.7 < Σρ = 0.9: must shed until the survivors' load clears
	// 0.7. All ρ/φ are equal under RPPS, so ties shed the highest
	// index first: session 3 (ρ 0.25) leaves Σρ = 0.65 < 0.7. One shed.
	rep, err := srv.ClassifyUnderRate(req, 0.7)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Shed) != 1 || rep.Shed[0] != 3 {
		t.Fatalf("shed = %v, want [3]", rep.Shed)
	}
	if rep.States[3] != Infeasible {
		t.Errorf("session 3 state = %v", rep.States[3])
	}
	if rep.GEff[3] != 0 {
		t.Errorf("shed session has g_eff = %v", rep.GEff[3])
	}
	// Survivors: none shed beyond 3, all stable.
	for i := 0; i < 3; i++ {
		if rep.States[i] == Infeasible {
			t.Errorf("session %d wrongly shed", i)
		}
	}
}

func TestClassifyHeterogeneousShedsWorstRatioFirst(t *testing.T) {
	procs := []ebb.Process{
		{Rho: 0.3, Lambda: 1, Alpha: 1}, // φ 0.5 → ρ/φ = 0.6
		{Rho: 0.4, Lambda: 1, Alpha: 1}, // φ 0.25 → ρ/φ = 1.6 (worst)
		{Rho: 0.2, Lambda: 1, Alpha: 1}, // φ 0.25 → ρ/φ = 0.8
	}
	srv := Server{Rate: 1, Sessions: []Session{
		{Name: "a", Phi: 0.5, Arrival: procs[0]},
		{Name: "b", Phi: 0.25, Arrival: procs[1]},
		{Name: "c", Phi: 0.25, Arrival: procs[2]},
	}}
	rep, err := srv.ClassifyUnderRate([]float64{0.3, 0.4, 0.2}, 0.6)
	if err != nil {
		t.Fatal(err)
	}
	// Σρ = 0.9 >= 0.6: shed b (ρ/φ 1.6) → Σρ 0.5 < 0.6. Done.
	if len(rep.Shed) != 1 || rep.Shed[0] != 1 {
		t.Fatalf("shed = %v, want [1]", rep.Shed)
	}
	// Survivors a, c share rate 0.6 with φ 0.5/0.25: g = 0.4, 0.2.
	if math.Abs(rep.GEff[0]-0.4) > 1e-12 || math.Abs(rep.GEff[2]-0.2) > 1e-12 {
		t.Errorf("g_eff = %v", rep.GEff)
	}
	if rep.States[0] != Guaranteed {
		t.Errorf("a: %v (g 0.4 >= req 0.3, in H_1)", rep.States[0])
	}
	// c sits exactly at g = ρ: zero slack fails the strict H_1 test of
	// eq. (37), so its bound no longer converges — Degraded, not
	// Guaranteed, even though g meets the nominal requirement.
	if rep.States[2] != Degraded {
		t.Errorf("c: %v, want degraded at zero slack", rep.States[2])
	}
}

func TestClassifyTotalOutage(t *testing.T) {
	srv, req := degradeServer()
	rep, err := srv.ClassifyUnderRate(req, 0)
	if err != nil {
		t.Fatal(err)
	}
	g, d, inf := rep.Counts()
	if g != 0 || d != 0 || inf != 4 {
		t.Errorf("total outage: %d/%d/%d, want all infeasible", g, d, inf)
	}
	if len(rep.Shed) != 4 {
		t.Errorf("shed %d sessions, want 4", len(rep.Shed))
	}
}

func TestClassifyMonotoneInRate(t *testing.T) {
	srv, req := degradeServer()
	prevInf := -1
	for _, rate := range []float64{1, 0.95, 0.8, 0.6, 0.4, 0.2, 0} {
		rep, err := srv.ClassifyUnderRate(req, rate)
		if err != nil {
			t.Fatal(err)
		}
		_, _, inf := rep.Counts()
		if prevInf >= 0 && inf < prevInf {
			t.Errorf("rate %v: infeasible count %d dropped below %d at a higher rate", rate, inf, prevInf)
		}
		prevInf = inf
		// Survivors' load must always clear the degraded rate.
		sum := 0.0
		for i, st := range rep.States {
			if st != Infeasible {
				sum += srv.Sessions[i].Arrival.Rho
			}
		}
		if rate > 0 && sum >= rate {
			t.Errorf("rate %v: survivor load %v not below rate", rate, sum)
		}
	}
}

func TestClassifyValidation(t *testing.T) {
	srv, req := degradeServer()
	for _, rate := range []float64{math.NaN(), math.Inf(1), -0.1} {
		if _, err := srv.ClassifyUnderRate(req, rate); !errors.Is(err, ErrInvalidInput) {
			t.Errorf("rate %v: err = %v, want ErrInvalidInput", rate, err)
		}
	}
	if _, err := srv.ClassifyUnderRate(req[:2], 1); !errors.Is(err, ErrInvalidInput) {
		t.Error("length mismatch accepted")
	}
	bad := append([]float64(nil), req...)
	bad[1] = math.NaN()
	if _, err := srv.ClassifyUnderRate(bad, 1); !errors.Is(err, ErrInvalidInput) {
		t.Error("NaN requirement accepted")
	}
}

func TestSessionStateString(t *testing.T) {
	for st, want := range map[SessionState]string{
		Guaranteed: "guaranteed", Degraded: "degraded", Infeasible: "infeasible",
	} {
		if st.String() != want {
			t.Errorf("%d.String() = %q", int(st), st)
		}
	}
}
