package gpsmath

import (
	"fmt"
	"math"

	"repro/internal/ebb"
	"repro/internal/numeric"
)

// SessionBounds packages every statistical bound the paper yields for one
// session at one GPS server. Bounds come in two shapes:
//
//   - a θ-family: for each admissible Chernoff parameter θ ∈ (0, ThetaMax),
//     Pr{Q_i(t) >= q} <= Λ(θ)·e^{-θq},
//     Pr{D_i(t) >= d} <= Λ(θ)·e^{-θ·g_i·d},
//     and the departure process is a (ρ_i, Λ(θ), θ)-E.B.B. process
//     (Theorems 7, 8, 11, 12); and
//   - fixed tails with a pinned decay rate (Theorem 10 for sessions in
//     H_1, whose backlog tail decays at the full source rate α_i).
//
// The evaluation methods take the best bound available at each abscissa.
type SessionBounds struct {
	Name    string
	Index   int     // index of the session in the server's Sessions slice
	G       float64 // guaranteed backlog clearing rate g_i
	Rho     float64 // long-term arrival rate ρ_i
	Theorem string  // provenance, e.g. "thm7", "thm10+thm11"

	// ThetaMax is the exclusive supremum of admissible θ for Prefactor.
	ThetaMax float64
	// Prefactor evaluates Λ(θ); it returns +Inf outside (0, ThetaMax).
	// Nil when only fixed tails are available.
	Prefactor func(theta float64) float64
	// Fixed holds additional single-exponential backlog tails valid for
	// this session (evaluated at q; the delay version divides by g).
	Fixed []numeric.ExpTail
}

// thetaGrid is the scan resolution used when optimizing over θ.
const thetaGrid = 192

// PrefactorAt evaluates Λ(θ), or +Inf if no θ-family is available.
func (b *SessionBounds) PrefactorAt(theta float64) float64 {
	if b.Prefactor == nil {
		return math.Inf(1)
	}
	return b.Prefactor(theta)
}

// BacklogTailAt returns the θ-family backlog bound at a specific θ as an
// exponential tail.
func (b *SessionBounds) BacklogTailAt(theta float64) numeric.ExpTail {
	return numeric.ExpTail{Prefactor: b.PrefactorAt(theta), Rate: theta}
}

// familyBest minimizes Λ(θ)e^{-θq} over admissible θ, returning the
// achieving tail. The second result is false when no family is available.
func (b *SessionBounds) familyBest(q float64) (numeric.ExpTail, bool) {
	if b.Prefactor == nil || !(b.ThetaMax > 0) {
		return numeric.ExpTail{}, false
	}
	obj := func(th float64) float64 {
		lam := b.Prefactor(th)
		if math.IsInf(lam, 1) {
			return math.Inf(1)
		}
		// Work in log domain: small q with huge Λ must not underflow.
		return math.Log(lam) - th*q
	}
	th, _ := numeric.MinimizeScan(obj, 0, b.ThetaMax, thetaGrid)
	return numeric.ExpTail{Prefactor: b.Prefactor(th), Rate: th}, true
}

// BestBacklogTail returns the tail (fixed or θ-optimized) with the lowest
// value at backlog level q.
func (b *SessionBounds) BestBacklogTail(q float64) numeric.ExpTail {
	best := numeric.ExpTail{Prefactor: math.Inf(1), Rate: 1e-300}
	bestV := math.Inf(1)
	for _, f := range b.Fixed {
		if v := f.EvalRaw(q); v < bestV {
			best, bestV = f, v
		}
	}
	if t, ok := b.familyBest(q); ok {
		if v := t.EvalRaw(q); v < bestV {
			best = t
		}
	}
	return best
}

// BacklogTail evaluates the best available bound on Pr{Q_i(t) >= q},
// clipped to [0, 1]. A NaN level gets the trivial bound 1 rather than
// letting NaN propagate into downstream admission decisions.
func (b *SessionBounds) BacklogTail(q float64) float64 {
	if math.IsNaN(q) {
		return 1
	}
	return b.BestBacklogTail(q).Eval(q)
}

// DelayTail evaluates the best available bound on Pr{D_i(t) >= d}. Since
// every backlog bound converts to a delay bound through the guaranteed
// clearing rate (D <= Q/g on a busy period), this is BacklogTail(g_i·d).
func (b *SessionBounds) DelayTail(d float64) float64 {
	return b.BacklogTail(b.G * d)
}

// BacklogQuantile returns the smallest backlog level q whose bound drops
// to eps, optimizing θ (and the fixed tails) per level.
func (b *SessionBounds) BacklogQuantile(eps float64) float64 {
	// The negated form also sends NaN to +Inf (no finite level is
	// known to reach an ill-defined probability).
	if !(eps > 0) {
		return math.Inf(1)
	}
	best := math.Inf(1)
	for _, f := range b.Fixed {
		if x := f.Invert(eps); x < best {
			best = x
		}
	}
	if b.Prefactor != nil && b.ThetaMax > 0 {
		obj := func(th float64) float64 {
			lam := b.Prefactor(th)
			if math.IsInf(lam, 1) || lam <= 0 {
				if lam == 0 {
					return 0
				}
				return math.Inf(1)
			}
			x := math.Log(lam/eps) / th
			if x < 0 {
				x = 0
			}
			return x
		}
		_, q := numeric.MinimizeScan(obj, 0, b.ThetaMax, thetaGrid)
		if q < best {
			best = q
		}
	}
	return best
}

// DelayQuantile returns the smallest delay d whose bound drops to eps.
func (b *SessionBounds) DelayQuantile(eps float64) float64 {
	return b.BacklogQuantile(eps) / b.G
}

// OutputEBB returns the E.B.B. characterization of the session's
// departure process at Chernoff parameter θ (paper eqs. 25/35/53/58):
// a (ρ_i, Λ(θ), θ)-E.B.B. process.
func (b *SessionBounds) OutputEBB(theta float64) (ebb.Process, error) {
	if math.IsNaN(theta) {
		return ebb.Process{}, fmt.Errorf("%w: theta = NaN for session %s", ErrInvalidInput, b.Name)
	}
	lam := b.PrefactorAt(theta)
	if math.IsInf(lam, 1) {
		return ebb.Process{}, fmt.Errorf("gpsmath: theta = %v outside (0, %v) for session %s", theta, b.ThetaMax, b.Name)
	}
	return ebb.Process{Rho: b.Rho, Lambda: lam, Alpha: theta}, nil
}

// BestOutputEBB picks the output characterization whose Lemma-5 backlog
// prefactor at a downstream queue of rate downstreamRate is smallest —
// a pragmatic recipe for propagating characterizations through a network
// when the next hop's service rate is known. When downstreamRate <= ρ_i
// it falls back to minimizing Λ(θ) at θ = ThetaMax/2.
func (b *SessionBounds) BestOutputEBB(downstreamRate float64) (ebb.Process, error) {
	if math.IsNaN(downstreamRate) || math.IsInf(downstreamRate, -1) {
		return ebb.Process{}, fmt.Errorf("%w: downstream rate = %v for session %s", ErrInvalidInput, downstreamRate, b.Name)
	}
	if b.Prefactor == nil || !(b.ThetaMax > 0) {
		return ebb.Process{}, fmt.Errorf("gpsmath: session %s has no θ-family for output characterization", b.Name)
	}
	obj := func(th float64) float64 {
		lam := b.Prefactor(th)
		if math.IsInf(lam, 1) {
			return math.Inf(1)
		}
		out := ebb.Process{Rho: b.Rho, Lambda: lam, Alpha: th}
		if downstreamRate > b.Rho {
			tail, err := out.DeltaTail(downstreamRate)
			if err != nil {
				return math.Inf(1)
			}
			// Compare tails at a reference excess level: the tail value
			// at x = 1/θ-ish scale. Use log(prefactor) - rate as a scale-
			// free score (tail value at x = 1).
			return math.Log(tail.Prefactor) - tail.Rate
		}
		return math.Log(lam)
	}
	th, _ := numeric.MinimizeScan(obj, 0, b.ThetaMax, thetaGrid)
	return b.OutputEBB(th)
}
