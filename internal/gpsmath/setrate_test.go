package gpsmath

import (
	"math"
	"testing"

	"repro/internal/source"
)

// TestDeltaSetRateMatchesFresh pins the capacity-move path the sharded
// writer leans on: after SetRate, the delta analysis — structure and a
// bound sweep — must be bit-identical to a fresh AnalyzeServer over
// the same sessions at the new rate, through a churn/retune interleave
// that crosses class boundaries.
func TestDeltaSetRateMatchesFresh(t *testing.T) {
	for _, opts := range []Options{
		{Independent: true, Xi: XiOptimal},
		{Independent: false, Xi: XiOne},
	} {
		rate := 40.0
		d, err := NewDeltaAnalyzer(Server{Rate: rate}, opts)
		if err != nil {
			t.Fatal(err)
		}
		rng := source.NewRNG(1994)
		var mirror []Session
		for op := 0; op < 40; op++ {
			// A rejected admit leaves the analyzer unchanged; skip it.
			churnStep(rng, d, &mirror, 2, 12)
		}
		if len(mirror) == 0 {
			t.Fatal("churn left an empty population")
		}
		for _, next := range []float64{52.5, 37.0078125, 40, 64, 33.40625} {
			rate = next
			if err := d.SetRate(rate); err != nil {
				t.Fatalf("SetRate(%v): %v", rate, err)
			}
			fresh, err := AnalyzeServer(Server{Rate: rate, Sessions: mirror}, opts)
			if err != nil {
				t.Fatalf("fresh AnalyzeServer at rate %v: %v", rate, err)
			}
			compareStructure(t, "setrate", d.Analysis(), fresh)
			for i := range mirror {
				compareBounds(t, "setrate", d.Analysis(), fresh, i)
			}
			// Interleave churn so the next retune starts from a repaired
			// ordering, not a pristine one.
			for op := 0; op < 6; op++ {
				churnStep(rng, d, &mirror, 2, 12)
			}
			fresh, err = AnalyzeServer(Server{Rate: rate, Sessions: mirror}, opts)
			if err != nil {
				t.Fatalf("post-churn fresh AnalyzeServer at rate %v: %v", rate, err)
			}
			compareStructure(t, "setrate+churn", d.Analysis(), fresh)
		}
	}
}

// TestDeltaSetRateRejectsAndRollsBack pins the error contract: an
// invalid or infeasible rate leaves the analyzer exactly where it was.
func TestDeltaSetRateRejectsAndRollsBack(t *testing.T) {
	opts := Options{Independent: true, Xi: XiOptimal}
	rate := 40.0
	d, err := NewDeltaAnalyzer(Server{Rate: rate}, opts)
	if err != nil {
		t.Fatal(err)
	}
	rng := source.NewRNG(3)
	var mirror []Session
	for op := 0; op < 24; op++ {
		churnStep(rng, d, &mirror, 2, 10)
	}
	for _, bad := range []float64{0, -5, math.Inf(1), math.NaN()} {
		if err := d.SetRate(bad); err == nil {
			t.Errorf("SetRate(%v) accepted", bad)
		}
	}
	// A rate below the population's Σρ is structurally infeasible; the
	// refresh must fail and roll back to the old rate.
	sumRho := 0.0
	for _, s := range mirror {
		sumRho += s.Arrival.Rho
	}
	if err := d.SetRate(sumRho * 0.5); err == nil {
		t.Fatalf("SetRate(%v) under Σρ=%v accepted", sumRho*0.5, sumRho)
	}
	fresh, err := AnalyzeServer(Server{Rate: rate, Sessions: mirror}, opts)
	if err != nil {
		t.Fatal(err)
	}
	compareStructure(t, "rollback", d.Analysis(), fresh)
	// And the analyzer still works at the old rate: churn on.
	if _, err := churnStep(rng, d, &mirror, 2, 10); err != nil {
		t.Fatalf("churn after rollback: %v", err)
	}
}
