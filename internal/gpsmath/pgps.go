package gpsmath

import (
	"fmt"
	"math"

	"repro/internal/numeric"
)

// PGPSBounds converts a session's fluid-GPS bound family into bounds for
// Packet-by-packet GPS (PGPS/WFQ), the extension the paper's §2 and §7
// point to. Parekh & Gallager's packetization results give, for packets
// of size at most lmax on a server of rate r,
//
//	D_i^PGPS(t) <= D_i^GPS(t) + lmax/r,
//	Q_i^PGPS(t) <= Q_i^GPS(t) + lmax,
//
// so every statistical tail bound shifts by the packetization terms:
// Pr{D^PGPS >= d} <= Pr{D^GPS >= d - lmax/r}, and likewise for backlog.
type PGPSBounds struct {
	Fluid *SessionBounds
	Lmax  float64
	Rate  float64
}

// NewPGPSBounds wraps a fluid bound set with packetization parameters.
func NewPGPSBounds(fluid *SessionBounds, lmax, rate float64) (*PGPSBounds, error) {
	if fluid == nil {
		return nil, fmt.Errorf("gpsmath: nil fluid bounds")
	}
	if lmax < 0 {
		return nil, fmt.Errorf("gpsmath: lmax = %v, want >= 0", lmax)
	}
	if !(rate > 0) {
		return nil, fmt.Errorf("gpsmath: rate = %v, want positive", rate)
	}
	return &PGPSBounds{Fluid: fluid, Lmax: lmax, Rate: rate}, nil
}

// DelayTail bounds Pr{D_i^PGPS >= d}.
func (p *PGPSBounds) DelayTail(d float64) float64 {
	shifted := d - p.Lmax/p.Rate
	if shifted <= 0 {
		return 1
	}
	return p.Fluid.DelayTail(shifted)
}

// BacklogTail bounds Pr{Q_i^PGPS >= q}.
func (p *PGPSBounds) BacklogTail(q float64) float64 {
	shifted := q - p.Lmax
	if shifted <= 0 {
		return 1
	}
	return p.Fluid.BacklogTail(shifted)
}

// DelayQuantile returns the smallest d with DelayTail(d) <= eps: the
// fluid quantile plus the packetization shift.
func (p *PGPSBounds) DelayQuantile(eps float64) float64 {
	return p.Fluid.DelayQuantile(eps) + p.Lmax/p.Rate
}

// BacklogQuantile returns the smallest q with BacklogTail(q) <= eps.
func (p *PGPSBounds) BacklogQuantile(eps float64) float64 {
	return p.Fluid.BacklogQuantile(eps) + p.Lmax
}

// BestDelayTail returns the shifted exponential achieving the bound at
// delay level d (rate unchanged, prefactor inflated by the shift).
func (p *PGPSBounds) BestDelayTail(d float64) numeric.ExpTail {
	shifted := d - p.Lmax/p.Rate
	if shifted <= 0 {
		shifted = 0
	}
	base := p.Fluid.BestBacklogTail(p.Fluid.G * shifted)
	// Pr{D >= d} <= Λ·e^{-α·g·(d - lmax/r)} = (Λ·e^{α·g·lmax/r})·e^{-α·g·d}.
	gRate := base.Rate * p.Fluid.G
	return numeric.ExpTail{
		Prefactor: base.Prefactor * math.Exp(gRate*p.Lmax/p.Rate),
		Rate:      gRate,
	}
}
