//go:build !race

package gpsmath

// raceEnabled reports whether the race detector is active; long
// differential sweeps scale their op counts down under it.
const raceEnabled = false
