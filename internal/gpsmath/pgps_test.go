package gpsmath

import (
	"math"
	"testing"
)

func pgpsFixture(t *testing.T) (*SessionBounds, *PGPSBounds) {
	t.Helper()
	srv := set1Server(t)
	a, err := AnalyzeServer(srv, Options{Independent: true, Xi: XiOptimal})
	if err != nil {
		t.Fatal(err)
	}
	fluid := a.Bounds[0]
	p, err := NewPGPSBounds(fluid, 0.5, 1)
	if err != nil {
		t.Fatal(err)
	}
	return fluid, p
}

func TestNewPGPSBoundsValidation(t *testing.T) {
	fluid, _ := pgpsFixture(t)
	if _, err := NewPGPSBounds(nil, 1, 1); err == nil {
		t.Error("nil fluid: want error")
	}
	if _, err := NewPGPSBounds(fluid, -1, 1); err == nil {
		t.Error("negative lmax: want error")
	}
	if _, err := NewPGPSBounds(fluid, 1, 0); err == nil {
		t.Error("zero rate: want error")
	}
}

func TestPGPSShiftsFluidBounds(t *testing.T) {
	fluid, p := pgpsFixture(t)
	for _, d := range []float64{1, 5, 10, 20} {
		got := p.DelayTail(d)
		want := fluid.DelayTail(d - 0.5) // lmax/rate = 0.5
		if math.Abs(got-want) > 1e-12 {
			t.Errorf("DelayTail(%v) = %v, want shifted %v", d, got, want)
		}
		// PGPS bound must never be better than the fluid bound.
		if got < fluid.DelayTail(d)-1e-12 {
			t.Errorf("PGPS bound %v below fluid bound %v at %v", got, fluid.DelayTail(d), d)
		}
	}
	for _, q := range []float64{1, 3, 8} {
		got := p.BacklogTail(q)
		want := fluid.BacklogTail(q - 0.5)
		if math.Abs(got-want) > 1e-12 {
			t.Errorf("BacklogTail(%v) = %v, want %v", q, got, want)
		}
	}
	if p.DelayTail(0.2) != 1 || p.BacklogTail(0.4) != 1 {
		t.Error("inside the packetization shift the bound must be trivial")
	}
}

func TestPGPSQuantiles(t *testing.T) {
	fluid, p := pgpsFixture(t)
	eps := 1e-6
	if got, want := p.DelayQuantile(eps), fluid.DelayQuantile(eps)+0.5; math.Abs(got-want) > 1e-9 {
		t.Errorf("DelayQuantile = %v, want %v", got, want)
	}
	if got, want := p.BacklogQuantile(eps), fluid.BacklogQuantile(eps)+0.5; math.Abs(got-want) > 1e-9 {
		t.Errorf("BacklogQuantile = %v, want %v", got, want)
	}
}

func TestPGPSBestDelayTailDominates(t *testing.T) {
	_, p := pgpsFixture(t)
	for _, d := range []float64{2, 6, 15} {
		tail := p.BestDelayTail(d)
		if !tail.Valid() {
			t.Fatalf("invalid tail at %v", d)
		}
		// The exponential form evaluated at d must dominate the exact
		// shifted bound (it is the same bound re-expressed plus slack
		// from θ being optimized at the shifted abscissa).
		if v := tail.Eval(d); v < p.DelayTail(d)-1e-9 {
			t.Errorf("exponential form %v below exact bound %v at %v", v, p.DelayTail(d), d)
		}
	}
}
