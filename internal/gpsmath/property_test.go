package gpsmath

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/ebb"
	"repro/internal/source"
)

// randomServer builds a stable random server from three seed bytes:
// 2-5 sessions, random rates and weights, total load <= 0.9.
func randomServer(a, b, c uint8) Server {
	rng := source.NewRNG(uint64(a)<<16 | uint64(b)<<8 | uint64(c))
	n := 2 + rng.Intn(4)
	srv := Server{Rate: 1}
	budget := 0.9
	for i := 0; i < n; i++ {
		share := budget / float64(n)
		rho := share * (0.3 + 0.7*rng.Float64())
		srv.Sessions = append(srv.Sessions, Session{
			Name: "s",
			Phi:  0.05 + rng.Float64(),
			Arrival: ebb.Process{
				Rho:    rho,
				Lambda: 0.2 + 2*rng.Float64(),
				Alpha:  0.3 + 3*rng.Float64(),
			},
		})
	}
	return srv
}

// Property: the feasible partition always covers every session exactly
// once, classes are nonempty, and class thresholds are honored (eq. 39).
func TestFeasiblePartitionProperty(t *testing.T) {
	prop := func(a, b, c uint8) bool {
		srv := randomServer(a, b, c)
		p, err := srv.FeasiblePartition()
		if err != nil {
			return false
		}
		seen := make([]bool, len(srv.Sessions))
		placedRho := 0.0
		remPhi := srv.TotalPhi()
		for _, class := range p.Classes {
			if len(class) == 0 {
				return false
			}
			threshold := (srv.Rate - placedRho) / remPhi
			for _, i := range class {
				if seen[i] {
					return false
				}
				seen[i] = true
				s := srv.Sessions[i]
				// Definition: members are strictly below the threshold.
				if !(s.Arrival.Rho/s.Phi < threshold) {
					return false
				}
			}
			for _, i := range class {
				placedRho += srv.Sessions[i].Arrival.Rho
				remPhi -= srv.Sessions[i].Phi
			}
		}
		for _, ok := range seen {
			if !ok {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: a feasible ordering always exists for DecomposedRates under
// every split strategy, and satisfies eq. (5).
func TestFeasibleOrderingProperty(t *testing.T) {
	prop := func(a, b, c uint8, splitSel uint8) bool {
		srv := randomServer(a, b, c)
		split := []EpsilonSplit{SplitEqual, SplitProportional, SplitByPhi}[splitSel%3]
		rates, err := srv.DecomposedRates(split, 0.999)
		if err != nil {
			return false
		}
		ord, err := srv.FeasibleOrdering(rates)
		if err != nil {
			return false
		}
		remPhi := srv.TotalPhi()
		used := 0.0
		for _, i := range ord {
			limit := srv.Sessions[i].Phi / remPhi * (srv.Rate - used)
			if rates[i] > limit*(1+1e-9) {
				return false
			}
			used += rates[i]
			remPhi -= srv.Sessions[i].Phi
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: every bound the analysis produces behaves like a probability
// tail — within [0,1], nonincreasing, and eventually small — for both the
// independent and Hölder routes.
func TestAnalysisBoundsProperty(t *testing.T) {
	prop := func(a, b, c uint8, independent bool) bool {
		srv := randomServer(a, b, c)
		an, err := AnalyzeServer(srv, Options{Independent: independent, Xi: XiOptimal})
		if err != nil {
			return false
		}
		for i := range srv.Sessions {
			for _, set := range [][]*SessionBounds{{an.Bounds[i]}, {an.OrderingBounds[i]}} {
				sb := set[0]
				prev := 1.1
				for q := 0.0; q <= 80; q += 8 {
					v := sb.BacklogTail(q)
					if v < 0 || v > 1 || v > prev+1e-9 {
						return false
					}
					prev = v
				}
				if sb.BacklogTail(400) > 1e-3 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: the partition-route prefactor matches eq. (54) at ξ=1 for a
// randomly chosen session and θ.
func TestTheorem11Eq54Property(t *testing.T) {
	prop := func(a, b, c uint8, pick uint8, th uint8) bool {
		srv := randomServer(a, b, c)
		p, err := srv.FeasiblePartition()
		if err != nil {
			return false
		}
		i := int(pick) % len(srv.Sessions)
		sb, err := srv.Theorem11(p, i, XiOne)
		if err != nil {
			return false
		}
		theta := sb.ThetaMax * (0.05 + 0.9*float64(th)/255)
		got := sb.PrefactorAt(theta)
		want := srv.Theorem11PaperPrefactor(p, i, theta)
		if math.IsInf(got, 1) && math.IsInf(want, 1) {
			return true
		}
		return math.Abs(got-want) <= 1e-6*want
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: guaranteed rates sum to the server rate and each session's
// effective class rate gEff dominates the paper's requirement gEff > ρ.
func TestClassGeometryProperty(t *testing.T) {
	prop := func(a, b, c uint8) bool {
		srv := randomServer(a, b, c)
		p, err := srv.FeasiblePartition()
		if err != nil {
			return false
		}
		sum := 0.0
		for i := range srv.Sessions {
			sum += srv.GuaranteedRate(i)
			geo := srv.classGeometry(p, i)
			if !(geo.epsBudget > 0) {
				return false
			}
			if geo.psi <= 0 || geo.psi > 1+1e-12 {
				return false
			}
		}
		return math.Abs(sum-srv.Rate) < 1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
