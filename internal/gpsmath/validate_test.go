package gpsmath

import (
	"errors"
	"math"
	"testing"

	"repro/internal/ebb"
)

func validationServer() Server {
	procs := []ebb.Process{
		{Rho: 0.2, Lambda: 1, Alpha: 1.7},
		{Rho: 0.25, Lambda: 1, Alpha: 1.8},
		{Rho: 0.2, Lambda: 1, Alpha: 2.1},
	}
	return NewRPPSServer(1, procs, nil)
}

func TestValidateWrapsErrInvalidInput(t *testing.T) {
	bad := validationServer()
	bad.Rate = math.NaN()
	if err := bad.Validate(); !errors.Is(err, ErrInvalidInput) {
		t.Errorf("NaN rate: err = %v, want ErrInvalidInput", err)
	}
	bad = validationServer()
	bad.Sessions[1].Phi = -1
	if err := bad.Validate(); !errors.Is(err, ErrInvalidInput) {
		t.Errorf("negative phi: err = %v, want ErrInvalidInput", err)
	}
	// Overload keeps its dedicated sentinel.
	over := validationServer()
	over.Rate = 0.5
	if err := over.Validate(); !errors.Is(err, ErrOverloaded) {
		t.Errorf("overload: err = %v, want ErrOverloaded", err)
	}
}

func TestDecomposedRatesRejectsNaNFrac(t *testing.T) {
	srv := validationServer()
	for _, frac := range []float64{math.NaN(), 0, -0.5, 1.5} {
		if _, err := srv.DecomposedRates(SplitEqual, frac); !errors.Is(err, ErrInvalidInput) {
			t.Errorf("frac %v: err = %v, want ErrInvalidInput", frac, err)
		}
	}
	if _, err := srv.DecomposedRates(SplitEqual, 1); err != nil {
		t.Errorf("frac 1 rejected: %v", err)
	}
}

func TestFeasibleOrderingRejectsBadRates(t *testing.T) {
	srv := validationServer()
	good, err := srv.DecomposedRates(SplitEqual, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, bad := range []float64{math.NaN(), math.Inf(1), 0, -0.1} {
		rates := append([]float64(nil), good...)
		rates[1] = bad
		if _, err := srv.FeasibleOrdering(rates); !errors.Is(err, ErrInvalidInput) {
			t.Errorf("rate %v: err = %v, want ErrInvalidInput", bad, err)
		}
	}
	if _, err := srv.FeasibleOrdering(good[:2]); !errors.Is(err, ErrInvalidInput) {
		t.Error("length mismatch: want ErrInvalidInput")
	}
}

func TestTheoremIndexValidation(t *testing.T) {
	srv := validationServer()
	p, err := srv.FeasiblePartition()
	if err != nil {
		t.Fatal(err)
	}
	for _, i := range []int{-1, len(srv.Sessions)} {
		if _, err := srv.Theorem10(p, i); !errors.Is(err, ErrInvalidInput) {
			t.Errorf("Theorem10(%d): %v, want ErrInvalidInput", i, err)
		}
		if _, err := srv.Theorem11(p, i, XiOne); !errors.Is(err, ErrInvalidInput) {
			t.Errorf("Theorem11(%d): %v, want ErrInvalidInput", i, err)
		}
		if _, err := srv.Theorem12(p, i, nil, XiOne); !errors.Is(err, ErrInvalidInput) {
			t.Errorf("Theorem12(%d): %v, want ErrInvalidInput", i, err)
		}
	}
}

func TestTheorem12RejectsNaNHolderExponents(t *testing.T) {
	// A non-RPPS assignment puts the light-phi session in a later
	// class, so Theorem 12 has an aggregate to Hölder against.
	procs := []ebb.Process{
		{Rho: 0.2, Lambda: 1, Alpha: 1.7},
		{Rho: 0.3, Lambda: 1, Alpha: 1.8},
	}
	srv := Server{Rate: 1, Sessions: []Session{
		{Name: "a", Phi: 0.7, Arrival: procs[0]},
		{Name: "b", Phi: 0.3, Arrival: procs[1]},
	}}
	p, err := srv.FeasiblePartition()
	if err != nil {
		t.Fatal(err)
	}
	var late int
	for i, c := range p.ClassOf {
		if c > 0 {
			late = i
		}
	}
	if p.ClassOf[late] == 0 {
		t.Skip("partition collapsed to one class; no aggregate to test")
	}
	for _, ps := range [][]float64{
		{math.NaN(), 2},
		{2, math.NaN()},
		{0.5, 2},
	} {
		if _, err := srv.Theorem12(p, late, ps, XiOne); !errors.Is(err, ErrInvalidInput) {
			t.Errorf("ps %v: err = %v, want ErrInvalidInput", ps, err)
		}
	}
}

func TestBoundsNaNGuards(t *testing.T) {
	srv := validationServer()
	p, err := srv.FeasiblePartition()
	if err != nil {
		t.Fatal(err)
	}
	b, err := srv.Theorem11(p, 0, XiOne)
	if err != nil {
		t.Fatal(err)
	}
	if v := b.BacklogTail(math.NaN()); v != 1 {
		t.Errorf("BacklogTail(NaN) = %v, want trivial bound 1", v)
	}
	if v := b.DelayTail(math.NaN()); v != 1 {
		t.Errorf("DelayTail(NaN) = %v, want trivial bound 1", v)
	}
	if q := b.BacklogQuantile(math.NaN()); !math.IsInf(q, 1) {
		t.Errorf("BacklogQuantile(NaN) = %v, want +Inf", q)
	}
	if _, err := b.OutputEBB(math.NaN()); !errors.Is(err, ErrInvalidInput) {
		t.Errorf("OutputEBB(NaN): %v, want ErrInvalidInput", err)
	}
	if _, err := b.BestOutputEBB(math.NaN()); !errors.Is(err, ErrInvalidInput) {
		t.Errorf("BestOutputEBB(NaN): %v, want ErrInvalidInput", err)
	}
}
