package gpsmath

import (
	"fmt"
	"math"

	"repro/internal/ebb"
	"repro/internal/numeric"
)

// This file holds the memoized analysis machinery behind AnalyzeServer
// and the public theorem constructors. The paper's bounds share a large
// amount of structure — every Theorem 7/8 position needs the suffix
// weight sums of one ordering, every Theorem 10/11/12 session needs the
// class geometry and per-class aggregates of one partition, and every
// prefactor is a product of Lemma 6 terms exp(u(σ̂+ρξ))/(1-e^{-uεξ})
// whose ξ-optimizing logarithm ln((ρ+ε)/ρ) is a pure function of the
// term. Building each of these once per (server, ordering/partition)
// and sharing them across sessions turns AnalyzeServer from O(N²)
// rebuild-per-session into compute-once-and-combine (see DESIGN.md,
// "Performance architecture").

// mgfTerm is one cached Lemma 6 term: the δ-queue MGF bound for a flow
// with log-MGF excess σ̂, long-term rate rho, and service slack eps.
// Terms are built once per memo and shared — in particular the σ̂
// closure of an aggregate class, which the pre-memo code rebuilt for
// every session of every later class. Single-flow terms embed the
// three-float E.B.B. process by value: binding its SigmaHat as a method
// value would allocate a closure per term. The ξ0 logarithm stays in
// eval: bound construction never evaluates a prefactor, so computing it
// eagerly would tax construction for work only evaluation needs.
type mgfTerm struct {
	proc     ebb.Process           // single-flow σ̂ when agg == nil
	agg      func(float64) float64 // aggregate σ̂ (Σ member σ̂)
	rho, eps float64
}

func singleTerm(p ebb.Process, eps float64) mgfTerm {
	return mgfTerm{proc: p, rho: p.Rho, eps: eps}
}

func aggTerm(sumSH func(float64) float64, rho, eps float64) mgfTerm {
	return mgfTerm{agg: sumSH, rho: rho, eps: eps}
}

// eval bounds E e^{u·δ} for the term's queue (Lemma 6). It matches the
// historical deltaMGF function value-for-value.
func (t mgfTerm) eval(u float64, mode XiMode) float64 {
	if u <= 0 || t.eps <= 0 {
		return math.Inf(1)
	}
	var sh float64
	if t.agg != nil {
		sh = t.agg(u)
	} else {
		sh = t.proc.SigmaHat(u)
	}
	if math.IsInf(sh, 1) {
		return math.Inf(1)
	}
	xi := 1.0
	if mode == XiOptimal {
		xi = math.Log((t.rho+t.eps)/t.rho) / (t.eps * u)
	}
	return math.Exp(u*(sh+t.rho*xi)) / (-math.Expm1(-u * t.eps * xi))
}

// orderingMemo caches everything the Theorem 7/8 constructors need about
// one (ordering, rates) pair: suffix weight sums ("tail φ"), the prefix
// minimum of the predecessors' decay rates, and the total weight behind
// the guaranteed rates. All positions share the same backing arrays —
// the per-position constructors only read them. The per-session Lemma 6
// terms are built inline by the prefactor closures (a mgfTerm is a plain
// value, so this costs no allocation and reproduces the retired terms
// array bit for bit) — materializing them was an O(N) block the per-op
// DeltaAnalyzer path would pay on every epoch.
type orderingMemo struct {
	s        Server
	ord      []int
	rates    []float64
	totalPhi float64 // Σφ, the left-to-right fold of Server.TotalPhi
	// tailPhi[pos] = Σ_{k >= pos} φ_{ord[k]} (tailPhi[len] = 0).
	tailPhi []float64
	// preMinA[pos] = min_{k < pos} α_{ord[k]} (+Inf at pos 0).
	preMinA []float64
	// preInvA[pos] = Σ_{k < pos} 1/α_{ord[k]}, accumulated left to right
	// in ordering order — the same op sequence ebb.HolderExponents uses —
	// so the Theorem 8 auto-exponent path reproduces its partial sums
	// bit for bit from a prefix lookup instead of an O(pos) rebuild.
	preInvA []float64
}

func (s Server) newOrderingMemo(ord []int, rates []float64) *orderingMemo {
	return s.newOrderingMemoOwned(append([]int(nil), ord...), append([]float64(nil), rates...))
}

// newOrderingMemoOwned builds the memo without defensively copying ord
// and rates: AnalyzeServer and the DeltaAnalyzer hand over freshly
// allocated slices they never mutate afterwards, and re-copying them
// would put two O(N) allocations back on the per-op delta path. The
// public Theorem 7/8 constructors go through newOrderingMemo, which
// copies, because caller-owned slices may be reused.
func (s Server) newOrderingMemoOwned(ord []int, rates []float64) *orderingMemo {
	n := len(ord)
	// One float block backs every per-position array.
	floats := make([]float64, (n+1)+n+(n+1))
	m := &orderingMemo{
		s:        s,
		ord:      ord,
		rates:    rates,
		totalPhi: s.TotalPhi(),
		tailPhi:  floats[: n+1 : n+1],
		preMinA:  floats[n+1 : 2*n+1 : 2*n+1],
		preInvA:  floats[2*n+1:],
	}
	for pos := n - 1; pos >= 0; pos-- {
		m.tailPhi[pos] = m.tailPhi[pos+1] + s.Sessions[ord[pos]].Phi
	}
	minA := math.Inf(1)
	invA := 0.0
	for pos, j := range ord {
		m.preMinA[pos] = minA
		m.preInvA[pos] = invA
		a := s.Sessions[j].Arrival.Alpha
		if a < minA {
			minA = a
		}
		invA += 1 / a
	}
	m.preInvA[n] = invA
	return m
}

// gOf is the guaranteed rate g_i = φ_i/Σφ·r, computed on demand from the
// cached total weight — the same expression (hence the same bits) the
// retired per-session g array held.
func (m *orderingMemo) gOf(i int) float64 {
	return m.s.Sessions[i].Phi / m.totalPhi * m.s.Rate
}

// termOf is session j's Lemma 6 term at its decomposed rate.
func (m *orderingMemo) termOf(j int) mgfTerm {
	arr := m.s.Sessions[j].Arrival
	return singleTerm(arr, m.rates[j]-arr.Rho)
}

// theorem7 is the memoized body of Server.Theorem7.
func (m *orderingMemo) theorem7(pos int, mode XiMode) (*SessionBounds, error) {
	sb := new(SessionBounds)
	if err := m.theorem7Into(sb, pos, mode); err != nil {
		return nil, err
	}
	return sb, nil
}

// theorem7Into fills a caller-provided SessionBounds (callers building
// bounds for every session arena-allocate them in one block).
func (m *orderingMemo) theorem7Into(sb *SessionBounds, pos int, mode XiMode) error {
	if pos < 0 || pos >= len(m.ord) {
		return fmt.Errorf("gpsmath: position %d outside ordering of length %d", pos, len(m.ord))
	}
	i := m.ord[pos]
	sess := &m.s.Sessions[i]
	psi := sess.Phi / m.tailPhi[pos]

	// Admissible θ: θ < α_i and ψθ < α_j for each predecessor.
	thetaMax := sess.Arrival.Alpha
	if lim := m.preMinA[pos] / psi; lim < thetaMax {
		thetaMax = lim
	}

	ahead := m.ord[:pos]
	self := m.termOf(i)
	prefactor := func(theta float64) float64 {
		if theta <= 0 || theta >= thetaMax {
			return math.Inf(1)
		}
		lam := self.eval(theta, mode)
		for _, j := range ahead {
			lam *= m.termOf(j).eval(psi*theta, mode)
			if math.IsInf(lam, 1) {
				return math.Inf(1)
			}
		}
		return lam
	}
	*sb = SessionBounds{
		Name:      sess.Name,
		Index:     i,
		G:         m.gOf(i),
		Rho:       sess.Arrival.Rho,
		Theorem:   "thm7",
		ThetaMax:  thetaMax,
		Prefactor: prefactor,
	}
	return nil
}

// theorem8 is the memoized body of Server.Theorem8.
func (m *orderingMemo) theorem8(pos int, ps []float64, mode XiMode) (*SessionBounds, error) {
	sb := new(SessionBounds)
	if err := m.theorem8Into(sb, pos, ps, mode); err != nil {
		return nil, err
	}
	return sb, nil
}

func (m *orderingMemo) theorem8Into(sb *SessionBounds, pos int, ps []float64, mode XiMode) error {
	if pos < 0 || pos >= len(m.ord) {
		return fmt.Errorf("gpsmath: position %d outside ordering of length %d", pos, len(m.ord))
	}
	i := m.ord[pos]
	sess := &m.s.Sessions[i]
	psi := sess.Phi / m.tailPhi[pos]

	k := pos + 1 // number of Hölder terms: predecessors plus the session
	ahead := m.ord[:pos]
	self := m.termOf(i)
	if ps == nil {
		// Auto-exponent fast path: the conjugate exponents p_j = α_j·inv
		// with inv = Σ 1/α are recovered from the preInvA prefix sums
		// instead of materializing the O(pos) alphas/ps/exps slices, so
		// construction is O(1) per position (O(N) across an ordering,
		// instead of O(N²) time and memory). Exponent validity (p_j > 1
		// for k ≥ 2, reciprocals summing to 1) holds by construction.
		// The θ ceiling uses lim = 1/(inv·ψ) for the predecessor block,
		// which equals every α_j/(p_j·ψ) exactly in real arithmetic and
		// to within an ulp or two in floats — an overshoot is harmless
		// because σ̂ itself returns +Inf past any term's true ceiling.
		inv := m.preInvA[pos] + 1/sess.Arrival.Alpha
		pSelf := sess.Arrival.Alpha * inv
		thetaMax := sess.Arrival.Alpha / pSelf
		if pos > 0 {
			if lim := 1 / (inv * psi); lim < thetaMax {
				thetaMax = lim
			}
		}
		sessions := m.s.Sessions
		prefactor := func(theta float64) float64 {
			if theta <= 0 || theta >= thetaMax {
				return math.Inf(1)
			}
			lam := math.Pow(self.eval(pSelf*theta, mode), 1/pSelf)
			for _, j := range ahead {
				pj := sessions[j].Arrival.Alpha * inv
				mj := m.termOf(j).eval(pj*psi*theta, mode)
				lam *= math.Pow(mj, 1/pj)
				if math.IsInf(lam, 1) {
					return math.Inf(1)
				}
			}
			return lam
		}
		*sb = SessionBounds{
			Name:      sess.Name,
			Index:     i,
			G:         m.gOf(i),
			Rho:       sess.Arrival.Rho,
			Theorem:   "thm8",
			ThetaMax:  thetaMax,
			Prefactor: prefactor,
		}
		return nil
	}
	if len(ps) != k {
		return fmt.Errorf("gpsmath: %d Hölder exponents for %d terms", len(ps), k)
	}
	sum := 0.0
	for _, p := range ps {
		if !(p > 1) && k > 1 {
			return fmt.Errorf("gpsmath: Hölder exponent %v, want > 1", p)
		}
		sum += 1 / p
	}
	if math.Abs(sum-1) > 1e-9 {
		return fmt.Errorf("gpsmath: Hölder exponents sum of reciprocals = %v, want 1", sum)
	}

	// Admissible θ: p_i·θ < α_i and p_j·ψ·θ < α_j.
	thetaMax := sess.Arrival.Alpha / ps[k-1]
	for idx, j := range m.ord[:pos] {
		if lim := m.s.Sessions[j].Arrival.Alpha / (ps[idx] * psi); lim < thetaMax {
			thetaMax = lim
		}
	}

	exps := append([]float64(nil), ps...)
	prefactor := func(theta float64) float64 {
		if theta <= 0 || theta >= thetaMax {
			return math.Inf(1)
		}
		pi := exps[k-1]
		lam := math.Pow(self.eval(pi*theta, mode), 1/pi)
		for idx, j := range ahead {
			mj := m.termOf(j).eval(exps[idx]*psi*theta, mode)
			lam *= math.Pow(mj, 1/exps[idx])
			if math.IsInf(lam, 1) {
				return math.Inf(1)
			}
		}
		return lam
	}
	*sb = SessionBounds{
		Name:      sess.Name,
		Index:     i,
		G:         m.gOf(i),
		Rho:       sess.Arrival.Rho,
		Theorem:   "thm8",
		ThetaMax:  thetaMax,
		Prefactor: prefactor,
	}
	return nil
}

// partitionMemo caches everything the Theorem 10/11/12 constructors need
// about one feasible partition: per-class aggregates (member processes,
// aggregate rate ρ̃, smallest decay rate, the summed σ̂), the ρ/φ prefix
// geometry, and the guaranteed rates. Every session shares the same
// backing arrays; the cached aggregate σ̂ closures stay valid across
// sessions and partition passes because they depend only on the class
// membership — never on the session's ε budget or the evaluation point,
// which enter each Lemma 6 term separately.
type partitionMemo struct {
	s        Server
	p        Partition
	totalPhi float64 // Σφ, the left-to-right fold of Server.TotalPhi
	// Per class l: aggregate rate ρ̃_l, the smallest member decay rate,
	// and the aggregate σ̂ (Σ member σ̂, iterated in class/index order).
	classRho   []float64
	classMinA  []float64
	classSumSH []func(float64) float64
	// Per class c: earlierRho[c] = Σ_{l < c} ρ̃_l and laterPhi[c] =
	// Σ_{sessions in classes >= c} φ — the eq. (37–39) geometry that
	// classGeometry recomputed per session.
	earlierRho []float64
	laterPhi   []float64
	// preMinClassA[c] = min_{l < c} classMinA[l] (+Inf at c = 0) and
	// preInvClassA[c] = Σ_{l < c} 1/classMinA[l], accumulated left to
	// right — the same op sequence ebb.HolderExponents applies to the
	// ceiling list — so the Theorem 11/12 θ ceilings and auto Hölder
	// exponents come from O(1) lookups instead of per-session scans over
	// the earlier classes.
	preMinClassA []float64
	preInvClassA []float64
}

func (s Server) newPartitionMemo(p Partition) *partitionMemo {
	L := len(p.Classes)
	// One float block backs every per-class array (including the
	// classPhi temporary).
	floats := make([]float64, 7*L)
	m := &partitionMemo{
		s: s, p: p,
		totalPhi:     s.TotalPhi(),
		classRho:     floats[:L:L],
		classMinA:    floats[L : 2*L : 2*L],
		classSumSH:   make([]func(float64) float64, L),
		earlierRho:   floats[2*L : 3*L : 3*L],
		laterPhi:     floats[3*L : 4*L : 4*L],
		preMinClassA: floats[4*L : 5*L : 5*L],
		preInvClassA: floats[5*L : 6*L : 6*L],
	}
	classPhi := floats[6*L:]
	for l, class := range p.Classes {
		minA := math.Inf(1)
		for _, j := range class {
			a := s.Sessions[j].Arrival
			m.classRho[l] += a.Rho
			classPhi[l] += s.Sessions[j].Phi
			if a.Alpha < minA {
				minA = a.Alpha
			}
		}
		m.classMinA[l] = minA
		m.classSumSH[l] = classSumSigmaHat(s.Sessions, class)
	}
	for c := 1; c < L; c++ {
		m.earlierRho[c] = m.earlierRho[c-1] + m.classRho[c-1]
	}
	for c := L - 1; c >= 0; c-- {
		m.laterPhi[c] = classPhi[c]
		if c+1 < L {
			m.laterPhi[c] += m.laterPhi[c+1]
		}
	}
	minA := math.Inf(1)
	invA := 0.0
	for c := 0; c < L; c++ {
		m.preMinClassA[c] = minA
		m.preInvClassA[c] = invA
		if a := m.classMinA[c]; a < minA {
			minA = a
		}
		invA += 1 / m.classMinA[c]
	}
	return m
}

// classSumSigmaHat is the σ̂ of one partition class's aggregate flow:
// Σσ̂_j(u) over the members in class (hence index) order — the same
// iteration order, and therefore the same floating-point sum, the
// retired per-class member arena produced. Capturing the session slice
// and the class index slice keeps the memo free of the O(N) process
// copy the arena required per build.
func classSumSigmaHat(sessions []Session, class []int) func(float64) float64 {
	return func(u float64) float64 {
		s := 0.0
		for _, j := range class {
			v := sessions[j].Arrival.SigmaHat(u)
			if math.IsInf(v, 1) {
				return math.Inf(1)
			}
			s += v
		}
		return s
	}
}

// gOf is the guaranteed rate g_i = φ_i/Σφ·r, on demand (same bits as
// the retired per-session g array).
func (m *partitionMemo) gOf(i int) float64 {
	return m.s.Sessions[i].Phi / m.totalPhi * m.s.Rate
}

// geometry returns session i's class geometry from the cached prefix
// sums (the memoized equivalent of Server.classGeometry).
func (m *partitionMemo) geometry(i int) classGeometry {
	c := m.p.ClassOf[i]
	psi := m.s.Sessions[i].Phi / m.laterPhi[c]
	gEff := psi * (m.s.Rate - m.earlierRho[c])
	return classGeometry{class: c, psi: psi, gEff: gEff, epsBudget: gEff - m.s.Sessions[i].Arrival.Rho}
}

func (m *partitionMemo) checkIndex(i int) error {
	if i < 0 || i >= len(m.s.Sessions) || i >= len(m.p.ClassOf) {
		return fmt.Errorf("%w: session index %d with %d sessions", ErrInvalidInput, i, len(m.s.Sessions))
	}
	return nil
}

// theorem10 is the memoized body of Server.Theorem10.
func (m *partitionMemo) theorem10(i int) (numeric.ExpTail, error) {
	if err := m.checkIndex(i); err != nil {
		return numeric.ExpTail{}, err
	}
	if m.p.ClassOf[i] != 0 {
		return numeric.ExpTail{}, fmt.Errorf("gpsmath: session %d is in class H_%d, Theorem 10 needs H_1", i, m.p.ClassOf[i]+1)
	}
	return m.s.Sessions[i].Arrival.DeltaTail(m.gOf(i))
}

// theorem11 is the memoized body of Server.Theorem11.
func (m *partitionMemo) theorem11(i int, mode XiMode) (*SessionBounds, error) {
	sb := new(SessionBounds)
	if err := m.theorem11Into(sb, i, mode); err != nil {
		return nil, err
	}
	return sb, nil
}

func (m *partitionMemo) theorem11Into(sb *SessionBounds, i int, mode XiMode) error {
	if err := m.checkIndex(i); err != nil {
		return err
	}
	geo := m.geometry(i)
	if geo.epsBudget <= 0 {
		return fmt.Errorf("gpsmath: session %d has no rate slack in its class (gEff = %v, rho = %v)", i, geo.gEff, m.s.Sessions[i].Arrival.Rho)
	}
	c := geo.class
	k := float64(c + 1)
	sess := &m.s.Sessions[i]

	epsI := geo.epsBudget / k
	epsAgg := geo.epsBudget / (k * geo.psi)

	// min_l (α_l/ψ) = (min_l α_l)/ψ bit for bit (division by a positive
	// constant never reorders floats), so the prefix minimum replaces the
	// per-session scan over earlier classes.
	thetaMax := sess.Arrival.Alpha
	if c > 0 {
		if lim := m.preMinClassA[c] / geo.psi; lim < thetaMax {
			thetaMax = lim
		}
	}

	selfTerm := singleTerm(sess.Arrival, epsI)
	psi := geo.psi
	// The aggregate Lemma 6 terms differ per session only through epsAgg;
	// building the three-field term values inside the closure instead of
	// materializing an O(L) slice per session keeps construction O(1).
	prefactor := func(theta float64) float64 {
		if theta <= 0 || theta >= thetaMax {
			return math.Inf(1)
		}
		lam := selfTerm.eval(theta, mode)
		for l := 0; l < c; l++ {
			lam *= aggTerm(m.classSumSH[l], m.classRho[l], epsAgg).eval(psi*theta, mode)
			if math.IsInf(lam, 1) {
				return math.Inf(1)
			}
		}
		return lam
	}
	*sb = SessionBounds{
		Name:      sess.Name,
		Index:     i,
		G:         m.gOf(i),
		Rho:       sess.Arrival.Rho,
		Theorem:   "thm11",
		ThetaMax:  thetaMax,
		Prefactor: prefactor,
	}
	return nil
}

// theorem12 is the memoized body of Server.Theorem12.
func (m *partitionMemo) theorem12(i int, ps []float64, mode XiMode) (*SessionBounds, error) {
	sb := new(SessionBounds)
	if err := m.theorem12Into(sb, i, ps, mode); err != nil {
		return nil, err
	}
	return sb, nil
}

func (m *partitionMemo) theorem12Into(sb *SessionBounds, i int, ps []float64, mode XiMode) error {
	if err := m.checkIndex(i); err != nil {
		return err
	}
	geo := m.geometry(i)
	if geo.epsBudget <= 0 {
		return fmt.Errorf("gpsmath: session %d has no rate slack in its class", i)
	}
	c := geo.class
	k := c + 1
	sess := &m.s.Sessions[i]

	if ps == nil {
		// Auto-exponent fast path, mirroring theorem8Into: the conjugate
		// exponents over the ceiling list [minα_{H_1}, ..., α_i] are
		// p = ceiling·inv with inv from the preInvClassA prefix sums, so
		// nothing O(L) is materialized per session. The predecessor θ
		// ceiling collapses to 1/(inv·ψ) (exact in real arithmetic,
		// within ulps in floats; σ̂ guards the true per-term ceilings).
		inv := m.preInvClassA[c] + 1/sess.Arrival.Alpha
		pSelf := sess.Arrival.Alpha * inv
		thetaMax := sess.Arrival.Alpha / pSelf
		if c > 0 {
			if lim := 1 / (inv * geo.psi); lim < thetaMax {
				thetaMax = lim
			}
		}
		epsI := geo.epsBudget / float64(k)
		epsAgg := geo.epsBudget / (float64(k) * geo.psi)
		selfTerm := singleTerm(sess.Arrival, epsI)
		psi := geo.psi
		prefactor := func(theta float64) float64 {
			if theta <= 0 || theta >= thetaMax {
				return math.Inf(1)
			}
			lam := math.Pow(selfTerm.eval(pSelf*theta, mode), 1/pSelf)
			for l := 0; l < c; l++ {
				pl := m.classMinA[l] * inv
				ml := aggTerm(m.classSumSH[l], m.classRho[l], epsAgg).eval(pl*psi*theta, mode)
				lam *= math.Pow(ml, 1/pl)
				if math.IsInf(lam, 1) {
					return math.Inf(1)
				}
			}
			return lam
		}
		*sb = SessionBounds{
			Name:      sess.Name,
			Index:     i,
			G:         m.gOf(i),
			Rho:       sess.Arrival.Rho,
			Theorem:   "thm12",
			ThetaMax:  thetaMax,
			Prefactor: prefactor,
		}
		return nil
	}
	if len(ps) != k {
		return fmt.Errorf("gpsmath: %d Hölder exponents for %d terms", len(ps), k)
	}
	sum := 0.0
	for _, v := range ps {
		// Negated form: NaN fails every comparison, so `v < 1-1e-12`
		// alone would wave a NaN exponent through.
		if !(v >= 1-1e-12) || math.IsInf(v, 1) {
			return fmt.Errorf("%w: Hölder exponent %v, want finite >= 1", ErrInvalidInput, v)
		}
		sum += 1 / v
	}
	if !(math.Abs(sum-1) <= 1e-9) {
		return fmt.Errorf("%w: Hölder exponents sum of reciprocals = %v, want 1", ErrInvalidInput, sum)
	}

	epsI := geo.epsBudget / float64(k)
	epsAgg := geo.epsBudget / (float64(k) * geo.psi)

	thetaMax := sess.Arrival.Alpha / ps[k-1]
	for l, a := range m.classMinA[:c] {
		if lim := a / (ps[l] * geo.psi); lim < thetaMax {
			thetaMax = lim
		}
	}

	// Explicit exponents are a public-API escape hatch used at small k;
	// materializing the terms here (O(k)) is fine.
	selfTerm := singleTerm(sess.Arrival, epsI)
	aggTerms := make([]mgfTerm, c)
	for l := 0; l < c; l++ {
		aggTerms[l] = aggTerm(m.classSumSH[l], m.classRho[l], epsAgg)
	}
	psi := geo.psi
	exps := append([]float64(nil), ps...)
	prefactor := func(theta float64) float64 {
		if theta <= 0 || theta >= thetaMax {
			return math.Inf(1)
		}
		pk := exps[k-1]
		lam := math.Pow(selfTerm.eval(pk*theta, mode), 1/pk)
		for l := range aggTerms {
			ml := aggTerms[l].eval(exps[l]*psi*theta, mode)
			lam *= math.Pow(ml, 1/exps[l])
			if math.IsInf(lam, 1) {
				return math.Inf(1)
			}
		}
		return lam
	}
	*sb = SessionBounds{
		Name:      sess.Name,
		Index:     i,
		G:         m.gOf(i),
		Rho:       sess.Arrival.Rho,
		Theorem:   "thm12",
		ThetaMax:  thetaMax,
		Prefactor: prefactor,
	}
	return nil
}
