package gpsmath

import (
	"testing"

	"repro/internal/source"
)

// TestShardOfContract pins the shard key's semantics: degenerate
// counts collapse to shard 0, results stay in range, the map is
// deterministic, and — the property the per-shard type bookkeeping
// relies on — the key depends only on the ρ/φ ratio, so one declared
// service class always lands on one shard.
func TestShardOfContract(t *testing.T) {
	if ShardOf(0.5, 1, 0) != 0 || ShardOf(0.5, 1, 1) != 0 || ShardOf(0.5, 1, -3) != 0 {
		t.Fatal("n <= 1 must map everything to shard 0")
	}
	rng := source.NewRNG(42)
	for i := 0; i < 1000; i++ {
		rho := 0.01 + rng.Float64()*5
		phi := 0.01 + rng.Float64()*3
		n := 1 + rng.Intn(16)
		s := ShardOf(rho, phi, n)
		if s < 0 || s >= n {
			t.Fatalf("ShardOf(%v, %v, %d) = %d out of range", rho, phi, n, s)
		}
		if again := ShardOf(rho, phi, n); again != s {
			t.Fatalf("ShardOf not deterministic: %d then %d", s, again)
		}
		// Scaling ρ and φ by the same power of two leaves the ratio's
		// bits — and so the shard — unchanged.
		if scaled := ShardOf(rho*4, phi*4, n); scaled != s {
			t.Fatalf("ShardOf(4ρ, 4φ, %d) = %d, unscaled %d: key must depend on the ratio only", n, scaled, s)
		}
	}
}

// TestShardOfSpreads feeds many distinct service classes through the
// key and requires the splitmix64 mix to spread them: every shard of 8
// populated, none hoarding more than a third. (4 classes over 4 shards
// can collide — that is expected hashing; 512 classes must not.)
func TestShardOfSpreads(t *testing.T) {
	const n, classes = 8, 512
	var hist [n]int
	rng := source.NewRNG(7)
	for i := 0; i < classes; i++ {
		rho := 0.05 * float64(1+rng.Intn(200))
		phi := 0.125 * float64(1+rng.Intn(64))
		hist[ShardOf(rho, phi, n)]++
	}
	for s, c := range hist {
		if c == 0 {
			t.Errorf("shard %d received no classes (histogram %v)", s, hist)
		}
		if c > classes/3 {
			t.Errorf("shard %d hoards %d of %d classes (histogram %v)", s, c, classes, hist)
		}
	}
}
