package gpsmath

import (
	"errors"
	"math"
	"testing"

	"repro/internal/ebb"
)

// paperSet1 is Table 2, Set 1 of the paper: the four on-off sessions'
// E.B.B. characterizations.
func paperSet1() []ebb.Process {
	return []ebb.Process{
		{Rho: 0.2, Lambda: 1.0, Alpha: 1.74},
		{Rho: 0.25, Lambda: 0.92, Alpha: 1.76},
		{Rho: 0.2, Lambda: 0.84, Alpha: 2.13},
		{Rho: 0.25, Lambda: 1.0, Alpha: 1.62},
	}
}

// mixedServer is a non-RPPS server whose feasible partition has two
// classes: session 1 is over-weighted, session 2 under-weighted.
func mixedServer() Server {
	return Server{
		Rate: 1,
		Sessions: []Session{
			{Name: "a", Phi: 0.8, Arrival: ebb.Process{Rho: 0.1, Lambda: 1, Alpha: 2}},
			{Name: "b", Phi: 0.2, Arrival: ebb.Process{Rho: 0.4, Lambda: 1, Alpha: 1.5}},
		},
	}
}

func TestValidateServer(t *testing.T) {
	srv := NewRPPSServer(1, paperSet1(), []string{"s1", "s2", "s3", "s4"})
	if err := srv.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if srv.Sessions[0].Name != "s1" || srv.Sessions[3].Name != "s4" {
		t.Errorf("names not applied: %+v", srv.Sessions)
	}

	over := NewRPPSServer(0.8, paperSet1(), nil)
	if err := over.Validate(); !errors.Is(err, ErrOverloaded) {
		t.Errorf("overloaded server: err = %v, want ErrOverloaded", err)
	}

	empty := Server{Rate: 1}
	if err := empty.Validate(); err == nil {
		t.Error("empty server: want error")
	}

	badPhi := srv
	badPhi.Sessions = append([]Session(nil), srv.Sessions...)
	badPhi.Sessions[1].Phi = 0
	if err := badPhi.Validate(); err == nil {
		t.Error("zero phi: want error")
	}

	badRate := srv
	badRate.Rate = math.NaN()
	if err := badRate.Validate(); err == nil {
		t.Error("NaN rate: want error")
	}

	badEBB := srv
	badEBB.Sessions = append([]Session(nil), srv.Sessions...)
	badEBB.Sessions[2].Arrival.Alpha = -1
	if err := badEBB.Validate(); err == nil {
		t.Error("invalid EBB: want error")
	}
}

func TestGuaranteedRates(t *testing.T) {
	srv := NewRPPSServer(1, paperSet1(), nil)
	gs := srv.GuaranteedRates()
	sum := 0.0
	for i, g := range gs {
		if g != srv.GuaranteedRate(i) {
			t.Errorf("GuaranteedRates[%d] = %v != GuaranteedRate = %v", i, g, srv.GuaranteedRate(i))
		}
		sum += g
	}
	if math.Abs(sum-srv.Rate) > 1e-12 {
		t.Errorf("sum g = %v, want rate %v", sum, srv.Rate)
	}
	// RPPS: g_i = rho_i/sum(rho) · r; for Set 1 that's rho_i/0.9.
	want := 0.2 / 0.9
	if math.Abs(gs[0]-want) > 1e-12 {
		t.Errorf("g_1 = %v, want %v", gs[0], want)
	}
}

func TestIsRPPS(t *testing.T) {
	if !NewRPPSServer(1, paperSet1(), nil).IsRPPS() {
		t.Error("RPPS server not detected as RPPS")
	}
	if mixedServer().IsRPPS() {
		t.Error("mixed server detected as RPPS")
	}
}

func TestTotals(t *testing.T) {
	srv := NewRPPSServer(1, paperSet1(), nil)
	if got := srv.TotalRho(); math.Abs(got-0.9) > 1e-12 {
		t.Errorf("TotalRho = %v, want 0.9", got)
	}
	if got := srv.TotalPhi(); math.Abs(got-0.9) > 1e-12 {
		t.Errorf("TotalPhi = %v, want 0.9 for RPPS", got)
	}
	if got := srv.Slack(); math.Abs(got-0.1) > 1e-12 {
		t.Errorf("Slack = %v, want 0.1", got)
	}
	if got := len(srv.Arrivals()); got != 4 {
		t.Errorf("Arrivals len = %d, want 4", got)
	}
}

func TestDecomposedRates(t *testing.T) {
	srv := NewRPPSServer(1, paperSet1(), nil)
	for _, split := range []EpsilonSplit{SplitEqual, SplitProportional, SplitByPhi} {
		rates, err := srv.DecomposedRates(split, 1)
		if err != nil {
			t.Fatalf("%v: %v", split, err)
		}
		sum := 0.0
		for i, r := range rates {
			if r <= srv.Sessions[i].Arrival.Rho {
				t.Errorf("%v: rate[%d] = %v <= rho", split, i, r)
			}
			sum += r
		}
		if sum > srv.Rate+1e-12 {
			t.Errorf("%v: sum rates = %v > server rate", split, sum)
		}
	}
	// Proportional split preserves rho ratios of the epsilons.
	rates, _ := srv.DecomposedRates(SplitProportional, 1)
	e0 := rates[0] - 0.2
	e1 := rates[1] - 0.25
	if math.Abs(e0/e1-0.2/0.25) > 1e-9 {
		t.Errorf("proportional eps ratio = %v, want %v", e0/e1, 0.2/0.25)
	}
	if _, err := srv.DecomposedRates(SplitEqual, 0); err == nil {
		t.Error("frac = 0: want error")
	}
	if _, err := srv.DecomposedRates(SplitEqual, 1.5); err == nil {
		t.Error("frac > 1: want error")
	}
	if _, err := srv.DecomposedRates(EpsilonSplit(99), 1); err == nil {
		t.Error("unknown split: want error")
	}
}

func TestEpsilonSplitString(t *testing.T) {
	if SplitEqual.String() != "equal" || SplitProportional.String() != "proportional" || SplitByPhi.String() != "by-phi" {
		t.Error("EpsilonSplit String mismatch")
	}
	if EpsilonSplit(42).String() == "" {
		t.Error("unknown split String empty")
	}
}

func TestFeasibleOrderingSatisfiesEq5(t *testing.T) {
	srv := mixedServer()
	rates := []float64{0.2, 0.5}
	ord, err := srv.FeasibleOrdering(rates)
	if err != nil {
		t.Fatalf("FeasibleOrdering: %v", err)
	}
	remPhi := srv.TotalPhi()
	used := 0.0
	for _, i := range ord {
		limit := srv.Sessions[i].Phi / remPhi * (srv.Rate - used)
		if rates[i] > limit+1e-12 {
			t.Errorf("eq.(5) violated at session %d: %v > %v", i, rates[i], limit)
		}
		used += rates[i]
		remPhi -= srv.Sessions[i].Phi
	}
}

func TestFeasibleOrderingInfeasible(t *testing.T) {
	srv := Server{Rate: 1, Sessions: []Session{
		{Name: "x", Phi: 1, Arrival: ebb.Process{Rho: 0.4, Lambda: 1, Alpha: 1}},
		{Name: "y", Phi: 1, Arrival: ebb.Process{Rho: 0.4, Lambda: 1, Alpha: 1}},
	}}
	if _, err := srv.FeasibleOrdering([]float64{0.9, 0.9}); !errors.Is(err, ErrNoFeasibleOrdering) {
		t.Errorf("err = %v, want ErrNoFeasibleOrdering", err)
	}
	if _, err := srv.FeasibleOrdering([]float64{0.5}); err == nil {
		t.Error("mismatched rates length: want error")
	}
}

func TestFeasibleOrderingAlwaysExistsWhenRatesFit(t *testing.T) {
	// Paper §3: as long as Σr_i <= r a feasible ordering exists. Probe a
	// few random-ish configurations.
	srv := Server{Rate: 1, Sessions: []Session{
		{Name: "a", Phi: 5, Arrival: ebb.Process{Rho: 0.1, Lambda: 1, Alpha: 1}},
		{Name: "b", Phi: 1, Arrival: ebb.Process{Rho: 0.2, Lambda: 1, Alpha: 1}},
		{Name: "c", Phi: 0.1, Arrival: ebb.Process{Rho: 0.3, Lambda: 1, Alpha: 1}},
	}}
	for _, rates := range [][]float64{
		{0.2, 0.3, 0.5},
		{0.5, 0.3, 0.2},
		{0.15, 0.25, 0.35},
		{0.9, 0.05, 0.05},
	} {
		if _, err := srv.FeasibleOrdering(rates); err != nil {
			t.Errorf("rates %v: unexpected error %v", rates, err)
		}
	}
}

func TestFeasiblePartitionRPPSSingleClass(t *testing.T) {
	srv := NewRPPSServer(1, paperSet1(), nil)
	p, err := srv.FeasiblePartition()
	if err != nil {
		t.Fatalf("FeasiblePartition: %v", err)
	}
	if p.L() != 1 {
		t.Fatalf("RPPS partition has %d classes, want 1", p.L())
	}
	if len(p.Classes[0]) != 4 {
		t.Errorf("class size = %d, want 4", len(p.Classes[0]))
	}
	for i, c := range p.ClassOf {
		if c != 0 {
			t.Errorf("ClassOf[%d] = %d, want 0", i, c)
		}
	}
}

func TestFeasiblePartitionTwoClasses(t *testing.T) {
	srv := mixedServer()
	p, err := srv.FeasiblePartition()
	if err != nil {
		t.Fatalf("FeasiblePartition: %v", err)
	}
	if p.L() != 2 {
		t.Fatalf("partition has %d classes, want 2", p.L())
	}
	if p.ClassOf[0] != 0 || p.ClassOf[1] != 1 {
		t.Errorf("ClassOf = %v, want [0 1]", p.ClassOf)
	}
	rho, phi, members := srv.AggregateClass(p, 0)
	if rho != 0.1 || phi != 0.8 || len(members) != 1 {
		t.Errorf("AggregateClass = (%v, %v, %v)", rho, phi, members)
	}
}

func TestFeasiblePartitionStall(t *testing.T) {
	srv := Server{Rate: 1, Sessions: []Session{
		{Name: "x", Phi: 0.5, Arrival: ebb.Process{Rho: 0.6, Lambda: 1, Alpha: 1}},
		{Name: "y", Phi: 0.5, Arrival: ebb.Process{Rho: 0.6, Lambda: 1, Alpha: 1}},
	}}
	if _, err := srv.FeasiblePartition(); err == nil {
		t.Error("overloaded partition: want stall error")
	}
}

// Paper §7 example: three traffic classes with ρ/φ ratios 1, 4/3 and 2
// produce a three-class feasible partition when capacity allows.
func TestFeasiblePartitionThreeClasses(t *testing.T) {
	srv := Server{Rate: 1, Sessions: []Session{
		{Name: "hi", Phi: 0.60, Arrival: ebb.Process{Rho: 0.30, Lambda: 1, Alpha: 1}},
		{Name: "mid", Phi: 0.30, Arrival: ebb.Process{Rho: 0.30, Lambda: 1, Alpha: 1}},
		{Name: "lo", Phi: 0.15, Arrival: ebb.Process{Rho: 0.30, Lambda: 1, Alpha: 1}},
	}}
	if err := srv.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	p, err := srv.FeasiblePartition()
	if err != nil {
		t.Fatalf("FeasiblePartition: %v", err)
	}
	if p.L() != 3 {
		t.Fatalf("partition has %d classes, want 3: %v", p.L(), p.Classes)
	}
	for i, want := range []int{0, 1, 2} {
		if p.ClassOf[i] != want {
			t.Errorf("ClassOf[%d] = %d, want %d", i, p.ClassOf[i], want)
		}
	}
}
