package replication

import (
	"context"
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/wal"
)

// stripedFixture is a striped-WAL primary behind an httptest server.
type stripedFixture struct {
	dir  string
	logs []*wal.Log
	src  *Source
	ts   *httptest.Server
}

func newStripedPrimary(t *testing.T, n int, opts wal.Options) *stripedFixture {
	t.Helper()
	dir := t.TempDir()
	logs, _, err := wal.OpenStriped(dir, n, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		for _, l := range logs {
			l.Close()
		}
	})
	src := &Source{
		Dir:    dir,
		NodeID: "striped-primary-test",
		Head: func() uint64 {
			var sum uint64
			for _, l := range logs {
				sum += l.NextSeq() - 1
			}
			return sum
		},
		Stripes:    n,
		StripeHead: func(i int) uint64 { return logs[i].NextSeq() - 1 },
	}
	mux := http.NewServeMux()
	src.Mount(mux)
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)
	return &stripedFixture{dir: dir, logs: logs, src: src, ts: ts}
}

// TestStripedFollowerMirrorsAndAcks is the striped replication
// round trip: a follower mirrors the whole stripe set from one
// manifest — the stripes marker plus every stripe's files — acks the
// summed head with per-stripe verified sequences, and the mirror's
// per-stripe folds are byte- and bit-identical to the primary's. A
// second pull ships only the delta of the one stripe that moved.
func TestStripedFollowerMirrorsAndAcks(t *testing.T) {
	const n = 3
	p := newStripedPrimary(t, n, wal.Options{SegmentBytes: 512, Sync: wal.SyncAlways})
	counts := []int{10, 20, 30}
	for i, l := range p.logs {
		if err := l.Append(auditTestOps(counts[i])); err != nil {
			t.Fatal(err)
		}
	}

	f, err := NewFollower(FollowerOptions{
		ID: "f1", PrimaryURL: p.ts.URL, Dir: t.TempDir(),
		Rand: rand.New(rand.NewSource(1)),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := f.PullOnce(context.Background()); err != nil {
		t.Fatalf("first pull: %v", err)
	}
	if got := f.AckSeq(); got != 60 {
		t.Fatalf("ack after first pull = %d, want the summed head 60", got)
	}
	for i, want := range counts {
		min, ok := p.src.MinAckStripe(i)
		if !ok || min != uint64(want) {
			t.Fatalf("MinAckStripe(%d) = %d, %v, want %d", i, min, ok, want)
		}
	}

	// The mirror is a striped directory with the same recorded count,
	// and every stripe's shipped files are byte-identical.
	if got, err := wal.ReadStripes(f.o.Dir); err != nil || got != n {
		t.Fatalf("mirror ReadStripes = %d, %v, want %d", got, err, n)
	}
	for i := 0; i < n; i++ {
		sub := wal.StripeDirName(i)
		entries, err := os.ReadDir(filepath.Join(p.dir, sub))
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range entries {
			want, err := os.ReadFile(filepath.Join(p.dir, sub, e.Name()))
			if err != nil {
				t.Fatal(err)
			}
			got, err := os.ReadFile(filepath.Join(f.o.Dir, sub, e.Name()))
			if err != nil {
				t.Fatalf("mirror lacks %s/%s: %v", sub, e.Name(), err)
			}
			if string(got) != string(want) {
				t.Fatalf("mirror of %s/%s differs from primary", sub, e.Name())
			}
		}
	}

	// Incremental: only stripe 1 moves; the next pull ships its delta
	// and the per-stripe acks advance accordingly.
	more := auditTestOps(35)[20:]
	if err := p.logs[1].Append(more); err != nil {
		t.Fatal(err)
	}
	if err := f.PullOnce(context.Background()); err != nil {
		t.Fatalf("second pull: %v", err)
	}
	if got := f.AckSeq(); got != 75 {
		t.Fatalf("ack after second pull = %d, want 75", got)
	}
	if min, ok := p.src.MinAckStripe(1); !ok || min != 35 {
		t.Fatalf("MinAckStripe(1) = %d, %v, want 35", min, ok)
	}
	if min, ok := p.src.MinAckStripe(0); !ok || min != 10 {
		t.Fatalf("MinAckStripe(0) = %d, %v, want 10 (unmoved stripe regressed?)", min, ok)
	}

	// The mirror folds each stripe to the primary's exact state.
	primRecs, err := wal.ReadStriped(p.dir)
	if err != nil {
		t.Fatal(err)
	}
	mirRecs, err := wal.ReadStriped(f.o.Dir)
	if err != nil {
		t.Fatal(err)
	}
	for i := range primRecs {
		ps, err := primRecs[i].SessionSet()
		if err != nil {
			t.Fatal(err)
		}
		ms, err := mirRecs[i].SessionSet()
		if err != nil {
			t.Fatal(err)
		}
		if ms.Seq != ps.Seq || len(ms.Sessions) != len(ps.Sessions) ||
			math.Float64bits(ms.Used) != math.Float64bits(ps.Used) {
			t.Fatalf("stripe %d: mirror folds to seq %d/%d sessions/used bits %#x, primary %d/%d/%#x",
				i, ms.Seq, len(ms.Sessions), math.Float64bits(ms.Used),
				ps.Seq, len(ps.Sessions), math.Float64bits(ps.Used))
		}
	}
}

// TestStripedFollowerPinsUnknownStripes: a primary whose manifest
// declares stripes the follower has never acked must see those
// stripes' watermarks pinned at 0 — otherwise a fresh stripe could be
// pruned before any mirror holds it.
func TestStripedFollowerPinsUnknownStripes(t *testing.T) {
	p := newStripedPrimary(t, 2, wal.Options{Sync: wal.SyncAlways})
	if err := p.logs[0].Append(auditTestOps(5)); err != nil {
		t.Fatal(err)
	}
	// A follower acks with no stripe detail at all (a legacy flat ack).
	p.src.handleAckEntry(t)
	for i := 0; i < 2; i++ {
		if min, ok := p.src.MinAckStripe(i); !ok || min != 0 {
			t.Fatalf("MinAckStripe(%d) = %d, %v, want a 0 pin", i, min, ok)
		}
	}
}

// handleAckEntry registers a flat (no per-stripe detail) ack directly,
// as a legacy follower would send it.
func (s *Source) handleAckEntry(t *testing.T) {
	t.Helper()
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.acks == nil {
		s.acks = map[string]ackEntry{}
	}
	s.acks["legacy"] = ackEntry{seq: 5, last: s.now()}
}
