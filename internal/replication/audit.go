package replication

import (
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/wal"
)

// AuditFileName is the audit trail's file inside the WAL directory. It
// is append-only and shipped to followers exactly like a segment.
const AuditFileName = "audit.log"

// On-disk layout: a 20-byte header (magic, genesis sequence, batch
// size) followed by fixed 41-byte records:
//
//	'L' | seq u64 | leaf  [32]   one per op, gapless from genesis+1
//	'B' | batch u64 | head [32]  after every BatchN-th leaf: the sealed
//	                             chain head, so boot resumes without
//	                             re-hashing the whole trail
//
// A trailing partial record is a torn write and is truncated on the
// next open. Tampering is NOT detected here — that is walcheck's full
// re-verification, which recomputes every leaf from the WAL frames and
// refolds the chain; the daemon trusts its own disk the same way the
// WAL does.
const (
	auditHeaderLen = 20
	auditRecordLen = 41

	recLeaf = 'L'
	recSeal = 'B'
)

// ErrAudit is the sentinel for unrecoverable audit-trail damage.
var ErrAudit = errors.New("replication: corrupt audit trail")

// AuditError pinpoints audit-trail damage.
type AuditError struct{ Reason string }

func (e *AuditError) Error() string { return "replication: corrupt audit trail: " + e.Reason }

// Is makes errors.Is(err, ErrAudit) true for every AuditError.
func (e *AuditError) Is(target error) bool { return target == ErrAudit }

// AuditLeaf is one decoded leaf record.
type AuditLeaf struct {
	Seq  uint64
	Leaf Hash
}

// AuditSeal is one decoded seal record: the chain head the writer
// persisted after sealing batch number Batch.
type AuditSeal struct {
	Batch uint64
	Head  Hash
}

// AuditTrail is the decoded audit.log contents.
type AuditTrail struct {
	GenesisSeq uint64
	BatchN     int
	Leaves     []AuditLeaf
	Seals      []AuditSeal
	// SealedHead/SealedBatches reflect the last seal record (genesis
	// values when none).
	SealedHead    Hash
	SealedBatches uint64
	// TornBytes counts bytes dropped from a trailing partial record.
	TornBytes int64
}

// LeafHashes returns just the hashes, ordered by seq.
func (t *AuditTrail) LeafHashes() []Hash {
	out := make([]Hash, len(t.Leaves))
	for i, l := range t.Leaves {
		out[i] = l.Leaf
	}
	return out
}

// ReadAuditTrail decodes dir/audit.log. Missing file returns
// (nil, nil): the trail simply has not started yet. A torn trailing
// record is tolerated; structural damage (bad magic, sequence gaps,
// misplaced seals) is a typed *AuditError.
func ReadAuditTrail(dir string) (*AuditTrail, error) {
	data, err := os.ReadFile(filepath.Join(dir, AuditFileName))
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, err
	}
	return decodeAuditTrail(data)
}

func decodeAuditTrail(data []byte) (*AuditTrail, error) {
	if len(data) < auditHeaderLen {
		return nil, &AuditError{Reason: fmt.Sprintf("header is %d bytes, want %d", len(data), auditHeaderLen)}
	}
	if string(data[:8]) != auditMagic {
		return nil, &AuditError{Reason: "bad magic"}
	}
	t := &AuditTrail{
		GenesisSeq: binary.LittleEndian.Uint64(data[8:]),
		BatchN:     int(binary.LittleEndian.Uint32(data[16:])),
	}
	if t.BatchN <= 0 {
		return nil, &AuditError{Reason: fmt.Sprintf("batch size %d", t.BatchN)}
	}
	t.SealedHead = GenesisHead(t.GenesisSeq)
	body := data[auditHeaderLen:]
	whole := len(body) / auditRecordLen * auditRecordLen
	t.TornBytes = int64(len(body) - whole)
	next := t.GenesisSeq + 1
	for off := 0; off < whole; off += auditRecordLen {
		rec := body[off : off+auditRecordLen]
		switch rec[0] {
		case recLeaf:
			seq := binary.LittleEndian.Uint64(rec[1:])
			if seq != next {
				return nil, &AuditError{Reason: fmt.Sprintf("leaf sequence gap: want %d, record holds %d", next, seq)}
			}
			var h Hash
			copy(h[:], rec[9:])
			t.Leaves = append(t.Leaves, AuditLeaf{Seq: seq, Leaf: h})
			next++
		case recSeal:
			batch := binary.LittleEndian.Uint64(rec[1:])
			if batch != t.SealedBatches+1 {
				return nil, &AuditError{Reason: fmt.Sprintf("seal gap: want batch %d, record holds %d", t.SealedBatches+1, batch)}
			}
			if got := uint64(len(t.Leaves)); got != batch*uint64(t.BatchN) {
				return nil, &AuditError{Reason: fmt.Sprintf("seal %d after %d leaves, want %d", batch, got, batch*uint64(t.BatchN))}
			}
			copy(t.SealedHead[:], rec[9:])
			t.SealedBatches = batch
			t.Seals = append(t.Seals, AuditSeal{Batch: batch, Head: t.SealedHead})
		default:
			return nil, &AuditError{Reason: fmt.Sprintf("unknown record type %#x", rec[0])}
		}
	}
	return t, nil
}

// truncateTo drops every leaf above head, plus the seal records that
// sealed them. The trail is derived data: when it runs ahead of the
// durable log — a batch-mode audit flush that beat the WAL fsync
// before a crash, or a promoted follower whose mirrored audit.log
// outlives its truncated torn tail — the surplus attests ops that are
// no longer in the history and must go, or the chain head would embed
// a false history and every Record at a reused sequence would fail.
func (t *AuditTrail) truncateTo(head uint64) {
	if head < t.GenesisSeq {
		return // caller recreates the trail outright
	}
	keep := head - t.GenesisSeq
	if keep >= uint64(len(t.Leaves)) {
		return
	}
	t.Leaves = t.Leaves[:keep]
	seals := keep / uint64(t.BatchN)
	if seals < t.SealedBatches {
		t.Seals = t.Seals[:seals]
		t.SealedBatches = seals
		if seals > 0 {
			t.SealedHead = t.Seals[seals-1].Head
		} else {
			t.SealedHead = GenesisHead(t.GenesisSeq)
		}
	}
}

// Recheck recomputes the audit chain from the stored leaves and
// verifies every stored seal record against it — so editing a leaf
// record without re-deriving every later seal is caught even offline.
// It returns the recomputed head over the full stored history.
func (t *AuditTrail) Recheck() (Hash, error) {
	c := NewChain(t.GenesisSeq, t.BatchN)
	si := 0
	for _, l := range t.Leaves {
		sealed, err := c.Append(l.Seq, l.Leaf)
		if err != nil {
			return Hash{}, err
		}
		if sealed {
			head, batches := c.SealedHead()
			if si >= len(t.Seals) {
				return Hash{}, fmt.Errorf("trail lacks a seal record for batch %d", batches)
			}
			s := t.Seals[si]
			si++
			if s.Batch != batches || s.Head != head {
				return Hash{}, fmt.Errorf("seal for batch %d does not match the chain recomputed from the leaf records: the trail was rewritten", batches)
			}
		}
	}
	if si != len(t.Seals) {
		return Hash{}, fmt.Errorf("trail holds %d seal records, leaf history seals only %d batches", len(t.Seals), si)
	}
	return c.Head(), nil
}

// CrossCheckWAL re-hashes every decision frame still on disk and
// compares it against the trail's stored leaf — the check that catches
// a flipped byte in a shipped frame even when the flipper also fixed
// the frame's CRC. It returns how many ops were checkable (a pruned
// prefix is vouched for by the chain itself, not re-hashable).
func CrossCheckWAL(dir string, t *AuditTrail) (checked int, err error) {
	after, err := earliestAvailableSeq(dir)
	if err != nil {
		return 0, err
	}
	if after < t.GenesisSeq {
		after = t.GenesisSeq
	}
	ops, err := wal.ReadOps(dir, after)
	if err != nil {
		return 0, err
	}
	top := t.GenesisSeq + uint64(len(t.Leaves))
	var buf []byte
	for _, op := range ops {
		if op.Seq <= t.GenesisSeq || op.Seq > top {
			continue
		}
		buf = wal.EncodeOpPayload(buf[:0], op)
		if LeafHash(buf) != t.Leaves[op.Seq-t.GenesisSeq-1].Leaf {
			return checked, fmt.Errorf("decision frame at seq %d does not hash to its audit leaf: the frame or the trail was altered", op.Seq)
		}
		checked++
	}
	return checked, nil
}

// AuditOptions tune an Audit writer; the zero value is usable.
type AuditOptions struct {
	// BatchN is the Merkle batch size (default DefaultBatchN). Ignored
	// when the directory already holds a trail — its batch size wins.
	BatchN int
	// WALHead is the recovered durable head of the audited log
	// (wal.Log.NextSeq()-1); a pointer so an empty log's head 0 is
	// distinguishable from "not supplied". Nil makes OpenAudit derive
	// it with a read-only recovery pass over the directory.
	WALHead *uint64
	// FlushInterval is the group-flush window for leaf records
	// (default 5ms). Seals always flush + fsync immediately.
	FlushInterval time.Duration
	// QueueDepth bounds the pending-record queue (default 1<<15); a
	// full queue backpressures the writer rather than dropping leaves.
	QueueDepth int
}

func (o AuditOptions) withDefaults() AuditOptions {
	if o.BatchN <= 0 {
		o.BatchN = DefaultBatchN
	}
	if o.FlushInterval <= 0 {
		o.FlushInterval = 5 * time.Millisecond
	}
	if o.QueueDepth <= 0 {
		o.QueueDepth = 1 << 15
	}
	return o
}

// Audit appends the Merkle audit trail for a WAL directory. Record is
// called by the daemon's writer goroutine after every durable append;
// hashing and file I/O happen on a background goroutine so the
// admission hot path never absorbs a SHA-256 or a write(2).
type Audit struct {
	dir string
	o   AuditOptions

	mu    sync.Mutex // guards chain + file
	chain *Chain
	f     *os.File
	buf   []byte
	// fatal, once set, freezes the trail: the sink keeps draining the
	// queue (Record never blocks forever) but appends nothing more, so
	// the chain head can never drift from the durable history and
	// DurableSeq stops advancing — which holds the prune watermark and
	// makes the fault operator-visible instead of a silent counter.
	fatal error

	durable   atomic.Uint64 // highest seq fsynced into audit.log
	records   atomic.Int64
	seals     atomic.Int64
	flushErrs atomic.Int64

	// Record appends to q under qmu alone — it never touches mu, never
	// wakes the audit goroutine, and never pays a channel's
	// park/unpark round trip on the daemon's writer path. The audit
	// goroutine steals the whole slice each flush tick.
	qmu      sync.Mutex
	notFull  sync.Cond // signaled after each steal; Record waits when q is at QueueDepth
	q        []wal.Op
	spare    []wal.Op // recycled queue backing array (guarded by mu, handed over inside steal)
	enc      []byte   // scratch for tag+payload encoding (guarded by mu)
	stopping bool

	stop chan struct{}
	done chan struct{}
}

// OpenAudit opens (or starts) the audit trail for a WAL directory and
// reconciles it with the log in both directions: a trail that lags the
// WAL is backfilled by re-reading the raw op history, a trail that
// LEADS the WAL (its flush beat the WAL fsync before a crash, or a
// promoted follower's mirrored audit.log outlived the truncated torn
// tail) is cut back to the recovered head and re-derived, a missing
// trail starts a fresh chain at the earliest op still on disk, and a
// trail that cannot be reconciled (its gap was pruned away) is a typed
// error — the prune watermark exists exactly to keep that from
// happening.
func OpenAudit(dir string, o AuditOptions) (*Audit, error) {
	o = o.withDefaults()
	a := &Audit{
		dir:  dir,
		o:    o,
		stop: make(chan struct{}),
		done: make(chan struct{}),
	}
	a.notFull.L = &a.qmu
	trail, err := ReadAuditTrail(dir)
	if err != nil {
		return nil, err
	}
	if trail != nil {
		head, err := auditWALHead(dir, o)
		if err != nil {
			return nil, err
		}
		if trail.GenesisSeq > head {
			// Even the trail's genesis lies beyond the durable log: the
			// log was rebuilt or rolled back past it, so nothing stored
			// is attestable. Start the trail over.
			trail = nil
		} else {
			trail.truncateTo(head)
		}
	}
	var fileLen int64
	if trail == nil {
		genesis, err := earliestAvailableSeq(dir)
		if err != nil {
			return nil, err
		}
		a.chain = NewChain(genesis, o.BatchN)
		hdr := make([]byte, 0, auditHeaderLen)
		hdr = append(hdr, auditMagic...)
		hdr = binary.LittleEndian.AppendUint64(hdr, genesis)
		hdr = binary.LittleEndian.AppendUint32(hdr, uint32(o.BatchN))
		if err := os.WriteFile(filepath.Join(dir, AuditFileName), hdr, 0o644); err != nil {
			return nil, err
		}
		fileLen = auditHeaderLen
	} else {
		a.chain = NewChain(trail.GenesisSeq, trail.BatchN)
		a.o.BatchN = trail.BatchN
		// Resume from the last seal, replaying only the stored tail
		// leaves through the chain.
		sealSeq := trail.GenesisSeq + trail.SealedBatches*uint64(trail.BatchN)
		a.chain.restore(trail.SealedHead, trail.SealedBatches, sealSeq+1)
		for _, l := range trail.Leaves {
			if l.Seq <= sealSeq {
				continue
			}
			if _, err := a.chain.Append(l.Seq, l.Leaf); err != nil {
				return nil, err
			}
		}
		fileLen = auditHeaderLen + int64(len(trail.Leaves)+int(trail.SealedBatches))*auditRecordLen
	}
	f, err := os.OpenFile(filepath.Join(dir, AuditFileName), os.O_WRONLY, 0o644)
	if err != nil {
		return nil, err
	}
	// Truncate any torn trailing record so appends land on a record
	// boundary.
	if err := f.Truncate(fileLen); err != nil {
		f.Close()
		return nil, err
	}
	if _, err := f.Seek(fileLen, 0); err != nil {
		f.Close()
		return nil, err
	}
	a.f = f
	// Backfill leaves the trail is missing (a torn audit tail, or ops
	// appended after the last clean shutdown) from the raw WAL history.
	missing, err := wal.ReadOps(dir, a.chain.NextSeq()-1)
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("%w: trail ends at seq %d and the gap to the log is unreadable: %v",
			ErrAudit, a.chain.NextSeq()-1, err)
	}
	for _, op := range missing {
		if err := a.appendLocked(op); err != nil {
			f.Close()
			return nil, err
		}
	}
	if err := a.flushLocked(); err != nil {
		f.Close()
		return nil, err
	}
	go a.loop()
	return a, nil
}

// auditWALHead resolves the durable head OpenAudit reconciles against:
// the caller-supplied recovered head, or a read-only recovery pass
// (torn-tail tolerant, exactly what wal.Open would keep) when the
// caller has not opened the log itself.
func auditWALHead(dir string, o AuditOptions) (uint64, error) {
	if o.WALHead != nil {
		return *o.WALHead, nil
	}
	rec, err := wal.Read(dir)
	if err != nil {
		return 0, err
	}
	if n := len(rec.Ops); n > 0 {
		return rec.Ops[n-1].Seq, nil
	}
	return rec.State.Seq, nil
}

// earliestAvailableSeq finds where a fresh chain can start: just before
// the first record of the oldest segment, or at the newest snapshot
// when every segment has been pruned.
func earliestAvailableSeq(dir string) (uint64, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return 0, nil
		}
		return 0, err
	}
	first := uint64(0)
	haveSeg := false
	var snapSeq uint64
	for _, e := range entries {
		name := e.Name()
		switch {
		case wal.IsSegmentName(name):
			var s uint64
			if _, err := fmt.Sscanf(name, "wal-%x.seg", &s); err == nil {
				if !haveSeg || s < first {
					first = s
					haveSeg = true
				}
			}
		case wal.IsSnapshotName(name):
			var s uint64
			if _, err := fmt.Sscanf(name, "snap-%x.snap", &s); err == nil && s > snapSeq {
				snapSeq = s
			}
		}
	}
	if haveSeg {
		if first == 0 {
			return 0, nil
		}
		return first - 1, nil
	}
	return snapSeq, nil
}

// Record hands one durable op to the trail. Called after wal.Append
// succeeded, in append order; blocks only when the audit goroutine has
// fallen a full queue behind (backpressure, never loss). The cost on
// the writer path is one uncontended mutex and a slice append — no
// goroutine wakeup (the audit loop polls on its flush tick).
func (a *Audit) Record(op wal.Op) {
	a.qmu.Lock()
	for len(a.q) >= a.o.QueueDepth && !a.stopping {
		a.notFull.Wait()
	}
	if !a.stopping {
		a.q = append(a.q, op)
	}
	a.qmu.Unlock()
}

// steal takes the whole pending queue. Callers must hold a.mu, so the
// steal-then-append sequence is atomic and records keep append order
// even when Flush and the audit loop race.
func (a *Audit) steal() []wal.Op {
	a.qmu.Lock()
	batch := a.q
	a.q = a.spare[:0]
	a.spare = nil
	if len(batch) > 0 {
		a.notFull.Broadcast()
	}
	a.qmu.Unlock()
	return batch
}

// absorbLocked appends every stolen record and flushes; after a fatal
// error it only drains. Caller holds a.mu. The return value is the
// latched error, so Flush and Close keep surfacing it.
func (a *Audit) absorbLocked() error {
	batch := a.steal()
	if a.fatal == nil {
		for _, op := range batch {
			if err := a.appendLocked(op); err != nil {
				a.setFatalLocked(err)
				break // the chain demands gapless sequences; the rest cannot land either
			}
		}
	}
	a.spare = batch[:0] // recycle the drained backing array
	if a.fatal == nil {
		if err := a.flushLocked(); err != nil {
			a.setFatalLocked(err)
		}
	}
	return a.fatal
}

func (a *Audit) setFatalLocked(err error) {
	if a.fatal == nil {
		a.fatal = err
		a.flushErrs.Add(1)
	}
}

// Head returns the current chain head, the sealed batch count, and the
// next expected sequence, as one consistent snapshot. The head covers
// every op handed to Record that the audit goroutine has absorbed.
func (a *Audit) Head() (head Hash, sealed uint64, nextSeq uint64) {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.chain.Head(), a.chain.SealedBatches(), a.chain.NextSeq()
}

// GenesisSeq returns the first sequence the trail covers + 1's
// predecessor (leaves start at GenesisSeq+1).
func (a *Audit) GenesisSeq() uint64 { return a.chain.GenesisSeq }

// BatchN returns the trail's Merkle batch size.
func (a *Audit) BatchN() int { return a.o.BatchN }

// DurableSeq returns the highest sequence whose leaf record is fsynced
// — the audit trail's contribution to the WAL prune watermark.
func (a *Audit) DurableSeq() uint64 { return a.durable.Load() }

// Stats returns (leaf records written, seals written, fatal sink
// errors latched).
func (a *Audit) Stats() (records, seals, flushErrs int64) {
	return a.records.Load(), a.seals.Load(), a.flushErrs.Load()
}

// Err returns the latched fatal sink error, if any. Once set, the
// trail is frozen and DurableSeq holds the prune watermark; the daemon
// checks this from its watermark loop and /metrics exposes it.
func (a *Audit) Err() error {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.fatal
}

// appendLocked hashes one op into the chain and buffers its records.
func (a *Audit) appendLocked(op wal.Op) error {
	// Inlined LeafHash over a reused scratch buffer: tag byte, then the
	// frame payload, hashed alloc-free. Identical to
	// LeafHash(EncodeOpPayload(nil, op)).
	a.enc = append(a.enc[:0], tagLeaf)
	a.enc = wal.EncodeOpPayload(a.enc, op)
	leaf := Hash(sha256.Sum256(a.enc))
	sealed, err := a.chain.Append(op.Seq, leaf)
	if err != nil {
		return err
	}
	a.buf = append(a.buf, recLeaf)
	a.buf = binary.LittleEndian.AppendUint64(a.buf, op.Seq)
	a.buf = append(a.buf, leaf[:]...)
	a.records.Add(1)
	if sealed {
		head, batches := a.chain.SealedHead()
		a.buf = append(a.buf, recSeal)
		a.buf = binary.LittleEndian.AppendUint64(a.buf, batches)
		a.buf = append(a.buf, head[:]...)
		a.seals.Add(1)
		return a.flushLocked()
	}
	return nil
}

// flushLocked writes and fsyncs the buffered records.
func (a *Audit) flushLocked() error {
	if len(a.buf) == 0 {
		return nil
	}
	if _, err := a.f.Write(a.buf); err != nil {
		return err
	}
	a.buf = a.buf[:0]
	if err := a.f.Sync(); err != nil {
		return err
	}
	a.durable.Store(a.chain.NextSeq() - 1)
	return nil
}

// Flush absorbs every record handed to Record so far and forces the
// buffered tail to disk (promote and tests).
func (a *Audit) Flush() error {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.absorbLocked()
}

func (a *Audit) loop() {
	defer close(a.done)
	t := time.NewTicker(a.o.FlushInterval)
	defer t.Stop()
	absorb := func() {
		a.mu.Lock()
		_ = a.absorbLocked() // errors latch in a.fatal; Err surfaces them
		a.mu.Unlock()
	}
	for {
		select {
		case <-t.C:
			absorb()
		case <-a.stop:
			absorb()
			return
		}
	}
}

// Close drains pending records, flushes, and closes the file.
func (a *Audit) Close() error {
	select {
	case <-a.stop:
		<-a.done
		return nil
	default:
	}
	// Refuse new records before stopping the loop: everything queued
	// before this instant is absorbed, nothing after it is silently
	// half-recorded.
	a.qmu.Lock()
	a.stopping = true
	a.notFull.Broadcast()
	a.qmu.Unlock()
	close(a.stop)
	<-a.done
	a.mu.Lock()
	defer a.mu.Unlock()
	err := a.absorbLocked()
	if cerr := a.f.Close(); err == nil {
		err = cerr
	}
	return err
}
