// Package replication makes gpsd's admission history survive the
// machine holding it: a primary serves its closed WAL segments (plus
// snapshot and audit files) over HTTP, a warm-standby follower mirrors
// them byte-for-byte with per-frame CRC re-verification and folds the
// ops into a standby state, and failover is promote + truncate-torn-
// tail through the existing wal.Open recovery path — so a promoted
// follower's first epoch is bit-identical to an offline AnalyzeServer
// fold of the shipped log, exactly the invariant PR 5 proved for a
// single node.
//
// On top of the same op stream the package keeps a Merkle-verifiable
// audit trail (the military-audit-log batching shape): every decision
// frame's payload is hashed into a leaf, leaves are batched N at a time
// into Merkle roots, and roots are chained into a running log head. An
// operator who records the head out-of-band can later prove with
// walcheck -verify-proof that any admit/deny record is in the history
// and that the history is append-only — a CRC catches a cosmic ray, the
// chained head catches a rewrite.
package replication

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
)

// Hash is one SHA-256 digest in the audit trail.
type Hash = [sha256.Size]byte

// Domain-separation prefixes: a leaf can never be reinterpreted as an
// interior node or a chain link.
const (
	tagLeaf  = 0x00
	tagNode  = 0x01
	tagChain = 0x02
)

// auditMagic doubles as the chain's genesis salt and the audit file
// magic.
const auditMagic = "GPSAUDT1"

// LeafHash hashes one WAL op frame payload (the canonical encoding, so
// live ops and on-disk frames hash identically).
func LeafHash(payload []byte) Hash {
	h := sha256.New()
	h.Write([]byte{tagLeaf})
	h.Write(payload)
	var out Hash
	h.Sum(out[:0])
	return out
}

func nodeHash(l, r Hash) Hash {
	// Fixed-size input: one stack buffer and an alloc-free Sum256,
	// since batch seals fold BatchN-1 of these back to back.
	var b [1 + 2*sha256.Size]byte
	b[0] = tagNode
	copy(b[1:], l[:])
	copy(b[1+sha256.Size:], r[:])
	return sha256.Sum256(b[:])
}

// BatchRoot folds a batch of leaves into its Merkle root. An odd node
// at any level is promoted unchanged, so proofs stay position-binding
// without phantom duplicate leaves. A single leaf is its own root; the
// empty batch is disallowed by construction (batches seal at 1..N
// leaves).
func BatchRoot(leaves []Hash) Hash {
	level := append([]Hash(nil), leaves...)
	for len(level) > 1 {
		next := level[:0]
		for i := 0; i < len(level); i += 2 {
			if i+1 < len(level) {
				next = append(next, nodeHash(level[i], level[i+1]))
			} else {
				next = append(next, level[i])
			}
		}
		level = next
	}
	return level[0]
}

// GenesisHead is the chain head before any batch: a function of the
// first sequence the trail covers, so two trails over different
// histories can never share a head by accident.
func GenesisHead(genesisSeq uint64) Hash {
	h := sha256.New()
	h.Write([]byte(auditMagic))
	h.Write(binary.LittleEndian.AppendUint64(nil, genesisSeq))
	var out Hash
	h.Sum(out[:0])
	return out
}

// ChainStep folds one sealed batch into the running head. The batch's
// first sequence and count are bound into the link, so moving a root to
// a different position in the history changes the head.
func ChainStep(prev Hash, root Hash, firstSeq uint64, count uint32) Hash {
	h := sha256.New()
	h.Write([]byte{tagChain})
	h.Write(prev[:])
	h.Write(root[:])
	h.Write(binary.LittleEndian.AppendUint64(nil, firstSeq))
	h.Write(binary.LittleEndian.AppendUint32(nil, count))
	var out Hash
	h.Sum(out[:0])
	return out
}

// Chain is the incremental audit-chain state: sealed batches collapsed
// into one head, plus the pending leaves of the unfinished tail batch.
// Memory is O(BatchN), never O(history).
type Chain struct {
	GenesisSeq uint64
	BatchN     int

	sealedHead    Hash
	sealedBatches uint64
	nextSeq       uint64
	pending       []Hash
}

// NewChain starts an empty chain covering ops with Seq > genesisSeq.
func NewChain(genesisSeq uint64, batchN int) *Chain {
	if batchN <= 0 {
		batchN = DefaultBatchN
	}
	return &Chain{
		GenesisSeq: genesisSeq,
		BatchN:     batchN,
		sealedHead: GenesisHead(genesisSeq),
		nextSeq:    genesisSeq + 1,
	}
}

// DefaultBatchN is the default Merkle batch size (leaves per sealed
// root).
const DefaultBatchN = 1024

// NextSeq returns the op sequence the chain expects next.
func (c *Chain) NextSeq() uint64 { return c.nextSeq }

// SealedBatches returns how many batches have been folded into the
// sealed head.
func (c *Chain) SealedBatches() uint64 { return c.sealedBatches }

// Append adds one leaf. Sequences must arrive gaplessly — the audit
// trail mirrors the WAL's own discipline. sealed reports whether this
// leaf completed a batch (the caller persists a seal record then).
func (c *Chain) Append(seq uint64, leaf Hash) (sealed bool, err error) {
	if seq != c.nextSeq {
		return false, fmt.Errorf("replication: audit chain sequence gap: have %d, leaf is %d", c.nextSeq, seq)
	}
	c.pending = append(c.pending, leaf)
	c.nextSeq++
	if len(c.pending) >= c.BatchN {
		first := c.nextSeq - uint64(len(c.pending))
		c.sealedHead = ChainStep(c.sealedHead, BatchRoot(c.pending), first, uint32(len(c.pending)))
		c.sealedBatches++
		c.pending = c.pending[:0]
		return true, nil
	}
	return false, nil
}

// Head returns the chain head over everything appended so far: the
// sealed head extended by a provisional link over the pending tail
// batch, so any two parties holding the same op history compute the
// same head regardless of where the last batch boundary fell.
func (c *Chain) Head() Hash {
	if len(c.pending) == 0 {
		return c.sealedHead
	}
	first := c.nextSeq - uint64(len(c.pending))
	return ChainStep(c.sealedHead, BatchRoot(c.pending), first, uint32(len(c.pending)))
}

// SealedHead returns the head over sealed batches only, and their
// count — what a seal record persists.
func (c *Chain) SealedHead() (Hash, uint64) { return c.sealedHead, c.sealedBatches }

// restore rewinds a chain to a persisted seal point.
func (c *Chain) restore(sealedHead Hash, sealedBatches, nextSeq uint64) {
	c.sealedHead = sealedHead
	c.sealedBatches = sealedBatches
	c.nextSeq = nextSeq
	c.pending = c.pending[:0]
}

// Proof is a self-contained inclusion-and-extension proof: the leaf's
// Merkle path inside its batch, the chain head before that batch, and
// the roots of every later batch. Verifying folds leaf → batch root →
// head and compares against an attested head, which simultaneously
// proves the record is in the history and that the attested history is
// an append-only extension of the batch the record lives in.
type Proof struct {
	Seq  uint64
	Leaf Hash

	// Siblings[i] is the Merkle sibling at level i; SiblingLeft[i]
	// reports whether it sits to the left of the running hash.
	Siblings    []Hash
	SiblingLeft []bool

	// BatchFirst/BatchCount position the batch in the history;
	// PriorHead is the chain head over every earlier batch.
	BatchFirst uint64
	BatchCount uint32
	PriorHead  Hash

	// Later holds (root, firstSeq, count) for every batch after the
	// leaf's, in order.
	Later []ProofLink
}

// ProofLink is one later batch folded on top of the proven batch.
type ProofLink struct {
	Root     Hash
	FirstSeq uint64
	Count    uint32
}

// FoldHead computes the chain head over a full leaf history — the
// independent construction walcheck compares a live daemon's head
// against.
func FoldHead(genesisSeq uint64, batchN int, leaves []Hash) Hash {
	head := GenesisHead(genesisSeq)
	for i := 0; i < len(leaves); i += batchN {
		end := i + batchN
		if end > len(leaves) {
			end = len(leaves)
		}
		head = ChainStep(head, BatchRoot(leaves[i:end]), genesisSeq+1+uint64(i), uint32(end-i))
	}
	return head
}

// ProveInclusion builds the proof for the op at seq over a full leaf
// history (leaves[0] is seq genesisSeq+1).
func ProveInclusion(genesisSeq uint64, batchN int, leaves []Hash, seq uint64) (Proof, error) {
	if batchN <= 0 {
		return Proof{}, fmt.Errorf("replication: batch size %d", batchN)
	}
	if seq <= genesisSeq || seq > genesisSeq+uint64(len(leaves)) {
		return Proof{}, fmt.Errorf("replication: seq %d outside audited history (%d, %d]",
			seq, genesisSeq, genesisSeq+uint64(len(leaves)))
	}
	idx := int(seq - genesisSeq - 1)
	b := idx / batchN
	start := b * batchN
	end := start + batchN
	if end > len(leaves) {
		end = len(leaves)
	}
	batch := leaves[start:end]
	p := Proof{
		Seq:        seq,
		Leaf:       leaves[idx],
		BatchFirst: genesisSeq + 1 + uint64(start),
		BatchCount: uint32(len(batch)),
		PriorHead:  FoldHead(genesisSeq, batchN, leaves[:start]),
	}
	// Merkle path with odd-promotion: a node with no sibling at some
	// level contributes nothing to the path.
	pos := idx - start
	level := append([]Hash(nil), batch...)
	for len(level) > 1 {
		// Odd-promotion: a node with no sibling at this level rises
		// unchanged and contributes nothing to the path.
		if sib := pos ^ 1; sib < len(level) {
			p.Siblings = append(p.Siblings, level[sib])
			p.SiblingLeft = append(p.SiblingLeft, sib < pos)
		}
		next := level[:0]
		for i := 0; i < len(level); i += 2 {
			if i+1 < len(level) {
				next = append(next, nodeHash(level[i], level[i+1]))
			} else {
				next = append(next, level[i])
			}
		}
		level = next
		pos /= 2
	}
	for s := end; s < len(leaves); s += batchN {
		e := s + batchN
		if e > len(leaves) {
			e = len(leaves)
		}
		p.Later = append(p.Later, ProofLink{
			Root:     BatchRoot(leaves[s:e]),
			FirstSeq: genesisSeq + 1 + uint64(s),
			Count:    uint32(e - s),
		})
	}
	return p, nil
}

// VerifyProof folds the proof and returns the head it implies; the
// caller compares it against the attested head. It needs no access to
// the history itself.
func VerifyProof(p Proof) Hash {
	cur := p.Leaf
	for i, sib := range p.Siblings {
		if p.SiblingLeft[i] {
			cur = nodeHash(sib, cur)
		} else {
			cur = nodeHash(cur, sib)
		}
	}
	head := ChainStep(p.PriorHead, cur, p.BatchFirst, p.BatchCount)
	for _, l := range p.Later {
		head = ChainStep(head, l.Root, l.FirstSeq, l.Count)
	}
	return head
}
