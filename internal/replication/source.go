package replication

import (
	"encoding/hex"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/wal"
)

// Source is the primary side of replication: three read-mostly HTTP
// handlers over the WAL directory. It never mutates the log — shipping
// is pull-based, so a slow or absent follower costs the primary nothing
// but retained segments (and the prune watermark guarantees exactly
// that retention).
type Source struct {
	// Dir is the WAL directory to ship.
	Dir string
	// NodeID names this primary in manifests.
	NodeID string
	// Head returns the highest durable op sequence (wal.Log.NextSeq-1).
	// For a striped primary it is the sum over stripes, so followers and
	// smoke checks see one monotone head either way.
	Head func() uint64
	// Stripes is the stripe count of a striped WAL directory; 0 ships
	// the flat single-writer layout.
	Stripes int
	// StripeHead returns stripe i's highest durable op sequence
	// (required when Stripes > 0).
	StripeHead func(i int) uint64
	// Audit supplies chain-head fields for the manifest; nil omits them.
	Audit *Audit
	// OnAck, when set, runs after every recorded ack — the wiring layer
	// recomputes the prune watermark there.
	OnAck func()
	// AckTTL expires a follower's ack entry after this much ack
	// inactivity, so a permanently dead follower (or a one-shot client
	// that posted an arbitrary follower_id once — the endpoint is
	// unauthenticated) cannot pin the prune watermark and grow the disk
	// forever. 0 means DefaultAckTTL; negative disables expiry. An
	// expired follower that returns may find its promised history
	// pruned and stall with a permanent lag — wiping its mirror
	// directory reseeds it.
	AckTTL time.Duration
	// Now stubs time for tests; nil means time.Now.
	Now func() time.Time

	mu   sync.Mutex
	acks map[string]ackEntry

	fetches      atomic.Int64
	bytesShipped atomic.Int64
	acksTotal    atomic.Int64
}

// DefaultAckTTL is how long a silent follower's ack keeps holding
// segments before it expires (Source.AckTTL overrides).
const DefaultAckTTL = 5 * time.Minute

// ackEntry is one follower's progress plus its liveness stamp. For a
// striped primary, stripeSeqs holds the per-stripe verified heads the
// follower reported alongside its aggregate.
type ackEntry struct {
	seq        uint64
	stripeSeqs []uint64
	last       time.Time
}

func (s *Source) now() time.Time {
	if s.Now != nil {
		return s.Now()
	}
	return time.Now()
}

// expireLocked drops followers whose newest ack is older than the TTL.
// Called lazily under s.mu from every reader, so the watermark loop's
// periodic MinAck enforces expiry even when no acks arrive at all.
func (s *Source) expireLocked() {
	ttl := s.AckTTL
	if ttl == 0 {
		ttl = DefaultAckTTL
	}
	if ttl < 0 {
		return
	}
	now := s.now()
	for id, e := range s.acks {
		if now.Sub(e.last) > ttl {
			delete(s.acks, id)
		}
	}
}

// Mount registers the replication endpoints on mux.
func (s *Source) Mount(mux *http.ServeMux) {
	mux.HandleFunc("GET /v1/repl/status", s.handleStatus)
	mux.HandleFunc("GET /v1/repl/fetch", s.handleFetch)
	mux.HandleFunc("POST /v1/repl/ack", s.handleAck)
}

// MinAck returns the lowest acked sequence over every live follower
// (acked within AckTTL), and whether any exists. A primary with no
// live followers holds nothing back on their behalf.
func (s *Source) MinAck() (uint64, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.expireLocked()
	if len(s.acks) == 0 {
		return 0, false
	}
	min, first := uint64(0), true
	for _, e := range s.acks {
		if first || e.seq < min {
			min, first = e.seq, false
		}
	}
	return min, true
}

// MinAckStripe returns the lowest acked sequence for stripe i over
// every live follower that has reported per-stripe progress, and
// whether any has. The per-stripe prune watermark folds it in exactly
// as MinAck feeds the flat one.
func (s *Source) MinAckStripe(i int) (uint64, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.expireLocked()
	min, any := uint64(0), false
	for _, e := range s.acks {
		if i >= len(e.stripeSeqs) {
			// A follower that never reported this stripe pins it whole.
			return 0, true
		}
		if !any || e.stripeSeqs[i] < min {
			min, any = e.stripeSeqs[i], true
		}
	}
	return min, any
}

// Acks returns a copy of the per-follower ack table (live entries
// only).
func (s *Source) Acks() map[string]uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.expireLocked()
	out := make(map[string]uint64, len(s.acks))
	for k, e := range s.acks {
		out[k] = e.seq
	}
	return out
}

// manifestFiles lists the shippable files in apply order: segments by
// sequence, then snapshots, then the audit trail. A striped primary
// leads with the stripe-count marker and then lists each stripe's
// files in that per-stripe order under "stripe-NN/" names, so the
// follower mirrors the exact on-disk layout a promoted daemon boots
// from.
func (s *Source) manifestFiles() ([]ManifestFile, error) {
	if s.Stripes <= 0 {
		return s.dirFiles(s.Dir, "")
	}
	info, err := os.Stat(filepath.Join(s.Dir, wal.StripesFileName))
	if err != nil {
		return nil, err
	}
	out := []ManifestFile{{Name: wal.StripesFileName, Size: info.Size()}}
	for i := 0; i < s.Stripes; i++ {
		sub := wal.StripeDirName(i)
		files, err := s.dirFiles(filepath.Join(s.Dir, sub), sub+"/")
		if err != nil {
			return nil, err
		}
		out = append(out, files...)
	}
	return out, nil
}

// dirFiles lists one WAL directory's shippable files in apply order,
// prefixing every name with prefix.
func (s *Source) dirFiles(dir, prefix string) ([]ManifestFile, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) && prefix != "" {
			return nil, nil // stripe dir not created yet
		}
		return nil, err
	}
	var segs, snaps []ManifestFile
	var audit, marker *ManifestFile
	for _, e := range entries {
		name := e.Name()
		info, err := e.Info()
		if err != nil {
			continue // raced a prune
		}
		mf := ManifestFile{Name: prefix + name, Size: info.Size()}
		switch {
		case IsShippableSegment(name):
			segs = append(segs, mf)
		case IsShippableSnapshot(name):
			snaps = append(snaps, mf)
		case name == AuditFileName:
			a := mf
			audit = &a
		case name == wal.CoordMarkerName && prefix == "":
			// A coordinator journal's layout marker leads the manifest
			// (like the stripe-count file) so a promoted standby's mirror
			// is a complete coordinator directory.
			m := mf
			marker = &m
		}
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].Name < segs[j].Name })
	sort.Slice(snaps, func(i, j int) bool { return snaps[i].Name < snaps[j].Name })
	out := append(segs, snaps...)
	if audit != nil {
		out = append(out, *audit)
	}
	if marker != nil {
		out = append([]ManifestFile{*marker}, out...)
	}
	return out, nil
}

func (s *Source) handleStatus(w http.ResponseWriter, r *http.Request) {
	files, err := s.manifestFiles()
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	m := Manifest{
		NodeID:   s.NodeID,
		HeadSeq:  s.Head(),
		UnixNano: s.now().UnixNano(),
		Stripes:  s.Stripes,
		Files:    files,
	}
	if s.Stripes > 0 && s.StripeHead != nil {
		m.StripeHeads = make([]uint64, s.Stripes)
		for i := range m.StripeHeads {
			m.StripeHeads[i] = s.StripeHead(i)
		}
	}
	if s.Audit != nil {
		head, _, _ := s.Audit.Head()
		m.AuditGenesis = s.Audit.GenesisSeq()
		m.AuditBatchN = s.Audit.BatchN()
		m.AuditHead = hex.EncodeToString(head[:])
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(m)
}

func (s *Source) handleFetch(w http.ResponseWriter, r *http.Request) {
	name := r.URL.Query().Get("file")
	if !isShippableName(name) {
		http.Error(w, "not a shippable file", http.StatusBadRequest)
		return
	}
	off, err := strconv.ParseInt(r.URL.Query().Get("off"), 10, 64)
	if err != nil || off < 0 {
		http.Error(w, "bad offset", http.StatusBadRequest)
		return
	}
	f, err := os.Open(filepath.Join(s.Dir, name))
	if err != nil {
		if os.IsNotExist(err) {
			http.Error(w, "file pruned", http.StatusGone)
			return
		}
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	defer f.Close()
	info, err := f.Stat()
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	// Snapshot the size once: the file may keep growing while we
	// stream, and a consistent FileSize lets the follower bound-check
	// every chunk.
	size := info.Size()
	if off > size {
		http.Error(w, "offset beyond file", http.StatusRequestedRangeNotSatisfiable)
		return
	}
	s.fetches.Add(1)
	w.Header().Set("Content-Type", "application/octet-stream")
	if _, err := io.WriteString(w, shipMagic); err != nil {
		return
	}
	buf := make([]byte, 0, shipMaxChunk+64)
	payload := make([]byte, shipMaxChunk)
	for off < size {
		n := size - off
		if n > shipMaxChunk {
			n = shipMaxChunk
		}
		if _, err := f.ReadAt(payload[:n], off); err != nil {
			return // cut the stream: no end chunk means the follower discards nothing but retries
		}
		buf = buf[:0]
		buf, err = AppendChunk(buf, FileChunk{Name: name, Off: off, FileSize: size, Payload: payload[:n]})
		if err != nil {
			return
		}
		if _, err := w.Write(buf); err != nil {
			return
		}
		s.bytesShipped.Add(n)
		off += n
	}
	_, _ = w.Write(AppendEnd(nil))
}

func (s *Source) handleAck(w http.ResponseWriter, r *http.Request) {
	var a Ack
	if err := json.NewDecoder(io.LimitReader(r.Body, 1<<16)).Decode(&a); err != nil || a.FollowerID == "" {
		http.Error(w, "bad ack", http.StatusBadRequest)
		return
	}
	s.mu.Lock()
	if s.acks == nil {
		s.acks = map[string]ackEntry{}
	}
	// Acks are monotone per follower — a delayed duplicate can't lower
	// the watermark — but any ack refreshes liveness.
	e, ok := s.acks[a.FollowerID]
	if !ok || a.AckSeq > e.seq {
		e.seq = a.AckSeq
	}
	if len(a.StripeSeqs) > len(e.stripeSeqs) {
		grown := make([]uint64, len(a.StripeSeqs))
		copy(grown, e.stripeSeqs)
		e.stripeSeqs = grown
	}
	for i, seq := range a.StripeSeqs {
		if seq > e.stripeSeqs[i] {
			e.stripeSeqs[i] = seq
		}
	}
	e.last = s.now()
	s.acks[a.FollowerID] = e
	s.mu.Unlock()
	s.acksTotal.Add(1)
	if s.OnAck != nil {
		s.OnAck()
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(AckReply{HeadSeq: s.Head()})
}

// WriteMetrics renders the primary-side replication metrics.
func (s *Source) WriteMetrics(w io.Writer) {
	minAck, ok := s.MinAck()
	nFollowers := 0
	s.mu.Lock()
	nFollowers = len(s.acks)
	s.mu.Unlock()
	if s.Audit != nil {
		fatal := int64(0)
		if s.Audit.Err() != nil {
			fatal = 1
		}
		writeGauge(w, "gpsd_audit_fatal", "1 when the audit sink latched a fatal error and froze the trail (prune watermark held)", fatal)
	}
	writeCounter(w, "gpsd_repl_fetches_total", "replication fetch requests served", s.fetches.Load())
	writeCounter(w, "gpsd_repl_shipped_bytes_total", "file bytes shipped to followers", s.bytesShipped.Load())
	writeCounter(w, "gpsd_repl_acks_total", "follower acks received", s.acksTotal.Load())
	writeGauge(w, "gpsd_repl_followers", "followers that have acked at least once", int64(nFollowers))
	if ok {
		writeGauge(w, "gpsd_repl_min_acked_seq", "lowest follower-acked op sequence", int64(minAck))
	}
}

// IsShippableSegment reports whether name is a WAL segment file.
func IsShippableSegment(name string) bool { return filepath.Base(name) == name && isSeg(name) }

// IsShippableSnapshot reports whether name is a WAL snapshot file.
func IsShippableSnapshot(name string) bool { return filepath.Base(name) == name && isSnap(name) }

// splitStripePrefix splits a manifest name into its stripe directory
// prefix ("" for flat-layout names) and base name, accepting only the
// exact "stripe-NN/" shape — anything else with a separator is
// rejected wholesale, so fetch paths can never escape the WAL
// directory.
func splitStripePrefix(name string) (prefix, base string, ok bool) {
	i := strings.IndexByte(name, '/')
	if i < 0 {
		return "", name, true
	}
	prefix, base = name[:i], name[i+1:]
	if strings.ContainsAny(base, "/\\") || !isStripeDir(prefix) {
		return "", "", false
	}
	return prefix, base, true
}

// isStripeDir matches exactly the wal.StripeDirName shape.
func isStripeDir(s string) bool {
	if len(s) < len("stripe-00") || !strings.HasPrefix(s, "stripe-") {
		return false
	}
	for _, c := range s[len("stripe-"):] {
		if c < '0' || c > '9' {
			return false
		}
	}
	return len(s) <= len("stripe-")+4
}

func isShippableName(name string) bool {
	if name == "" || strings.Contains(name, "..") || strings.ContainsAny(name, "\\") {
		return false
	}
	if name == wal.StripesFileName || name == wal.CoordMarkerName {
		return true
	}
	_, base, ok := splitStripePrefix(name)
	if !ok || base != filepath.Base(base) {
		return false
	}
	return isSeg(base) || isSnap(base) || base == AuditFileName
}
