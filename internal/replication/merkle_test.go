package replication

import (
	"encoding/binary"
	"testing"
)

func seqLeaves(n int) []Hash {
	leaves := make([]Hash, n)
	for i := range leaves {
		leaves[i] = LeafHash(binary.LittleEndian.AppendUint64(nil, uint64(i)))
	}
	return leaves
}

// TestChainMatchesFoldHead: the incremental Chain and the batch
// FoldHead construction must agree at every prefix length, for batch
// sizes that divide the history evenly and ones that leave a partial
// tail.
func TestChainMatchesFoldHead(t *testing.T) {
	leaves := seqLeaves(23)
	for _, batchN := range []int{1, 2, 3, 7, 23, 100} {
		c := NewChain(5, batchN)
		for i, leaf := range leaves {
			if _, err := c.Append(5+1+uint64(i), leaf); err != nil {
				t.Fatal(err)
			}
			want := FoldHead(5, batchN, leaves[:i+1])
			if got := c.Head(); got != want {
				t.Fatalf("batchN=%d prefix=%d: incremental head != folded head", batchN, i+1)
			}
		}
	}
}

// TestChainRejectsGaps: the chain enforces the WAL's gapless sequence
// discipline.
func TestChainRejectsGaps(t *testing.T) {
	c := NewChain(0, 4)
	if _, err := c.Append(1, LeafHash([]byte("a"))); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Append(3, LeafHash([]byte("b"))); err == nil {
		t.Fatal("gap 1->3 accepted")
	}
	if _, err := c.Append(1, LeafHash([]byte("b"))); err == nil {
		t.Fatal("duplicate seq accepted")
	}
}

// TestGenesisBindsHead: two histories with identical leaves but a
// different starting sequence must never share a head.
func TestGenesisBindsHead(t *testing.T) {
	leaves := seqLeaves(10)
	if FoldHead(0, 4, leaves) == FoldHead(1, 4, leaves) {
		t.Fatal("heads collide across different genesis sequences")
	}
}

// TestProofVerifies: every position in a multi-batch history with a
// partial tail batch proves and verifies against the folded head.
func TestProofVerifies(t *testing.T) {
	const genesis, batchN = 100, 4
	leaves := seqLeaves(11) // 2 full batches + tail of 3
	want := FoldHead(genesis, batchN, leaves)
	for seq := uint64(genesis + 1); seq <= genesis+11; seq++ {
		p, err := ProveInclusion(genesis, batchN, leaves, seq)
		if err != nil {
			t.Fatal(err)
		}
		if got := VerifyProof(p); got != want {
			t.Fatalf("seq %d: proof folds to wrong head", seq)
		}
	}
}

// TestProofRejectsTamper: flipping any byte of any leaf changes the
// folded head, so a proof built from the tampered history no longer
// matches the attested head — for every leaf position and every proof
// position.
func TestProofRejectsTamper(t *testing.T) {
	const genesis, batchN = 0, 4
	leaves := seqLeaves(9)
	attested := FoldHead(genesis, batchN, leaves)
	for victim := range leaves {
		mut := append([]Hash(nil), leaves...)
		mut[victim][7] ^= 0x40
		if FoldHead(genesis, batchN, mut) == attested {
			t.Fatalf("tampered leaf %d left head unchanged", victim)
		}
		for seq := uint64(1); seq <= 9; seq++ {
			p, err := ProveInclusion(genesis, batchN, mut, seq)
			if err != nil {
				t.Fatal(err)
			}
			if VerifyProof(p) == attested {
				t.Fatalf("proof for seq %d over history with tampered leaf %d verified", seq, victim)
			}
		}
	}
}

// TestProofRejectsReorder: swapping two adjacent leaves (an append-only
// violation that preserves the leaf multiset) changes the head.
func TestProofRejectsReorder(t *testing.T) {
	leaves := seqLeaves(8)
	attested := FoldHead(0, 4, leaves)
	for i := 0; i+1 < len(leaves); i++ {
		mut := append([]Hash(nil), leaves...)
		mut[i], mut[i+1] = mut[i+1], mut[i]
		if FoldHead(0, 4, mut) == attested {
			t.Fatalf("swap at %d left head unchanged", i)
		}
	}
}

// TestProofRejectsTruncation: a head over a shortened history differs —
// history is provably append-only.
func TestProofRejectsTruncation(t *testing.T) {
	leaves := seqLeaves(10)
	attested := FoldHead(0, 4, leaves)
	for n := 0; n < 10; n++ {
		if FoldHead(0, 4, leaves[:n]) == attested {
			t.Fatalf("truncation to %d leaves left head unchanged", n)
		}
	}
}

// TestProveInclusionBounds: out-of-range sequences error.
func TestProveInclusionBounds(t *testing.T) {
	leaves := seqLeaves(4)
	for _, seq := range []uint64{0, 5, 10} {
		if _, err := ProveInclusion(0, 4, leaves, seq); err == nil {
			t.Fatalf("seq %d outside history proved", seq)
		}
	}
}

// TestLeafDomainSeparation: a leaf hash of bytes X must differ from an
// interior node hash whose concatenated children happen to equal X.
func TestLeafDomainSeparation(t *testing.T) {
	var l, r Hash
	l[0], r[0] = 1, 2
	concat := append(append([]byte(nil), l[:]...), r[:]...)
	if LeafHash(concat) == nodeHash(l, r) {
		t.Fatal("leaf and node hashes share a domain")
	}
}
