package replication

import (
	"fmt"
	"io"

	"repro/internal/wal"
)

func isSeg(name string) bool  { return wal.IsSegmentName(name) }
func isSnap(name string) bool { return wal.IsSnapshotName(name) }

func writeCounter(w io.Writer, name, help string, v int64) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
}

func writeGauge(w io.Writer, name, help string, v int64) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %d\n", name, help, name, name, v)
}

func writeGaugeF(w io.Writer, name, help string, v float64) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %g\n", name, help, name, name, v)
}
