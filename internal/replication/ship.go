package replication

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
)

// Wire protocol between a primary's Source and a warm-standby Follower.
//
//	GET  /v1/repl/status          → JSON Manifest
//	GET  /v1/repl/fetch?file=&off= → "GPSSHIP1" + chunk stream
//	POST /v1/repl/ack             → JSON Ack
//
// The fetch body is a self-delimiting stream of CRC-framed chunks so a
// cut TCP connection can never be mistaken for a complete transfer: the
// stream is valid only if it ends with an end-of-stream chunk, and every
// data chunk carries a CRC32-C over its payload (the same Castagnoli
// polynomial the WAL frames use). A follower therefore verifies shipped
// bytes twice — once per chunk on receipt, and again frame-by-frame
// through the recovery decoder before acking.

// shipMagic opens every fetch response body.
const shipMagic = "GPSSHIP1"

// Chunk types.
const (
	chunkData = 1 // file bytes at an offset
	chunkEnd  = 2 // end of stream: transfer is complete
)

// shipMaxChunk bounds one chunk's payload; also the decoder's
// allocation guard against hostile lengths.
const shipMaxChunk = 1 << 18

var shipCRC = crc32.MakeTable(crc32.Castagnoli)

// Manifest is the primary's replication status document: the durable
// head, the audit-chain position, and every shippable file with its
// current size. File order is the apply order a follower should use.
type Manifest struct {
	NodeID   string `json:"node_id"`
	HeadSeq  uint64 `json:"head_seq"` // highest durable op sequence (sum over stripes)
	UnixNano int64  `json:"unix_nano"`

	// Stripes and StripeHeads describe a striped primary: the stripe
	// count and each stripe's own durable head. 0/absent means the flat
	// single-writer layout.
	Stripes     int      `json:"stripes,omitempty"`
	StripeHeads []uint64 `json:"stripe_heads,omitempty"`

	AuditGenesis uint64 `json:"audit_genesis"`
	AuditBatchN  int    `json:"audit_batch_n"`
	AuditHead    string `json:"audit_head"` // hex chain head

	Files []ManifestFile `json:"files"`
}

// ManifestFile describes one shippable file.
type ManifestFile struct {
	Name string `json:"name"`
	Size int64  `json:"size"`
}

// Ack is the follower's durable-apply acknowledgement: every op with
// Seq <= AckSeq is on the follower's disk and frame-verified. The
// primary folds it into the prune watermark.
type Ack struct {
	FollowerID string `json:"follower_id"`
	AckSeq     uint64 `json:"ack_seq"`
	// StripeSeqs carries the per-stripe verified heads when the primary
	// is striped (AckSeq is then their sum); absent for a flat mirror.
	StripeSeqs []uint64 `json:"stripe_seqs,omitempty"`
}

// AckReply returns the primary's current watermark view.
type AckReply struct {
	HeadSeq uint64 `json:"head_seq"`
}

// ShipError is a typed wire-protocol decode failure. A follower treats
// it as a transport fault (retry), never as local divergence.
type ShipError struct{ Reason string }

func (e *ShipError) Error() string { return "replication: ship stream: " + e.Reason }

// FileChunk is one decoded data chunk.
type FileChunk struct {
	Name     string
	Off      int64
	FileSize int64 // total file size at send time
	Payload  []byte
}

// AppendChunk encodes one data chunk:
//
//	u8 type | u16 nameLen | name | u64 off | u64 fileSize |
//	u32 payloadLen | u32 crc32c(payload) | payload
func AppendChunk(b []byte, c FileChunk) ([]byte, error) {
	if len(c.Name) > 1<<10 {
		return b, fmt.Errorf("replication: file name %d bytes", len(c.Name))
	}
	if len(c.Payload) > shipMaxChunk {
		return b, fmt.Errorf("replication: chunk payload %d bytes exceeds %d", len(c.Payload), shipMaxChunk)
	}
	b = append(b, chunkData)
	b = binary.LittleEndian.AppendUint16(b, uint16(len(c.Name)))
	b = append(b, c.Name...)
	b = binary.LittleEndian.AppendUint64(b, uint64(c.Off))
	b = binary.LittleEndian.AppendUint64(b, uint64(c.FileSize))
	b = binary.LittleEndian.AppendUint32(b, uint32(len(c.Payload)))
	b = binary.LittleEndian.AppendUint32(b, crc32.Checksum(c.Payload, shipCRC))
	b = append(b, c.Payload...)
	return b, nil
}

// AppendEnd encodes the end-of-stream chunk.
func AppendEnd(b []byte) []byte { return append(b, chunkEnd) }

// ChunkReader decodes a fetch response body chunk by chunk.
type ChunkReader struct {
	r      io.Reader
	opened bool
	done   bool
	buf    []byte
}

// NewChunkReader wraps a fetch response body.
func NewChunkReader(r io.Reader) *ChunkReader { return &ChunkReader{r: r} }

func (cr *ChunkReader) fill(n int) ([]byte, error) {
	if cap(cr.buf) < n {
		cr.buf = make([]byte, n)
	}
	b := cr.buf[:n]
	if _, err := io.ReadFull(cr.r, b); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return nil, &ShipError{Reason: "stream cut mid-chunk"}
		}
		return nil, err
	}
	return b, nil
}

// Next returns the next data chunk. io.EOF means the stream ended
// cleanly with an end chunk; any other error means the transfer cannot
// be trusted. The returned chunk's Payload is valid until the next
// call.
func (cr *ChunkReader) Next() (FileChunk, error) {
	if cr.done {
		return FileChunk{}, io.EOF
	}
	if !cr.opened {
		m, err := cr.fill(len(shipMagic))
		if err != nil {
			return FileChunk{}, err
		}
		if string(m) != shipMagic {
			return FileChunk{}, &ShipError{Reason: "bad stream magic"}
		}
		cr.opened = true
	}
	t, err := cr.fill(1)
	if err != nil {
		return FileChunk{}, err
	}
	switch t[0] {
	case chunkEnd:
		cr.done = true
		return FileChunk{}, io.EOF
	case chunkData:
	default:
		return FileChunk{}, &ShipError{Reason: fmt.Sprintf("unknown chunk type %#x", t[0])}
	}
	h, err := cr.fill(2)
	if err != nil {
		return FileChunk{}, err
	}
	nameLen := int(binary.LittleEndian.Uint16(h))
	if nameLen == 0 || nameLen > 1<<10 {
		return FileChunk{}, &ShipError{Reason: fmt.Sprintf("file name length %d", nameLen)}
	}
	nb, err := cr.fill(nameLen)
	if err != nil {
		return FileChunk{}, err
	}
	name := string(nb)
	h, err = cr.fill(8 + 8 + 4 + 4)
	if err != nil {
		return FileChunk{}, err
	}
	c := FileChunk{
		Name:     name,
		Off:      int64(binary.LittleEndian.Uint64(h)),
		FileSize: int64(binary.LittleEndian.Uint64(h[8:])),
	}
	payloadLen := binary.LittleEndian.Uint32(h[16:])
	wantCRC := binary.LittleEndian.Uint32(h[20:])
	if payloadLen == 0 || payloadLen > shipMaxChunk {
		return FileChunk{}, &ShipError{Reason: fmt.Sprintf("chunk payload length %d", payloadLen)}
	}
	if c.Off < 0 || c.FileSize < 0 || c.Off+int64(payloadLen) > c.FileSize {
		return FileChunk{}, &ShipError{Reason: fmt.Sprintf("chunk [%d,+%d) outside file of %d bytes", c.Off, payloadLen, c.FileSize)}
	}
	p, err := cr.fill(int(payloadLen))
	if err != nil {
		return FileChunk{}, err
	}
	if got := crc32.Checksum(p, shipCRC); got != wantCRC {
		return FileChunk{}, &ShipError{Reason: fmt.Sprintf("chunk crc mismatch: stored %08x, computed %08x", wantCRC, got)}
	}
	c.Payload = p
	return c, nil
}

// DecodeManifest parses a status response body.
func DecodeManifest(r io.Reader) (Manifest, error) {
	var m Manifest
	dec := json.NewDecoder(io.LimitReader(r, 1<<22))
	if err := dec.Decode(&m); err != nil {
		return Manifest{}, &ShipError{Reason: "manifest: " + err.Error()}
	}
	return m, nil
}
