package replication

import (
	"context"
	"encoding/json"
	"errors"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/faults"
	"repro/internal/wal"
)

// primaryFixture is a live WAL + Source behind an httptest server.
type primaryFixture struct {
	dir string
	log *wal.Log
	src *Source
	ts  *httptest.Server
}

func newPrimary(t *testing.T, opts wal.Options) *primaryFixture {
	t.Helper()
	dir := t.TempDir()
	l, _, err := wal.Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	src := &Source{Dir: dir, NodeID: "primary-test", Head: func() uint64 { return l.NextSeq() - 1 }}
	mux := http.NewServeMux()
	src.Mount(mux)
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)
	return &primaryFixture{dir: dir, log: l, src: src, ts: ts}
}

func newTestFollower(t *testing.T, p *primaryFixture) *Follower {
	t.Helper()
	f, err := NewFollower(FollowerOptions{
		ID:         "f1",
		PrimaryURL: p.ts.URL,
		Dir:        t.TempDir(),
		Rand:       rand.New(rand.NewSource(1)),
	})
	if err != nil {
		t.Fatal(err)
	}
	return f
}

// TestFollowerMirrorsAndAcks: a follower pulls a live primary to a
// byte-identical mirror, acks the head, and the mirror recovers to the
// same state the primary's WAL recovers to.
func TestFollowerMirrorsAndAcks(t *testing.T) {
	p := newPrimary(t, wal.Options{SegmentBytes: 512, Sync: wal.SyncAlways})
	ops := auditTestOps(50)
	if err := p.log.Append(ops[:30]); err != nil {
		t.Fatal(err)
	}

	f := newTestFollower(t, p)
	if err := f.PullOnce(context.Background()); err != nil {
		t.Fatalf("first pull: %v", err)
	}
	if got := f.AckSeq(); got != 30 {
		t.Fatalf("ack after first pull = %d, want 30", got)
	}
	// Incremental: more ops, second pull ships only the delta.
	if err := p.log.Append(ops[30:]); err != nil {
		t.Fatal(err)
	}
	if err := f.PullOnce(context.Background()); err != nil {
		t.Fatalf("second pull: %v", err)
	}
	if got := f.AckSeq(); got != 50 {
		t.Fatalf("ack after second pull = %d, want 50", got)
	}
	if acked := p.src.Acks()["f1"]; acked != 50 {
		t.Fatalf("primary records ack %d, want 50", acked)
	}
	if segs, secs := f.Lag(); segs != 0 || secs != 0 {
		t.Fatalf("caught-up follower reports lag %d segs / %gs", segs, secs)
	}

	// The mirror must recover to the primary's exact state.
	prim, err := wal.Read(p.dir)
	if err != nil {
		t.Fatal(err)
	}
	primSet, err := prim.SessionSet()
	if err != nil {
		t.Fatal(err)
	}
	mir, err := wal.Read(f.o.Dir)
	if err != nil {
		t.Fatal(err)
	}
	mirSet, err := mir.SessionSet()
	if err != nil {
		t.Fatal(err)
	}
	if mirSet.Seq != primSet.Seq || len(mirSet.Sessions) != len(primSet.Sessions) {
		t.Fatalf("mirror recovers seq %d/%d sessions, primary %d/%d",
			mirSet.Seq, len(mirSet.Sessions), primSet.Seq, len(primSet.Sessions))
	}
	// Byte-for-byte: every shipped file equals the primary's.
	entries, err := os.ReadDir(p.dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		want, err := os.ReadFile(filepath.Join(p.dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		got, err := os.ReadFile(filepath.Join(f.o.Dir, e.Name()))
		if err != nil {
			t.Fatalf("mirror lacks %s: %v", e.Name(), err)
		}
		if string(got) != string(want) {
			t.Fatalf("mirror of %s differs from primary", e.Name())
		}
	}
}

// TestFollowerAckDrivesPruneWatermark: the watermark wiring end to end —
// a primary holding segments for an absent follower releases them only
// after the follower acks. This is the prune/ship race regression at
// the replication layer (the wal-layer half lives in
// wal.TestPruneWatermarkHoldsUnshippedSegments).
func TestFollowerAckDrivesPruneWatermark(t *testing.T) {
	p := newPrimary(t, wal.Options{SegmentBytes: 256, Sync: wal.SyncAlways})
	p.src.OnAck = func() {
		if min, ok := p.src.MinAck(); ok {
			p.log.SetPruneWatermark(min)
		}
	}
	// Follower exists but has shipped nothing: hold everything.
	p.log.SetPruneWatermark(0)

	ops := auditTestOps(60)
	st := wal.State{}
	snapshotFast := func(upto int) {
		t.Helper()
		have := int(p.log.NextSeq() - 1)
		if err := p.log.Append(ops[have:upto]); err != nil {
			t.Fatal(err)
		}
		st = wal.State{}
		if err := wal.Replay(&st, ops[:upto]); err != nil {
			t.Fatal(err)
		}
		if err := p.log.Snapshot(st.Clone()); err != nil {
			t.Fatal(err)
		}
	}
	snapshotFast(20)
	snapshotFast(40)
	snapshotFast(60)

	// Slow shipper: the full history must still be fetchable.
	f := newTestFollower(t, p)
	if err := f.PullOnce(context.Background()); err != nil {
		t.Fatalf("slow follower's catch-up pull: %v", err)
	}
	if got := f.AckSeq(); got != 60 {
		t.Fatalf("follower verified seq %d, want 60 (history was pruned out from under it)", got)
	}
	raw, err := wal.ReadOps(f.o.Dir, 0)
	if err != nil || len(raw) != 60 {
		t.Fatalf("mirror holds %d ops (err %v), want the full 60", len(raw), err)
	}

	// The ack released the backlog: the next snapshot cycle prunes.
	snapshotFast(60) // no new ops; re-snapshot to trigger prune
	segs := 0
	entries, err := os.ReadDir(p.dir)
	if err != nil {
		t.Fatal(err)
	}
	oldestFirst := uint64(0)
	for _, e := range entries {
		if isSeg(e.Name()) {
			segs++
			data, err := os.ReadFile(filepath.Join(p.dir, e.Name()))
			if err != nil {
				t.Fatal(err)
			}
			first, err := wal.SegmentFirstSeq(e.Name(), data)
			if err != nil {
				t.Fatal(err)
			}
			if oldestFirst == 0 || first < oldestFirst {
				oldestFirst = first
			}
		}
	}
	if oldestFirst <= 1 && segs > 2 {
		t.Fatalf("acked history not pruned: oldest segment starts at %d across %d segments", oldestFirst, segs)
	}
}

// TestFollowerDivergenceFailsClosed: a primary whose history shrank (a
// restore from backup, a rewrite) must flip the follower into the
// diverged state permanently: pulls refuse, Promote refuses.
func TestFollowerDivergenceFailsClosed(t *testing.T) {
	p := newPrimary(t, wal.Options{Sync: wal.SyncAlways})
	if err := p.log.Append(auditTestOps(20)); err != nil {
		t.Fatal(err)
	}
	f := newTestFollower(t, p)
	if err := f.PullOnce(context.Background()); err != nil {
		t.Fatal(err)
	}

	// Rewrite history behind the follower's back: truncate the live
	// segment below what the follower verified.
	entries, _ := os.ReadDir(p.dir)
	for _, e := range entries {
		if isSeg(e.Name()) {
			path := filepath.Join(p.dir, e.Name())
			info, _ := os.Stat(path)
			if err := os.Truncate(path, info.Size()-10); err != nil {
				t.Fatal(err)
			}
		}
	}
	err := f.PullOnce(context.Background())
	if !errors.Is(err, ErrDiverged) {
		t.Fatalf("pull against shrunken history: %v, want ErrDiverged", err)
	}
	var de *DivergeError
	if !errors.As(err, &de) {
		t.Fatalf("divergence is not a *DivergeError: %T", err)
	}
	// Fail closed: both pulling and promotion refuse from here on.
	if err := f.PullOnce(context.Background()); !errors.Is(err, ErrDiverged) {
		t.Fatalf("post-divergence pull: %v, want ErrDiverged", err)
	}
	if _, err := f.Promote(context.Background()); !errors.Is(err, ErrDiverged) {
		t.Fatalf("post-divergence promote: %v, want ErrDiverged", err)
	}
}

// TestFollowerOverlapRewriteDetected: same-length tampering — the
// primary rewrites bytes inside the already-shipped region without
// changing file size. The overlap window catches it on the next pull
// that fetches new bytes.
func TestFollowerOverlapRewriteDetected(t *testing.T) {
	p := newPrimary(t, wal.Options{Sync: wal.SyncAlways})
	if err := p.log.Append(auditTestOps(10)); err != nil {
		t.Fatal(err)
	}
	f := newTestFollower(t, p)
	if err := f.PullOnce(context.Background()); err != nil {
		t.Fatal(err)
	}

	// Flip one byte inside shipped history, then append more so the
	// next pull fetches (and overlap-checks) the file.
	entries, _ := os.ReadDir(p.dir)
	for _, e := range entries {
		if isSeg(e.Name()) {
			path := filepath.Join(p.dir, e.Name())
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			data[len(data)-3] ^= 0xFF
			if err := os.WriteFile(path, data, 0o644); err != nil {
				t.Fatal(err)
			}
		}
	}
	more := auditTestOps(20)[10:]
	if err := p.log.Append(more); err != nil {
		t.Fatal(err)
	}
	if err := f.PullOnce(context.Background()); !errors.Is(err, ErrDiverged) {
		t.Fatalf("pull over rewritten overlap: %v, want ErrDiverged", err)
	}
}

// TestFollowerCrashpoints: repl.ship fires before the first persisted
// chunk (nothing written), repl.ack.lost fires after the durable apply
// (ack never sent, primary watermark stays put) — and a fresh follower
// over the same dir resumes idempotently in both cases.
func TestFollowerCrashpoints(t *testing.T) {
	for _, point := range []string{"repl.ship", "repl.ack.lost"} {
		t.Run(point, func(t *testing.T) {
			p := newPrimary(t, wal.Options{Sync: wal.SyncAlways})
			if err := p.log.Append(auditTestOps(15)); err != nil {
				t.Fatal(err)
			}
			dir := t.TempDir()
			crashed := false
			f, err := NewFollower(FollowerOptions{
				ID: "f1", PrimaryURL: p.ts.URL, Dir: dir,
				Rand:  rand.New(rand.NewSource(1)),
				Crash: &faults.CrashPlan{Point: point, Nth: 1, KillFunc: func() { crashed = true; panic("crash") }},
			})
			if err != nil {
				t.Fatal(err)
			}
			func() {
				defer func() { recover() }()
				_ = f.PullOnce(context.Background())
			}()
			if !crashed {
				t.Fatalf("crashpoint %s never fired", point)
			}
			if point == "repl.ack.lost" {
				if acked := p.src.Acks()["f1"]; acked != 0 {
					t.Fatalf("ack %d reached primary despite crashing before send", acked)
				}
			}
			// Restart: a new follower over the same dir converges.
			f2, err := NewFollower(FollowerOptions{
				ID: "f1", PrimaryURL: p.ts.URL, Dir: dir,
				Rand: rand.New(rand.NewSource(2)),
			})
			if err != nil {
				t.Fatal(err)
			}
			if err := f2.PullOnce(context.Background()); err != nil {
				t.Fatalf("post-crash pull: %v", err)
			}
			if got := f2.AckSeq(); got != 15 {
				t.Fatalf("post-crash ack %d, want 15", got)
			}
			if acked := p.src.Acks()["f1"]; acked != 15 {
				t.Fatalf("primary ack table %d, want 15", acked)
			}
		})
	}
}

// TestFollowerRunBackoff: Run retries an unreachable primary with
// growing jittered sleeps and exits on context cancellation.
func TestFollowerRunBackoff(t *testing.T) {
	f, err := NewFollower(FollowerOptions{
		ID:         "f1",
		PrimaryURL: "http://127.0.0.1:1", // nothing listens here
		Dir:        t.TempDir(),
		Client:     &http.Client{Timeout: 50 * time.Millisecond},
		BackoffBase: 5 * time.Millisecond,
		BackoffMax:  20 * time.Millisecond,
		Rand:        rand.New(rand.NewSource(42)),
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 300*time.Millisecond)
	defer cancel()
	err = f.Run(ctx)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Run returned %v, want context deadline", err)
	}
	if f.pullErrors.Load() < 2 {
		t.Fatalf("expected repeated retries, saw %d errors", f.pullErrors.Load())
	}
}

// TestPromoteFencesPulls: after Promote, further pulls refuse with
// ErrPromoted — a promoted primary must never fold in foreign ops.
func TestPromoteFencesPulls(t *testing.T) {
	p := newPrimary(t, wal.Options{Sync: wal.SyncAlways})
	if err := p.log.Append(auditTestOps(5)); err != nil {
		t.Fatal(err)
	}
	f := newTestFollower(t, p)
	if err := f.PullOnce(context.Background()); err != nil {
		t.Fatal(err)
	}
	res, err := f.Promote(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.AckSeq != 5 || !res.Drained {
		t.Fatalf("promote sealed seq %d drained=%v, want 5/true", res.AckSeq, res.Drained)
	}
	if err := f.PullOnce(context.Background()); !errors.Is(err, ErrPromoted) {
		t.Fatalf("post-promote pull: %v, want ErrPromoted", err)
	}
	if _, err := f.Promote(context.Background()); !errors.Is(err, ErrPromoted) {
		t.Fatalf("double promote: %v, want ErrPromoted", err)
	}
}

// TestFollowerGoneMidPassFailsPass: a 410 for a manifest-listed file
// (pruned between manifest and fetch) must fail the whole pass as a
// retryable error — never divergence, and never silent success, which
// would let a fresh follower ack a later segment's head without
// holding the preceding history.
func TestFollowerGoneMidPassFailsPass(t *testing.T) {
	dir := t.TempDir()
	l, _, err := wal.Open(dir, wal.Options{SegmentBytes: 256, Sync: wal.SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	if err := l.Append(auditTestOps(40)); err != nil {
		t.Fatal(err)
	}
	src := &Source{Dir: dir, NodeID: "p", Head: func() uint64 { return l.NextSeq() - 1 }}
	mux := http.NewServeMux()
	src.Mount(mux)
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	goneName := ""
	for _, e := range entries {
		if isSeg(e.Name()) && (goneName == "" || e.Name() < goneName) {
			goneName = e.Name() // oldest segment
		}
	}
	var gone atomic.Bool
	gone.Store(true)
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if gone.Load() && r.URL.Path == "/v1/repl/fetch" && r.URL.Query().Get("file") == goneName {
			http.Error(w, "file pruned", http.StatusGone)
			return
		}
		mux.ServeHTTP(w, r)
	}))
	t.Cleanup(ts.Close)

	f, err := NewFollower(FollowerOptions{
		ID: "f1", PrimaryURL: ts.URL, Dir: t.TempDir(),
		Rand: rand.New(rand.NewSource(1)),
	})
	if err != nil {
		t.Fatal(err)
	}
	err = f.PullOnce(context.Background())
	if err == nil {
		t.Fatal("pass with a vanished manifest file succeeded")
	}
	if errors.Is(err, ErrDiverged) {
		t.Fatalf("prune race reported as divergence: %v", err)
	}
	if got := f.AckSeq(); got != 0 {
		t.Fatalf("acked %d around a missing prefix, want 0", got)
	}
	// The race clears (the file is really still there): retry converges.
	gone.Store(false)
	if err := f.PullOnce(context.Background()); err != nil {
		t.Fatalf("retry pass: %v", err)
	}
	if got := f.AckSeq(); got != 40 {
		t.Fatalf("ack after retry = %d, want 40", got)
	}
}

// TestFollowerFreshMirrorAnchor: a fresh follower whose first visible
// segment starts past seq 1 may only advance its ack once a mirrored
// snapshot covers the missing prefix — a mirror that cannot boot must
// not be certified, or the primary could prune the real history out
// from under a future promote.
func TestFollowerFreshMirrorAnchor(t *testing.T) {
	dir := t.TempDir()
	l, _, err := wal.Open(dir, wal.Options{SegmentBytes: 256, Sync: wal.SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	ops := auditTestOps(60)
	if err := l.Append(ops); err != nil {
		t.Fatal(err)
	}
	st := wal.State{}
	if err := wal.Replay(&st, ops); err != nil {
		t.Fatal(err)
	}
	// Snapshot prunes the early segments: history now starts mid-way.
	if err := l.Snapshot(st.Clone()); err != nil {
		t.Fatal(err)
	}
	src := &Source{Dir: dir, NodeID: "p", Head: func() uint64 { return l.NextSeq() - 1 }}
	mux := http.NewServeMux()
	src.Mount(mux)
	var hideSnaps atomic.Bool
	hideSnaps.Store(true)
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if hideSnaps.Load() && r.URL.Path == "/v1/repl/status" {
			// Serve a manifest with the snapshots withheld: the segment
			// chain alone cannot prove the history reaches a bootable
			// base.
			rr := httptest.NewRecorder()
			mux.ServeHTTP(rr, r)
			var m Manifest
			if err := json.NewDecoder(rr.Body).Decode(&m); err != nil {
				t.Errorf("decoding manifest: %v", err)
			}
			kept := m.Files[:0]
			for _, mf := range m.Files {
				if !isSnap(mf.Name) {
					kept = append(kept, mf)
				}
			}
			m.Files = kept
			w.Header().Set("Content-Type", "application/json")
			_ = json.NewEncoder(w).Encode(m)
			return
		}
		mux.ServeHTTP(w, r)
	}))
	t.Cleanup(ts.Close)

	f, err := NewFollower(FollowerOptions{
		ID: "f1", PrimaryURL: ts.URL, Dir: t.TempDir(),
		Rand: rand.New(rand.NewSource(1)),
	})
	if err != nil {
		t.Fatal(err)
	}
	err = f.PullOnce(context.Background())
	var lag *LagError
	if !errors.As(err, &lag) {
		t.Fatalf("snapshot-less pull: %v, want *LagError", err)
	}
	if got := f.AckSeq(); got != 0 {
		t.Fatalf("unanchored mirror acked %d, want 0", got)
	}

	// The snapshot ships: the mirror is bootable, the ack may advance.
	hideSnaps.Store(false)
	if err := f.PullOnce(context.Background()); err != nil {
		t.Fatalf("anchored pull: %v", err)
	}
	if got := f.AckSeq(); got != 60 {
		t.Fatalf("anchored ack = %d, want 60", got)
	}
	// And the certified mirror really does boot to the primary's state.
	mir, err := wal.Read(f.o.Dir)
	if err != nil {
		t.Fatal(err)
	}
	mirSet, err := mir.SessionSet()
	if err != nil {
		t.Fatal(err)
	}
	if mirSet.Seq != 60 {
		t.Fatalf("mirror recovers to seq %d, want 60", mirSet.Seq)
	}
}

// TestFollowerMetricsRender: the metric names the issue specifies
// appear in the output.
func TestFollowerMetricsRender(t *testing.T) {
	p := newPrimary(t, wal.Options{Sync: wal.SyncAlways})
	if err := p.log.Append(auditTestOps(3)); err != nil {
		t.Fatal(err)
	}
	f := newTestFollower(t, p)
	if err := f.PullOnce(context.Background()); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	f.WriteMetrics(&sb)
	out := sb.String()
	for _, name := range []string{
		"gpsd_repl_segments_behind", "gpsd_repl_seconds_behind",
		"gpsd_repl_ack_seq 3", "gpsd_repl_diverged 0",
	} {
		if !strings.Contains(out, name) {
			t.Fatalf("follower metrics lack %q:\n%s", name, out)
		}
	}
	var pb strings.Builder
	p.src.WriteMetrics(&pb)
	if !strings.Contains(pb.String(), "gpsd_repl_min_acked_seq 3") {
		t.Fatalf("source metrics lack min ack:\n%s", pb.String())
	}
}
