package replication

import (
	"fmt"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func postAck(t *testing.T, s *Source, id string, seq uint64) {
	t.Helper()
	rr := httptest.NewRecorder()
	req := httptest.NewRequest("POST", "/v1/repl/ack",
		strings.NewReader(fmt.Sprintf(`{"follower_id":%q,"ack_seq":%d}`, id, seq)))
	s.handleAck(rr, req)
	if rr.Code != 200 {
		t.Fatalf("ack returned %d", rr.Code)
	}
}

// TestAckExpiryUnpinsWatermark: a follower that stops acking — died,
// or was a one-shot client that posted an arbitrary follower_id to the
// unauthenticated endpoint — expires after AckTTL of silence, so it
// cannot pin the prune watermark (and the disk) forever. Liveness is
// lazy: MinAck alone enforces it, matching the daemon's periodic
// watermark recomputation.
func TestAckExpiryUnpinsWatermark(t *testing.T) {
	now := time.Unix(1000, 0)
	s := &Source{
		Dir:    t.TempDir(),
		NodeID: "p",
		Head:   func() uint64 { return 100 },
		AckTTL: time.Minute,
		Now:    func() time.Time { return now },
	}
	postAck(t, s, "dead", 5)
	postAck(t, s, "live", 80)
	if min, ok := s.MinAck(); !ok || min != 5 {
		t.Fatalf("MinAck = %d,%v, want 5,true", min, ok)
	}

	// Within the TTL the silent follower still holds segments.
	now = now.Add(30 * time.Second)
	postAck(t, s, "live", 90)
	if min, ok := s.MinAck(); !ok || min != 5 {
		t.Fatalf("MinAck = %d,%v before expiry, want 5,true", min, ok)
	}

	// 75s of silence from "dead" (TTL 60s): it expires, "live" (45s
	// since its last ack... 45s < 60s) survives, pruning resumes at 90.
	now = now.Add(45 * time.Second)
	if min, ok := s.MinAck(); !ok || min != 90 {
		t.Fatalf("MinAck = %d,%v after expiry, want 90,true", min, ok)
	}
	acks := s.Acks()
	if _, there := acks["dead"]; there || len(acks) != 1 {
		t.Fatalf("expired follower still in ack table: %v", acks)
	}

	// Everyone silent: no follower holds anything back.
	now = now.Add(2 * time.Minute)
	if _, ok := s.MinAck(); ok {
		t.Fatal("fully-expired table still reports a follower")
	}

	// A returning follower re-registers (documented: it re-pins at its
	// stale seq, and may find its promised history pruned).
	postAck(t, s, "dead", 5)
	if min, ok := s.MinAck(); !ok || min != 5 {
		t.Fatalf("returning follower MinAck = %d,%v, want 5,true", min, ok)
	}
}

// TestAckExpiryDisabled: a negative TTL preserves the old hold-forever
// contract for operators who want it.
func TestAckExpiryDisabled(t *testing.T) {
	now := time.Unix(1000, 0)
	s := &Source{
		Dir:    t.TempDir(),
		NodeID: "p",
		Head:   func() uint64 { return 100 },
		AckTTL: -1,
		Now:    func() time.Time { return now },
	}
	postAck(t, s, "dead", 7)
	now = now.Add(365 * 24 * time.Hour)
	if min, ok := s.MinAck(); !ok || min != 7 {
		t.Fatalf("MinAck = %d,%v with expiry disabled, want 7,true", min, ok)
	}
}
