package replication

import (
	"bytes"
	"io"
	"testing"
)

func encodeStream(t *testing.T, chunks []FileChunk, end bool) []byte {
	t.Helper()
	b := []byte(shipMagic)
	var err error
	for _, c := range chunks {
		b, err = AppendChunk(b, c)
		if err != nil {
			t.Fatal(err)
		}
	}
	if end {
		b = AppendEnd(b)
	}
	return b
}

// TestChunkRoundTrip: encode → decode preserves every field, and the
// stream terminates with a clean io.EOF.
func TestChunkRoundTrip(t *testing.T) {
	in := []FileChunk{
		{Name: "wal-0000000000000001.seg", Off: 0, FileSize: 300, Payload: bytes.Repeat([]byte{0xAB}, 100)},
		{Name: "wal-0000000000000001.seg", Off: 100, FileSize: 300, Payload: bytes.Repeat([]byte{0xCD}, 200)},
		{Name: "audit.log", Off: 7, FileSize: 20, Payload: []byte("0123456789abc")},
	}
	cr := NewChunkReader(bytes.NewReader(encodeStream(t, in, true)))
	for i, want := range in {
		got, err := cr.Next()
		if err != nil {
			t.Fatalf("chunk %d: %v", i, err)
		}
		if got.Name != want.Name || got.Off != want.Off || got.FileSize != want.FileSize || !bytes.Equal(got.Payload, want.Payload) {
			t.Fatalf("chunk %d: round trip mismatch", i)
		}
	}
	if _, err := cr.Next(); err != io.EOF {
		t.Fatalf("stream end: %v, want io.EOF", err)
	}
	if _, err := cr.Next(); err != io.EOF {
		t.Fatalf("read past end: %v, want io.EOF", err)
	}
}

// TestChunkStreamCutIsNotEOF: a stream that stops without the end chunk
// must error, never look complete — this is what makes a cut TCP
// connection safe.
func TestChunkStreamCutIsNotEOF(t *testing.T) {
	full := encodeStream(t, []FileChunk{
		{Name: "audit.log", Off: 0, FileSize: 5, Payload: []byte("hello")},
	}, true)
	for cut := 0; cut < len(full); cut++ {
		cr := NewChunkReader(bytes.NewReader(full[:cut]))
		sawErr := false
		for {
			_, err := cr.Next()
			if err == io.EOF {
				t.Fatalf("cut at %d of %d decoded as a complete stream", cut, len(full))
			}
			if err != nil {
				sawErr = true
				break
			}
		}
		if !sawErr {
			t.Fatalf("cut at %d: no error surfaced", cut)
		}
	}
}

// TestChunkCRCRejectsFlip: flipping any payload byte in flight is
// caught by the chunk CRC.
func TestChunkCRCRejectsFlip(t *testing.T) {
	full := encodeStream(t, []FileChunk{
		{Name: "wal-0000000000000001.seg", Off: 2, FileSize: 50, Payload: bytes.Repeat([]byte{7}, 48)},
	}, true)
	// Payload occupies the last 48 bytes before the end chunk.
	for i := len(full) - 49; i < len(full)-1; i++ {
		mut := append([]byte(nil), full...)
		mut[i] ^= 0x01
		cr := NewChunkReader(bytes.NewReader(mut))
		if _, err := cr.Next(); err == nil {
			t.Fatalf("payload flip at byte %d accepted", i)
		}
	}
}

// TestChunkDecodeRejectsBadFraming: structural garbage yields typed
// *ShipError, never a panic or silent success.
func TestChunkDecodeRejectsBadFraming(t *testing.T) {
	cases := map[string][]byte{
		"bad magic":     []byte("NOTMAGIC"),
		"unknown type":  append([]byte(shipMagic), 9),
		"zero name len": append([]byte(shipMagic), 1, 0, 0),
	}
	for name, data := range cases {
		cr := NewChunkReader(bytes.NewReader(data))
		if _, err := cr.Next(); err == nil {
			t.Fatalf("%s: accepted", name)
		}
	}
}

// FuzzShipFrameDecode: the chunk decoder must never panic, never
// allocate unboundedly, and must only succeed on streams whose chunks
// satisfy every framing invariant (bounds, CRC).
func FuzzShipFrameDecode(f *testing.F) {
	f.Add([]byte(shipMagic))
	f.Add(append([]byte(shipMagic), chunkEnd))
	seed := []byte(shipMagic)
	seed, _ = AppendChunk(seed, FileChunk{Name: "wal-0000000000000001.seg", Off: 0, FileSize: 10, Payload: []byte("0123456789")})
	f.Add(AppendEnd(seed))
	f.Fuzz(func(t *testing.T, data []byte) {
		cr := NewChunkReader(bytes.NewReader(data))
		for {
			c, err := cr.Next()
			if err != nil {
				break
			}
			if int64(len(c.Payload)) > c.FileSize-c.Off {
				t.Fatalf("decoder admitted chunk overrunning its file: [%d,+%d) of %d", c.Off, len(c.Payload), c.FileSize)
			}
			if len(c.Payload) == 0 || len(c.Payload) > shipMaxChunk {
				t.Fatalf("decoder admitted payload of %d bytes", len(c.Payload))
			}
		}
	})
}
