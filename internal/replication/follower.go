package replication

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/url"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/faults"
	"repro/internal/wal"
)

// LagError reports that a pull pass finished without reaching the
// primary's manifest head — the follower is behind and should retry.
// It is retryable: the pull loop backs off and pulls again.
type LagError struct {
	SegmentsBehind int
	SecondsBehind  float64
	HeadSeq        uint64 // primary head at manifest time
	AckSeq         uint64 // follower's verified head
}

func (e *LagError) Error() string {
	return fmt.Sprintf("replication: follower lags primary: verified seq %d of %d (%d whole segments, %.1fs behind)",
		e.AckSeq, e.HeadSeq, e.SegmentsBehind, e.SecondsBehind)
}

// ErrDiverged is the sentinel for follower-detected divergence: the
// primary's history is not an append-only extension of what the
// follower already verified. The follower fails closed — it stops
// pulling and refuses promotion — because both histories claim the same
// identity and only an operator can say which one is real.
var ErrDiverged = errors.New("replication: follower diverged from primary")

// DivergeError carries the evidence.
type DivergeError struct {
	File   string
	Reason string
}

func (e *DivergeError) Error() string {
	return fmt.Sprintf("replication: follower diverged from primary: %s: %s", e.File, e.Reason)
}

// Is makes errors.Is(err, ErrDiverged) true for every DivergeError.
func (e *DivergeError) Is(target error) bool { return target == ErrDiverged }

// ErrPromoted is returned by pulls after Promote has fenced the
// follower: a promoted node is a primary and must not fold in more ops.
var ErrPromoted = errors.New("replication: follower already promoted")

// overlapBytes is re-fetched before every append and byte-compared
// against the local tail, so a primary that rewrote history inside
// already-shipped bytes is caught even though those offsets would never
// be fetched again.
const overlapBytes = 4096

// FollowerOptions configure a Follower.
type FollowerOptions struct {
	// ID names this follower in acks (required).
	ID string
	// PrimaryURL is the primary's base URL, e.g. http://host:port.
	PrimaryURL string
	// Dir is the local WAL directory to mirror into.
	Dir string
	// Client is the HTTP client (nil: a client with sane timeouts).
	Client *http.Client
	// Interval between successful pulls (default 250ms).
	Interval time.Duration
	// BackoffBase/BackoffMax bound the retry backoff (defaults
	// 100ms/5s). Jitter is full: the sleep is uniform in (0, cur].
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// Crash is the crash-injection plan (tests and crash_smoke.sh);
	// nil is inert. Points: repl.ship (before persisting a received
	// chunk), repl.ack.lost (after durable apply, before the ack),
	// repl.promote (inside Promote, before the fence).
	Crash *faults.CrashPlan
	// Rand seeds backoff jitter (nil: a time-seeded source).
	Rand *rand.Rand
}

// segState tracks incremental frame verification of one mirrored
// segment: everything below verified re-decoded cleanly through the
// recovery decoder.
type segState struct {
	firstSeq uint64
	nextSeq  uint64 // sequence expected at verified
	verified int64  // byte offset of the first unverified byte
	haveHdr  bool
}

// Follower mirrors a primary's WAL directory byte-for-byte and
// verifies every shipped frame with the same decoder recovery uses, so
// the acked prefix of the mirror is — provably, not hopefully — a
// prefix a promoted daemon can recover from. Promotion is therefore
// nothing special: truncate the unverified tail of trust down to what
// wal.Open would keep anyway, and boot.
type Follower struct {
	o FollowerOptions

	mu       sync.Mutex
	segs     map[string]*segState
	ackSeq   uint64            // aggregate verified head (sum over stripes)
	ackSeqs  map[string]uint64 // per-stripe-prefix verified heads ("" = flat)
	diverged error
	promoted bool
	lastSync time.Time // when the follower last matched a manifest head
	lastHead uint64    // primary head from the latest manifest
	behind   int       // whole segments not yet verified

	pulls      atomic.Int64
	pullErrors atomic.Int64
	bytesIn    atomic.Int64
	acksSent   atomic.Int64
}

// NewFollower validates options and prepares the mirror directory.
func NewFollower(o FollowerOptions) (*Follower, error) {
	if o.ID == "" || o.PrimaryURL == "" || o.Dir == "" {
		return nil, errors.New("replication: follower needs ID, PrimaryURL, and Dir")
	}
	if o.Client == nil {
		o.Client = &http.Client{Timeout: 30 * time.Second}
	}
	if o.Interval <= 0 {
		o.Interval = 250 * time.Millisecond
	}
	if o.BackoffBase <= 0 {
		o.BackoffBase = 100 * time.Millisecond
	}
	if o.BackoffMax <= 0 {
		o.BackoffMax = 5 * time.Second
	}
	if o.Rand == nil {
		o.Rand = rand.New(rand.NewSource(time.Now().UnixNano()))
	}
	if err := os.MkdirAll(o.Dir, 0o755); err != nil {
		return nil, err
	}
	f := &Follower{o: o, segs: map[string]*segState{}, ackSeqs: map[string]uint64{}, lastSync: time.Now()}
	return f, nil
}

// AckSeq returns the highest frame-verified op sequence.
func (f *Follower) AckSeq() uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.ackSeq
}

// Diverged returns the divergence evidence, or nil.
func (f *Follower) Diverged() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.diverged
}

// Lag returns the current lag estimate: whole segments not yet
// verified and seconds since the follower last matched a primary head.
func (f *Follower) Lag() (segments int, seconds float64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.lagLocked()
}

func (f *Follower) lagLocked() (int, float64) {
	if f.ackSeq >= f.lastHead {
		return 0, 0
	}
	return f.behind, time.Since(f.lastSync).Seconds()
}

func (f *Follower) setDiverged(err error) error {
	f.mu.Lock()
	if f.diverged == nil {
		f.diverged = err
	}
	err = f.diverged
	f.mu.Unlock()
	return err
}

// PullOnce performs one full replication pass: manifest, fetch+persist
// every lagging file, frame-verify, ack. It returns nil when the
// follower reached the manifest head, a *LagError when it fell short,
// and a *DivergeError (permanent) when the primary's history conflicts
// with verified local bytes.
func (f *Follower) PullOnce(ctx context.Context) error {
	f.mu.Lock()
	if f.promoted {
		f.mu.Unlock()
		return ErrPromoted
	}
	if err := f.diverged; err != nil {
		f.mu.Unlock()
		return err
	}
	f.mu.Unlock()

	m, err := f.fetchManifest(ctx)
	if err != nil {
		f.pullErrors.Add(1)
		return err
	}
	for _, mf := range m.Files {
		if err := f.syncFile(ctx, mf); err != nil {
			if errors.Is(err, ErrDiverged) {
				return f.setDiverged(err)
			}
			f.pullErrors.Add(1)
			return err
		}
	}
	ack, stripeAcks, behind, err := f.verify(m)
	if err != nil {
		return f.setDiverged(err)
	}

	f.mu.Lock()
	f.ackSeq = ack
	f.lastHead = m.HeadSeq
	f.behind = behind
	caughtUp := ack >= m.HeadSeq
	if caughtUp {
		f.lastSync = time.Now()
	}
	segs, secs := f.lagLocked()
	f.mu.Unlock()
	f.pulls.Add(1)

	// The durable apply is complete; the ack may now be lost to a crash
	// without losing correctness — the primary just retains more.
	if f.o.Crash.Armed("repl.ack.lost") {
		f.o.Crash.Kill()
	}
	if err := f.sendAck(ctx, ack, stripeAcks); err != nil {
		f.pullErrors.Add(1)
		return err
	}
	if !caughtUp {
		return &LagError{SegmentsBehind: segs, SecondsBehind: secs, HeadSeq: m.HeadSeq, AckSeq: ack}
	}
	return nil
}

// Run pulls until ctx is cancelled, the follower diverges, or it is
// promoted. Transient errors (primary down, cut streams, lag) retry
// with exponential backoff and full jitter; divergence is permanent.
func (f *Follower) Run(ctx context.Context) error {
	backoff := f.o.BackoffBase
	for {
		err := f.PullOnce(ctx)
		switch {
		case err == nil:
			backoff = f.o.BackoffBase
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-time.After(f.o.Interval):
			}
		case errors.Is(err, ErrDiverged), errors.Is(err, ErrPromoted):
			return err
		case ctx.Err() != nil:
			return ctx.Err()
		default:
			// Full jitter: uniform in (0, backoff], then double.
			sleep := time.Duration(1 + f.o.Rand.Int63n(int64(backoff)))
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-time.After(sleep):
			}
			if backoff *= 2; backoff > f.o.BackoffMax {
				backoff = f.o.BackoffMax
			}
		}
	}
}

// PromoteResult reports what a promotion sealed.
type PromoteResult struct {
	AckSeq  uint64 // verified head the promoted node boots from
	Drained bool   // whether the final drain pull reached the primary
}

// Promote fences the follower and returns the verified head. It first
// drains: one last pull attempt so a reachable primary's tail is not
// abandoned (an unreachable primary — the failover case — is fine).
// After Promote returns, the caller boots a daemon from the mirror
// directory; pulls are permanently refused.
func (f *Follower) Promote(ctx context.Context) (PromoteResult, error) {
	f.mu.Lock()
	if f.promoted {
		f.mu.Unlock()
		return PromoteResult{}, ErrPromoted
	}
	if err := f.diverged; err != nil {
		f.mu.Unlock()
		return PromoteResult{}, err
	}
	f.mu.Unlock()

	drained := false
	drainCtx, cancel := context.WithTimeout(ctx, 2*time.Second)
	err := f.PullOnce(drainCtx)
	cancel()
	switch {
	case err == nil:
		drained = true
	case errors.Is(err, ErrDiverged):
		return PromoteResult{}, err
	default:
		// Primary unreachable or still ahead: promote from what is
		// verified. That is the point of failover.
	}

	if f.o.Crash.Armed("repl.promote") {
		f.o.Crash.Kill()
	}

	f.mu.Lock()
	f.promoted = true
	res := PromoteResult{AckSeq: f.ackSeq, Drained: drained}
	f.mu.Unlock()
	return res, nil
}

func (f *Follower) fetchManifest(ctx context.Context) (Manifest, error) {
	req, err := http.NewRequestWithContext(ctx, "GET", f.o.PrimaryURL+"/v1/repl/status", nil)
	if err != nil {
		return Manifest{}, err
	}
	resp, err := f.o.Client.Do(req)
	if err != nil {
		return Manifest{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return Manifest{}, fmt.Errorf("replication: status endpoint returned %s", resp.Status)
	}
	return DecodeManifest(resp.Body)
}

func (f *Follower) sendAck(ctx context.Context, seq uint64, stripeSeqs []uint64) error {
	raw, err := json.Marshal(Ack{FollowerID: f.o.ID, AckSeq: seq, StripeSeqs: stripeSeqs})
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, "POST", f.o.PrimaryURL+"/v1/repl/ack", strings.NewReader(string(raw)))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := f.o.Client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("replication: ack endpoint returned %s", resp.Status)
	}
	f.acksSent.Add(1)
	return nil
}

// syncFile brings one mirrored file up to the manifest size, verifying
// an overlap window against already-held bytes.
func (f *Follower) syncFile(ctx context.Context, mf ManifestFile) error {
	path := filepath.Join(f.o.Dir, filepath.FromSlash(mf.Name))
	if dir := filepath.Dir(path); dir != f.o.Dir {
		// Striped layouts ship "stripe-NN/<file>" names; mirror the
		// subdirectory structure a promoted daemon will boot from.
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
	}
	local := int64(0)
	if info, err := os.Stat(path); err == nil {
		local = info.Size()
	} else if !os.IsNotExist(err) {
		return err
	}
	if local > mf.Size {
		if filepath.Base(mf.Name) == AuditFileName {
			// The audit trail is derived data and the primary may have
			// truncated a torn tail after its own crash; shrink to
			// match rather than declaring divergence.
			if err := os.Truncate(path, mf.Size); err != nil {
				return err
			}
			local = mf.Size
		} else {
			return &DivergeError{File: mf.Name,
				Reason: fmt.Sprintf("local copy is %d bytes, primary's is %d — an append-only history cannot shrink", local, mf.Size)}
		}
	}
	if local == mf.Size {
		return nil
	}
	// Re-fetch a trailing window of already-held bytes: byte-equality
	// over the overlap is the cheap rewrite detector.
	from := local - overlapBytes
	if from < 0 {
		from = 0
	}
	u := f.o.PrimaryURL + "/v1/repl/fetch?file=" + url.QueryEscape(mf.Name) + "&off=" + fmt.Sprint(from)
	req, err := http.NewRequestWithContext(ctx, "GET", u, nil)
	if err != nil {
		return err
	}
	resp, err := f.o.Client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
	case http.StatusGone:
		// Pruned between manifest and fetch. The pass can no longer
		// prove the manifest's files form a connected history, so it
		// fails (retryable — the next pass gets a fresh manifest);
		// acking around a vanished file could certify a gapped mirror
		// the primary would then prune the real history out of.
		return &ShipError{Reason: fmt.Sprintf("%s listed in the manifest but pruned before fetch", mf.Name)}
	default:
		return fmt.Errorf("replication: fetch %s returned %s", mf.Name, resp.Status)
	}

	out, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return err
	}
	defer out.Close()
	var localBuf []byte
	if from < local {
		localBuf = make([]byte, local-from)
		if _, err := out.ReadAt(localBuf, from); err != nil {
			return err
		}
	}

	cr := NewChunkReader(resp.Body)
	wrote := false
	for {
		c, err := cr.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return err // transport fault: retry next pass
		}
		if c.Name != mf.Name {
			return &ShipError{Reason: fmt.Sprintf("stream for %s carried chunk for %s", mf.Name, c.Name)}
		}
		// Split the chunk into the overlap part (compare) and the new
		// part (persist).
		p := c.Payload
		off := c.Off
		if off < local {
			n := local - off
			if n > int64(len(p)) {
				n = int64(len(p))
			}
			want := localBuf[off-from : off-from+n]
			if string(p[:n]) != string(want) {
				return &DivergeError{File: mf.Name,
					Reason: fmt.Sprintf("overlap bytes [%d,%d) differ from the copy verified earlier", off, off+n)}
			}
			p = p[n:]
			off += n
		}
		if len(p) == 0 {
			continue
		}
		if off != local {
			return &ShipError{Reason: fmt.Sprintf("chunk for %s jumps to offset %d, expected %d", mf.Name, off, local)}
		}
		if f.o.Crash.Armed("repl.ship") {
			f.o.Crash.Kill()
		}
		if _, err := out.WriteAt(p, off); err != nil {
			return err
		}
		local += int64(len(p))
		f.bytesIn.Add(int64(len(p)))
		wrote = true
	}
	if wrote {
		if err := out.Sync(); err != nil {
			return err
		}
	}
	return nil
}

// verify runs the recovery decoder over every unverified mirrored
// segment byte and returns the new contiguous verified heads — the
// aggregate, and per stripe when the manifest is striped — plus the
// count of manifest segments not yet fully verified. Each stripe is an
// independent sequence space, so the walk groups the manifest by
// stripe prefix and verifies every group exactly as a flat mirror
// would. Interior corruption in a sealed segment — one the manifest
// shows a successor for — is divergence, not a torn tail.
func (f *Follower) verify(m Manifest) (ack uint64, stripeAcks []uint64, behind int, err error) {
	groups := map[string][]ManifestFile{}
	for _, mf := range m.Files {
		prefix, _, ok := splitStripePrefix(mf.Name)
		if !ok {
			continue
		}
		groups[prefix] = append(groups[prefix], mf)
	}
	prefixes := make([]string, 0, len(groups))
	for p := range groups {
		prefixes = append(prefixes, p)
	}
	sort.Strings(prefixes) // "" sorts first: flat group, then stripes in order
	for _, prefix := range prefixes {
		gAck, gBehind, gErr := f.verifyGroup(prefix, groups[prefix])
		if gErr != nil {
			return 0, nil, 0, gErr
		}
		f.mu.Lock()
		f.ackSeqs[prefix] = gAck
		f.mu.Unlock()
		ack += gAck
		behind += gBehind
	}
	if m.Stripes > 0 {
		stripeAcks = make([]uint64, m.Stripes)
		f.mu.Lock()
		for i := range stripeAcks {
			stripeAcks[i] = f.ackSeqs[wal.StripeDirName(i)]
		}
		f.mu.Unlock()
	}
	return ack, stripeAcks, behind, nil
}

// verifyGroup walks one sequence space: the flat layout (prefix "") or
// one stripe's files.
func (f *Follower) verifyGroup(prefix string, files []ManifestFile) (ack uint64, behind int, err error) {
	var segNames []string
	for _, mf := range files {
		if isSeg(filepath.Base(mf.Name)) {
			segNames = append(segNames, mf.Name)
		}
	}
	sort.Strings(segNames)
	// Local-only segments (pruned upstream after full shipping) stay
	// verified; re-walk only what the manifest still lists.
	f.mu.Lock()
	prevAck := f.ackSeqs[prefix]
	f.mu.Unlock()
	ack = prevAck
	// A fresh mirror (nothing acked yet) may only anchor its ack at a
	// history start a promoted daemon could actually boot from: the
	// genesis segment, or a mirrored snapshot covering every op before
	// the first segment. Without this, a mirror whose early segments
	// vanished to a prune race could ack a later segment's head while
	// holding a gapped history. snapTop is the newest manifest snapshot
	// that decodes locally (syncFile already brought every manifest
	// file to full size before verify runs).
	var snapTop uint64
	if prevAck == 0 {
		for _, mf := range files {
			base := filepath.Base(mf.Name)
			if !isSnap(base) {
				continue
			}
			var s uint64
			if _, serr := fmt.Sscanf(base, "snap-%x.snap", &s); serr != nil || s <= snapTop {
				continue
			}
			if st, serr := wal.ReadSnapshotState(filepath.Join(f.o.Dir, filepath.FromSlash(mf.Name))); serr == nil && st.Seq == s {
				snapTop = s
			}
		}
	}
	for i, name := range segNames {
		final := i == len(segNames)-1
		st := f.segStateFor(name)
		data, rerr := os.ReadFile(filepath.Join(f.o.Dir, filepath.FromSlash(name)))
		if rerr != nil {
			if os.IsNotExist(rerr) {
				behind++
				continue
			}
			return 0, 0, &DivergeError{File: name, Reason: rerr.Error()}
		}
		if !st.haveHdr {
			if len(data) < wal.SegmentHeaderLen {
				behind++
				continue // header still in flight
			}
			first, herr := wal.SegmentFirstSeq(filepath.Base(name), data)
			if herr != nil {
				return 0, 0, &DivergeError{File: name, Reason: herr.Error()}
			}
			// Cross-segment continuity: this segment must pick up
			// exactly where the previous verified one ended.
			if ack != 0 && first != ack+1 && first <= ack {
				return 0, 0, &DivergeError{File: name,
					Reason: fmt.Sprintf("segment starts at seq %d inside the verified prefix ending at %d", first, ack)}
			}
			if ack != 0 && first > ack+1 {
				// A gap ahead of us: earlier segment not yet complete.
				behind++
				continue
			}
			if ack == 0 && first > 1 && snapTop < first-1 {
				// Unanchored: the mirror cannot prove the history
				// reaches back to a bootable base yet.
				behind++
				continue
			}
			st.firstSeq, st.nextSeq, st.verified, st.haveHdr = first, first, int64(wal.SegmentHeaderLen), true
		}
		// Decode the unverified tail with torn-tolerance: bytes still in
		// flight look exactly like a torn tail.
		ops, goodLen, torn, derr := wal.DecodeSegmentFrames(name, data[st.verified:], st.verified, st.nextSeq, true)
		if derr != nil {
			return 0, 0, &DivergeError{File: name, Reason: derr.Error()}
		}
		// goodLen is absolute (baseOff-inclusive), exactly as recovery
		// reports offsets.
		st.verified = goodLen
		if len(ops) > 0 {
			st.nextSeq = ops[len(ops)-1].Seq + 1
		}
		if st.nextSeq > 0 && st.nextSeq-1 > ack {
			ack = st.nextSeq - 1
		}
		if !final && torn && st.verified < int64(len(data)) {
			// A sealed segment (a successor exists) whose bytes are all
			// here but whose tail does not decode: recovery would call
			// this corruption, so the mirror must too.
			mfSize := int64(-1)
			for _, mf := range files {
				if mf.Name == name {
					mfSize = mf.Size
					break
				}
			}
			if mfSize >= 0 && int64(len(data)) >= mfSize {
				return 0, 0, &DivergeError{File: name,
					Reason: fmt.Sprintf("sealed segment has %d undecodable trailing bytes", int64(len(data))-st.verified)}
			}
			behind++
		}
	}
	return ack, behind, nil
}

func (f *Follower) segStateFor(name string) *segState {
	f.mu.Lock()
	defer f.mu.Unlock()
	st, ok := f.segs[name]
	if !ok {
		st = &segState{}
		f.segs[name] = st
	}
	return st
}

// WriteMetrics renders the follower-side replication metrics: the two
// lag gauges the issue calls for, the divergence flag, and throughput
// counters.
func (f *Follower) WriteMetrics(w io.Writer) {
	f.mu.Lock()
	segs, secs := f.lagLocked()
	ack := f.ackSeq
	head := f.lastHead
	div := int64(0)
	if f.diverged != nil {
		div = 1
	}
	promoted := int64(0)
	if f.promoted {
		promoted = 1
	}
	f.mu.Unlock()
	writeGauge(w, "gpsd_repl_segments_behind", "whole primary WAL segments not yet verified locally", int64(segs))
	writeGaugeF(w, "gpsd_repl_seconds_behind", "seconds since this follower last matched a primary head", secs)
	writeGauge(w, "gpsd_repl_ack_seq", "highest frame-verified op sequence", int64(ack))
	writeGauge(w, "gpsd_repl_primary_head_seq", "primary head sequence at last manifest", int64(head))
	writeGauge(w, "gpsd_repl_diverged", "1 when the follower has failed closed on divergence", div)
	writeGauge(w, "gpsd_repl_promoted", "1 after this node was promoted to primary", promoted)
	writeCounter(w, "gpsd_repl_pulls_total", "successful replication passes", f.pulls.Load())
	writeCounter(w, "gpsd_repl_pull_errors_total", "failed replication passes", f.pullErrors.Load())
	writeCounter(w, "gpsd_repl_received_bytes_total", "file bytes received from the primary", f.bytesIn.Load())
	writeCounter(w, "gpsd_repl_acks_sent_total", "acks sent to the primary", f.acksSent.Load())
}
