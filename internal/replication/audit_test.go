package replication

import (
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/wal"
)

func auditTestOps(n int) []wal.Op {
	ops := make([]wal.Op, n)
	for i := range ops {
		ops[i] = wal.Op{
			Seq: uint64(i + 1), Kind: wal.KindAdmit, ID: uint64(i + 1),
			Name: "sess", Rho: 0.01, Lambda: 1, Alpha: 2, Delay: 10, Eps: 1e-6, G: 1,
		}
	}
	return ops
}

func waitDurable(t *testing.T, a *Audit, seq uint64) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for a.DurableSeq() < seq {
		if time.Now().After(deadline) {
			t.Fatalf("audit durable seq stuck at %d, want %d", a.DurableSeq(), seq)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestAuditRecordAndReload: ops recorded through the async sink land as
// durable leaf records; reopening resumes the chain at the identical
// head, and the head matches an independent FoldHead over re-encoded
// payloads.
func TestAuditRecordAndReload(t *testing.T) {
	dir := t.TempDir()
	writeWALOps(t, dir, nil) // empty log: audit starts at genesis 0
	a, err := OpenAudit(dir, AuditOptions{BatchN: 4, FlushInterval: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	ops := auditTestOps(11)
	appendWALOps(t, dir, ops)
	for _, op := range ops {
		a.Record(op)
	}
	waitDurable(t, a, 11)
	head1, sealed, next := a.Head()
	if sealed != 2 || next != 12 {
		t.Fatalf("sealed=%d next=%d, want 2/12", sealed, next)
	}
	var leaves []Hash
	for _, op := range ops {
		leaves = append(leaves, LeafHash(wal.EncodeOpPayload(nil, op)))
	}
	if want := FoldHead(0, 4, leaves); head1 != want {
		t.Fatal("live head != independent fold")
	}
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}

	a2, err := OpenAudit(dir, AuditOptions{BatchN: 999}) // stored batchN wins
	if err != nil {
		t.Fatal(err)
	}
	defer a2.Close()
	if a2.BatchN() != 4 {
		t.Fatalf("reopen batchN=%d, want stored 4", a2.BatchN())
	}
	head2, _, next2 := a2.Head()
	if head2 != head1 || next2 != 12 {
		t.Fatal("reopened chain diverges from pre-close head")
	}
}

// TestAuditBackfillFromWAL: an audit trail that lags the WAL (lost its
// tail, or the daemon crashed between wal fsync and audit fsync) is
// rebuilt from the raw op history on open — and a trail truncated
// mid-record (torn write) heals the same way.
func TestAuditBackfillFromWAL(t *testing.T) {
	dir := t.TempDir()
	ops := auditTestOps(9)
	writeWALOps(t, dir, ops)

	a, err := OpenAudit(dir, AuditOptions{BatchN: 4, FlushInterval: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	headFull, _, next := a.Head()
	if next != 10 {
		t.Fatalf("backfilled next=%d, want 10", next)
	}
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}

	// Tear the audit file mid-record; reopen must truncate and refill.
	path := filepath.Join(dir, AuditFileName)
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, info.Size()-auditRecordLen-7); err != nil {
		t.Fatal(err)
	}
	a2, err := OpenAudit(dir, AuditOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer a2.Close()
	head2, _, _ := a2.Head()
	if head2 != headFull {
		t.Fatal("healed trail head != original head")
	}
}

// TestAuditGenesisAfterPrune: opening a fresh trail against a WAL whose
// prefix was pruned starts the chain at the earliest surviving history.
func TestAuditGenesisAfterPrune(t *testing.T) {
	dir := t.TempDir()
	l, _, err := wal.Open(dir, wal.Options{SegmentBytes: 256, Sync: wal.SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	ops := auditTestOps(40)
	st := wal.State{}
	if err := l.Append(ops); err != nil {
		t.Fatal(err)
	}
	if err := wal.Replay(&st, ops); err != nil {
		t.Fatal(err)
	}
	if err := l.Snapshot(st.Clone()); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	a, err := OpenAudit(dir, AuditOptions{BatchN: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	if g := a.GenesisSeq(); g == 0 {
		t.Fatal("genesis 0 against a pruned log: lost prefix would fail verification")
	}
	if _, _, next := a.Head(); next != 41 {
		t.Fatalf("next=%d, want 41", next)
	}
}

// TestAuditTrailDecodeRejects: structural damage yields typed errors.
func TestAuditTrailDecodeRejects(t *testing.T) {
	dir := t.TempDir()
	writeWALOps(t, dir, auditTestOps(3))
	a, err := OpenAudit(dir, AuditOptions{BatchN: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, AuditFileName)
	good, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	check := func(name string, mut func([]byte) []byte) {
		data := mut(append([]byte(nil), good...))
		if _, err := decodeAuditTrail(data); err == nil {
			t.Fatalf("%s: accepted", name)
		}
	}
	check("bad magic", func(b []byte) []byte { b[0] ^= 1; return b })
	check("leaf seq gap", func(b []byte) []byte {
		b[auditHeaderLen+1] = 99 // first leaf's seq
		return b
	})
	check("unknown record", func(b []byte) []byte { b[auditHeaderLen] = 'X'; return b })

	// A tampered leaf hash decodes fine (CRC-style damage is the WAL
	// layer's job) but must change the recomputed head.
	trail, err := decodeAuditTrail(good)
	if err != nil {
		t.Fatal(err)
	}
	wantHead := FoldHead(trail.GenesisSeq, trail.BatchN, trail.LeafHashes())
	bad := append([]byte(nil), good...)
	bad[auditHeaderLen+9] ^= 0x80 // first leaf hash byte
	trail2, err := decodeAuditTrail(bad)
	if err != nil {
		t.Fatal(err)
	}
	if FoldHead(trail2.GenesisSeq, trail2.BatchN, trail2.LeafHashes()) == wantHead {
		t.Fatal("tampered leaf hash left folded head unchanged")
	}
}

// writeWALOps creates a WAL directory holding exactly ops.
func writeWALOps(t *testing.T, dir string, ops []wal.Op) {
	t.Helper()
	l, _, err := wal.Open(dir, wal.Options{Sync: wal.SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	if len(ops) > 0 {
		if err := l.Append(ops); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
}

// appendWALOps appends ops to an existing WAL directory.
func appendWALOps(t *testing.T, dir string, ops []wal.Op) {
	t.Helper()
	l, _, err := wal.Open(dir, wal.Options{Sync: wal.SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Append(ops); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
}
