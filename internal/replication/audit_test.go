package replication

import (
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/wal"
)

func auditTestOps(n int) []wal.Op {
	ops := make([]wal.Op, n)
	for i := range ops {
		ops[i] = wal.Op{
			Seq: uint64(i + 1), Kind: wal.KindAdmit, ID: uint64(i + 1),
			Name: "sess", Rho: 0.01, Lambda: 1, Alpha: 2, Delay: 10, Eps: 1e-6, G: 1,
		}
	}
	return ops
}

func waitDurable(t *testing.T, a *Audit, seq uint64) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for a.DurableSeq() < seq {
		if time.Now().After(deadline) {
			t.Fatalf("audit durable seq stuck at %d, want %d", a.DurableSeq(), seq)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestAuditRecordAndReload: ops recorded through the async sink land as
// durable leaf records; reopening resumes the chain at the identical
// head, and the head matches an independent FoldHead over re-encoded
// payloads.
func TestAuditRecordAndReload(t *testing.T) {
	dir := t.TempDir()
	writeWALOps(t, dir, nil) // empty log: audit starts at genesis 0
	a, err := OpenAudit(dir, AuditOptions{BatchN: 4, FlushInterval: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	ops := auditTestOps(11)
	appendWALOps(t, dir, ops)
	for _, op := range ops {
		a.Record(op)
	}
	waitDurable(t, a, 11)
	head1, sealed, next := a.Head()
	if sealed != 2 || next != 12 {
		t.Fatalf("sealed=%d next=%d, want 2/12", sealed, next)
	}
	var leaves []Hash
	for _, op := range ops {
		leaves = append(leaves, LeafHash(wal.EncodeOpPayload(nil, op)))
	}
	if want := FoldHead(0, 4, leaves); head1 != want {
		t.Fatal("live head != independent fold")
	}
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}

	a2, err := OpenAudit(dir, AuditOptions{BatchN: 999}) // stored batchN wins
	if err != nil {
		t.Fatal(err)
	}
	defer a2.Close()
	if a2.BatchN() != 4 {
		t.Fatalf("reopen batchN=%d, want stored 4", a2.BatchN())
	}
	head2, _, next2 := a2.Head()
	if head2 != head1 || next2 != 12 {
		t.Fatal("reopened chain diverges from pre-close head")
	}
}

// TestAuditBackfillFromWAL: an audit trail that lags the WAL (lost its
// tail, or the daemon crashed between wal fsync and audit fsync) is
// rebuilt from the raw op history on open — and a trail truncated
// mid-record (torn write) heals the same way.
func TestAuditBackfillFromWAL(t *testing.T) {
	dir := t.TempDir()
	ops := auditTestOps(9)
	writeWALOps(t, dir, ops)

	a, err := OpenAudit(dir, AuditOptions{BatchN: 4, FlushInterval: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	headFull, _, next := a.Head()
	if next != 10 {
		t.Fatalf("backfilled next=%d, want 10", next)
	}
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}

	// Tear the audit file mid-record; reopen must truncate and refill.
	path := filepath.Join(dir, AuditFileName)
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, info.Size()-auditRecordLen-7); err != nil {
		t.Fatal(err)
	}
	a2, err := OpenAudit(dir, AuditOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer a2.Close()
	head2, _, _ := a2.Head()
	if head2 != headFull {
		t.Fatal("healed trail head != original head")
	}
}

// TestAuditLeadingTrailTruncates: a trail that runs AHEAD of the
// durable log — the audit flush beat the WAL fsync before a crash, or
// a promoted follower's mirrored audit.log outlived its truncated torn
// tail — is cut back to the recovered WAL head on open. Without that,
// every Record at a reused sequence fails the chain, and once
// sequences catch up the head permanently attests ops that were never
// in the history.
func TestAuditLeadingTrailTruncates(t *testing.T) {
	dir := t.TempDir()
	l, _, err := wal.Open(dir, wal.Options{Sync: wal.SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	ops := auditTestOps(9)
	segPath := ""
	var size6 int64
	for i, op := range ops {
		if err := l.Append([]wal.Op{op}); err != nil {
			t.Fatal(err)
		}
		if i == 5 {
			entries, err := os.ReadDir(dir)
			if err != nil {
				t.Fatal(err)
			}
			for _, e := range entries {
				if wal.IsSegmentName(e.Name()) {
					segPath = filepath.Join(dir, e.Name())
				}
			}
			info, err := os.Stat(segPath)
			if err != nil {
				t.Fatal(err)
			}
			size6 = info.Size()
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	a, err := OpenAudit(dir, AuditOptions{BatchN: 4, FlushInterval: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	waitDurable(t, a, 9)
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}

	// Lose the log's tail: ops 7-9 vanish, the trail now leads by 3.
	if err := os.Truncate(segPath, size6); err != nil {
		t.Fatal(err)
	}

	head6 := uint64(6)
	a2, err := OpenAudit(dir, AuditOptions{WALHead: &head6, FlushInterval: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, next := a2.Head(); next != 7 {
		t.Fatalf("truncated trail resumes at %d, want 7", next)
	}
	var leaves []Hash
	for _, op := range ops[:6] {
		leaves = append(leaves, LeafHash(wal.EncodeOpPayload(nil, op)))
	}
	if h, _, _ := a2.Head(); h != FoldHead(0, 4, leaves) {
		t.Fatal("truncated trail head != fold over the surviving history")
	}

	// A different history now reuses sequences 7-9: the records must
	// land cleanly and the head must attest the NEW ops.
	repl := auditTestOps(9)[6:]
	for i := range repl {
		repl[i].Name = "replacement"
	}
	appendWALOps(t, dir, repl)
	for _, op := range repl {
		a2.Record(op)
	}
	waitDurable(t, a2, 9)
	if err := a2.Err(); err != nil {
		t.Fatalf("reused sequences failed the chain: %v", err)
	}
	for _, op := range repl {
		leaves = append(leaves, LeafHash(wal.EncodeOpPayload(nil, op)))
	}
	wantHead := FoldHead(0, 4, leaves)
	if h, _, _ := a2.Head(); h != wantHead {
		t.Fatal("head after reuse != fold over the real history")
	}
	if err := a2.Close(); err != nil {
		t.Fatal(err)
	}

	// Derive path (no WALHead supplied): reopen agrees, and the full
	// offline verification stack passes on the healed trail.
	a3, err := OpenAudit(dir, AuditOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if h, _, _ := a3.Head(); h != wantHead {
		t.Fatal("derive-path reopen diverges from the healed head")
	}
	if err := a3.Close(); err != nil {
		t.Fatal(err)
	}
	trail, err := ReadAuditTrail(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := trail.Recheck(); err != nil {
		t.Fatalf("healed trail fails seal recheck: %v", err)
	}
	if n, err := CrossCheckWAL(dir, trail); err != nil || n != 9 {
		t.Fatalf("healed trail cross-check: %d frames, err %v", n, err)
	}
}

// TestAuditFatalErrSurfaces: an unappendable record (sequence gap)
// latches a fatal error that Err/Flush/Close all surface, freezes
// DurableSeq (holding the prune watermark), and keeps draining the
// queue so Record never blocks forever.
func TestAuditFatalErrSurfaces(t *testing.T) {
	dir := t.TempDir()
	writeWALOps(t, dir, auditTestOps(3))
	a, err := OpenAudit(dir, AuditOptions{FlushInterval: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	bad := auditTestOps(3)[0]
	bad.Seq = 99
	a.Record(bad)
	deadline := time.Now().Add(5 * time.Second)
	for a.Err() == nil {
		if time.Now().After(deadline) {
			t.Fatal("sequence-gap record never latched a fatal error")
		}
		time.Sleep(time.Millisecond)
	}
	if got := a.DurableSeq(); got != 3 {
		t.Fatalf("durable seq moved to %d after fatal error, want frozen at 3", got)
	}
	if _, _, fatals := a.Stats(); fatals != 1 {
		t.Fatalf("fatal count %d, want 1", fatals)
	}
	for i := 0; i < 5; i++ {
		a.Record(bad) // must drain, not block or extend the trail
	}
	if err := a.Flush(); err == nil {
		t.Fatal("Flush after fatal error returned nil")
	}
	if err := a.Close(); err == nil {
		t.Fatal("Close after fatal error returned nil")
	}
	// The frozen trail reopens cleanly at the durable history.
	a2, err := OpenAudit(dir, AuditOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer a2.Close()
	if _, _, next := a2.Head(); next != 4 {
		t.Fatalf("frozen trail reopens at %d, want 4", next)
	}
}

// TestAuditGenesisAfterPrune: opening a fresh trail against a WAL whose
// prefix was pruned starts the chain at the earliest surviving history.
func TestAuditGenesisAfterPrune(t *testing.T) {
	dir := t.TempDir()
	l, _, err := wal.Open(dir, wal.Options{SegmentBytes: 256, Sync: wal.SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	ops := auditTestOps(40)
	st := wal.State{}
	if err := l.Append(ops); err != nil {
		t.Fatal(err)
	}
	if err := wal.Replay(&st, ops); err != nil {
		t.Fatal(err)
	}
	if err := l.Snapshot(st.Clone()); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	a, err := OpenAudit(dir, AuditOptions{BatchN: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	if g := a.GenesisSeq(); g == 0 {
		t.Fatal("genesis 0 against a pruned log: lost prefix would fail verification")
	}
	if _, _, next := a.Head(); next != 41 {
		t.Fatalf("next=%d, want 41", next)
	}
}

// TestAuditTrailDecodeRejects: structural damage yields typed errors.
func TestAuditTrailDecodeRejects(t *testing.T) {
	dir := t.TempDir()
	writeWALOps(t, dir, auditTestOps(3))
	a, err := OpenAudit(dir, AuditOptions{BatchN: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, AuditFileName)
	good, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	check := func(name string, mut func([]byte) []byte) {
		data := mut(append([]byte(nil), good...))
		if _, err := decodeAuditTrail(data); err == nil {
			t.Fatalf("%s: accepted", name)
		}
	}
	check("bad magic", func(b []byte) []byte { b[0] ^= 1; return b })
	check("leaf seq gap", func(b []byte) []byte {
		b[auditHeaderLen+1] = 99 // first leaf's seq
		return b
	})
	check("unknown record", func(b []byte) []byte { b[auditHeaderLen] = 'X'; return b })

	// A tampered leaf hash decodes fine (CRC-style damage is the WAL
	// layer's job) but must change the recomputed head.
	trail, err := decodeAuditTrail(good)
	if err != nil {
		t.Fatal(err)
	}
	wantHead := FoldHead(trail.GenesisSeq, trail.BatchN, trail.LeafHashes())
	bad := append([]byte(nil), good...)
	bad[auditHeaderLen+9] ^= 0x80 // first leaf hash byte
	trail2, err := decodeAuditTrail(bad)
	if err != nil {
		t.Fatal(err)
	}
	if FoldHead(trail2.GenesisSeq, trail2.BatchN, trail2.LeafHashes()) == wantHead {
		t.Fatal("tampered leaf hash left folded head unchanged")
	}
}

// writeWALOps creates a WAL directory holding exactly ops.
func writeWALOps(t *testing.T, dir string, ops []wal.Op) {
	t.Helper()
	l, _, err := wal.Open(dir, wal.Options{Sync: wal.SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	if len(ops) > 0 {
		if err := l.Append(ops); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
}

// appendWALOps appends ops to an existing WAL directory.
func appendWALOps(t *testing.T, dir string, ops []wal.Op) {
	t.Helper()
	l, _, err := wal.Open(dir, wal.Options{Sync: wal.SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Append(ops); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
}
