// Package hiergps implements two-level hierarchical GPS (link sharing in
// the spirit of Clark-Shenker-Zhang, which the paper's §1/§7 cite as the
// architecture motivating GPS): the link's capacity is GPS-shared among
// groups (agencies, service classes), and each group GPS-shares its
// allocation among its member sessions.
//
// Analysis is compositional: the outer level guarantees group g a
// clearing rate G_g = Φ_g/ΣΦ·R whenever the group is backlogged, so the
// inner level is a GPS server of rate G_g in isolation and the paper's
// single-node theory applies within the group. The bounds so obtained
// are conservative — a group may receive more than G_g when other groups
// idle — and the paired exact simulator (nested water-filling) lets
// tests measure that slack.
package hiergps

import (
	"errors"
	"fmt"

	"repro/internal/ebb"
	"repro/internal/fluid"
	"repro/internal/gpsmath"
	"repro/internal/ring"
)

// Group is one second-level GPS instance.
type Group struct {
	Name string
	Phi  float64 // outer GPS weight Φ_g
	// MemberPhi and Members describe the inner GPS instance.
	MemberPhi []float64
	Members   []ebb.Process
}

// Server is the two-level hierarchy.
type Server struct {
	Rate   float64
	Groups []Group
}

// Validate checks structure and per-group stability under the guaranteed
// group rates.
func (s Server) Validate() error {
	if !(s.Rate > 0) {
		return fmt.Errorf("hiergps: rate = %v", s.Rate)
	}
	if len(s.Groups) == 0 {
		return errors.New("hiergps: no groups")
	}
	totalPhi := 0.0
	for _, g := range s.Groups {
		totalPhi += g.Phi
	}
	for gi, g := range s.Groups {
		if !(g.Phi > 0) {
			return fmt.Errorf("hiergps: group %d (%s): phi = %v", gi, g.Name, g.Phi)
		}
		if len(g.Members) == 0 || len(g.Members) != len(g.MemberPhi) {
			return fmt.Errorf("hiergps: group %d (%s): %d members, %d weights", gi, g.Name, len(g.Members), len(g.MemberPhi))
		}
		rate := g.Phi / totalPhi * s.Rate
		load := 0.0
		for mi, m := range g.Members {
			if err := m.Validate(); err != nil {
				return fmt.Errorf("hiergps: group %d member %d: %w", gi, mi, err)
			}
			if !(g.MemberPhi[mi] > 0) {
				return fmt.Errorf("hiergps: group %d member %d: phi = %v", gi, mi, g.MemberPhi[mi])
			}
			load += m.Rho
		}
		if load >= rate {
			return fmt.Errorf("hiergps: group %d (%s) overloaded at its guaranteed rate: sum rho %v >= %v",
				gi, g.Name, load, rate)
		}
	}
	return nil
}

// GroupRate returns group g's guaranteed clearing rate Φ_g/ΣΦ·R.
func (s Server) GroupRate(g int) float64 {
	total := 0.0
	for _, gr := range s.Groups {
		total += gr.Phi
	}
	return s.Groups[g].Phi / total * s.Rate
}

// MemberBounds holds per-member bounds within one group.
type MemberBounds struct {
	Group  string
	Bounds []*gpsmath.SessionBounds
}

// Analyze runs the paper's single-node analysis inside each group at the
// group's guaranteed rate. The resulting per-member bounds hold for the
// full hierarchy: whenever a member is backlogged its group is too, so
// the group receives at least GroupRate and the inner GPS sees at least
// the modeled server.
func (s Server) Analyze(opts gpsmath.Options) ([]MemberBounds, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	out := make([]MemberBounds, len(s.Groups))
	for gi, g := range s.Groups {
		srv := gpsmath.Server{Rate: s.GroupRate(gi)}
		for mi, m := range g.Members {
			srv.Sessions = append(srv.Sessions, gpsmath.Session{
				Name:    fmt.Sprintf("%s/%d", g.Name, mi),
				Phi:     g.MemberPhi[mi],
				Arrival: m,
			})
		}
		a, err := gpsmath.AnalyzeServer(srv, opts)
		if err != nil {
			return nil, fmt.Errorf("hiergps: group %s: %w", g.Name, err)
		}
		out[gi] = MemberBounds{Group: g.Name, Bounds: a.Bounds}
	}
	return out, nil
}

// Sim is the exact two-level fluid simulator: within each slot it
// performs nested water-filling — the outer GPS reallocates capacity as
// groups drain, and each group's share reallocates as members drain.
type Sim struct {
	s    Server
	slot int

	// backlog[g][m]
	backlog [][]float64
	cumA    [][]float64
	cumS    [][]float64
	onDelay DelayFunc
	pending [][]ring.Ring[batch]

	// Per-segment scratch, preallocated so the water-filling loop makes
	// no allocations: rates[g][m] is the member's drain rate under the
	// current activity sets and groupSum[g] the group backlog computed
	// once per segment (the previous implementation allocated a fresh
	// rate matrix per segment and re-summed each group twice).
	rates    [][]float64
	groupSum []float64
}

// DelayFunc receives completed member batches.
type DelayFunc func(group, member, arrivalSlot int, delay float64)

type batch struct {
	level float64
	slot  int
}

// NewSim builds a simulator.
func NewSim(s Server, onDelay DelayFunc) (*Sim, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	sim := &Sim{s: s, onDelay: onDelay, groupSum: make([]float64, len(s.Groups))}
	for _, g := range s.Groups {
		n := len(g.Members)
		sim.backlog = append(sim.backlog, make([]float64, n))
		sim.cumA = append(sim.cumA, make([]float64, n))
		sim.cumS = append(sim.cumS, make([]float64, n))
		sim.pending = append(sim.pending, make([]ring.Ring[batch], n))
		sim.rates = append(sim.rates, make([]float64, n))
	}
	return sim, nil
}

// Backlog returns member m of group g's backlog.
func (sim *Sim) Backlog(g, m int) float64 { return sim.backlog[g][m] }

// GroupBacklog returns group g's total backlog.
func (sim *Sim) GroupBacklog(g int) float64 {
	t := 0.0
	for _, b := range sim.backlog[g] {
		t += b
	}
	return t
}

// Slot returns completed slots.
func (sim *Sim) Slot() int { return sim.slot }

const zeroTol = 1e-12

// Step advances one slot; arrivals[g][m] is member m of group g's fresh
// fluid.
func (sim *Sim) Step(arrivals [][]float64) error {
	if len(arrivals) != len(sim.s.Groups) {
		return fmt.Errorf("hiergps: %d arrival groups for %d groups", len(arrivals), len(sim.s.Groups))
	}
	for g := range arrivals {
		if len(arrivals[g]) != len(sim.s.Groups[g].Members) {
			return fmt.Errorf("hiergps: group %d: %d arrivals for %d members", g, len(arrivals[g]), len(sim.s.Groups[g].Members))
		}
		for m, a := range arrivals[g] {
			if a < 0 {
				return fmt.Errorf("hiergps: negative arrival %v", a)
			}
			if a > 0 {
				sim.backlog[g][m] += a
				sim.cumA[g][m] += a
				if sim.onDelay != nil {
					sim.pending[g][m].Push(batch{level: sim.cumA[g][m], slot: sim.slot})
				}
			}
		}
	}
	sim.drainSlot()
	sim.slot++
	return nil
}

// drainSlot performs nested water-filling over the unit slot.
func (sim *Sim) drainSlot() {
	remaining := 1.0
	for remaining > zeroTol {
		// Active groups and per-group active member weights. Group sums
		// are computed once per segment into the scratch slice (the same
		// summation order as GroupBacklog, so activity decisions are
		// unchanged).
		outerPhi := 0.0
		for g, gr := range sim.s.Groups {
			sim.groupSum[g] = sim.GroupBacklog(g)
			if sim.groupSum[g] > zeroTol {
				outerPhi += gr.Phi
			}
		}
		if outerPhi == 0 {
			break
		}
		// Per-member drain rates under the current activity sets.
		seg := remaining
		for g, gr := range sim.s.Groups {
			rates := sim.rates[g]
			for m := range rates {
				rates[m] = 0
			}
			if sim.groupSum[g] <= zeroTol {
				continue
			}
			groupRate := gr.Phi / outerPhi * sim.s.Rate
			innerPhi := 0.0
			for m := range gr.Members {
				if sim.backlog[g][m] > zeroTol {
					innerPhi += gr.MemberPhi[m]
				}
			}
			for m := range gr.Members {
				if sim.backlog[g][m] > zeroTol {
					rates[m] = gr.MemberPhi[m] / innerPhi * groupRate
					if t := sim.backlog[g][m] / rates[m]; t < seg {
						seg = t
					}
				}
			}
		}
		elapsed := 1 - remaining
		for g := range sim.s.Groups {
			for m := range sim.s.Groups[g].Members {
				r := sim.rates[g][m]
				if r == 0 {
					continue
				}
				vol := r * seg
				if vol > sim.backlog[g][m] {
					vol = sim.backlog[g][m]
				}
				sim.backlog[g][m] -= vol
				if rem := sim.backlog[g][m]; rem < zeroTol {
					vol += rem
					sim.backlog[g][m] = 0
				}
				sim.cumS[g][m] += vol
				if sim.onDelay != nil {
					sim.completeBatches(g, m, elapsed, seg, r)
				}
			}
		}
		remaining -= seg
	}
}

func (sim *Sim) completeBatches(g, m int, elapsed, seg, rate float64) {
	q := &sim.pending[g][m]
	tol := zeroTol * (1 + sim.cumS[g][m])
	for q.Len() > 0 && q.Front().level <= sim.cumS[g][m]+tol {
		b := q.Pop()
		within := seg - (sim.cumS[g][m]-b.level)/rate
		if within < 0 {
			within = 0
		} else if within > seg {
			within = seg
		}
		finish := float64(sim.slot) + elapsed + within
		sim.onDelay(g, m, b.slot, finish-float64(b.slot))
	}
}

// Run drives the simulator with a per-(group, member) generator.
func (sim *Sim) Run(slots int, gen func(group, member int) float64) error {
	arr := make([][]float64, len(sim.s.Groups))
	for g := range arr {
		arr[g] = make([]float64, len(sim.s.Groups[g].Members))
	}
	for t := 0; t < slots; t++ {
		for g := range arr {
			for m := range arr[g] {
				arr[g][m] = gen(g, m)
			}
		}
		if err := sim.Step(arr); err != nil {
			return err
		}
	}
	return nil
}

// fluidEquivalent builds the flat single-level GPS simulator with
// product weights Φ_g·φ_m — what the hierarchy degenerates to when every
// group stays busy. Exposed for tests.
func (s Server) fluidEquivalent() (*fluid.Sim, error) {
	var phi []float64
	for _, g := range s.Groups {
		inner := 0.0
		for _, p := range g.MemberPhi {
			inner += p
		}
		for _, p := range g.MemberPhi {
			phi = append(phi, g.Phi*p/inner)
		}
	}
	return fluid.New(fluid.Config{Rate: s.Rate, Phi: phi})
}
