package hiergps

import (
	"math"
	"testing"

	"repro/internal/ebb"
	"repro/internal/gpsmath"
	"repro/internal/source"
	"repro/internal/stats"
)

func twoGroupServer() Server {
	a := ebb.Process{Rho: 0.1, Lambda: 1, Alpha: 2}
	b := ebb.Process{Rho: 0.08, Lambda: 1, Alpha: 2.5}
	return Server{
		Rate: 1,
		Groups: []Group{
			{Name: "tenant-a", Phi: 0.6, MemberPhi: []float64{1, 1}, Members: []ebb.Process{a, a}},
			{Name: "tenant-b", Phi: 0.4, MemberPhi: []float64{2, 1, 1}, Members: []ebb.Process{b, b, b}},
		},
	}
}

func TestValidate(t *testing.T) {
	if err := twoGroupServer().Validate(); err != nil {
		t.Fatalf("valid server rejected: %v", err)
	}
	bad := twoGroupServer()
	bad.Rate = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero rate: want error")
	}
	bad = twoGroupServer()
	bad.Groups[0].Phi = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero group phi: want error")
	}
	bad = twoGroupServer()
	bad.Groups[1].Members = bad.Groups[1].Members[:2]
	if err := bad.Validate(); err == nil {
		t.Error("member/weight mismatch: want error")
	}
	bad = twoGroupServer()
	bad.Groups[0].Members[0].Rho = 0.7 // overload at the group's rate
	if err := bad.Validate(); err == nil {
		t.Error("group overload: want error")
	}
	if err := (Server{Rate: 1}).Validate(); err == nil {
		t.Error("no groups: want error")
	}
}

func TestGroupRates(t *testing.T) {
	s := twoGroupServer()
	if g := s.GroupRate(0); math.Abs(g-0.6) > 1e-12 {
		t.Errorf("group 0 rate %v, want 0.6", g)
	}
	if g := s.GroupRate(1); math.Abs(g-0.4) > 1e-12 {
		t.Errorf("group 1 rate %v, want 0.4", g)
	}
}

func TestAnalyzeProducesMemberBounds(t *testing.T) {
	s := twoGroupServer()
	mbs, err := s.Analyze(gpsmath.Options{Independent: true, Xi: gpsmath.XiOptimal})
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	if len(mbs) != 2 || len(mbs[0].Bounds) != 2 || len(mbs[1].Bounds) != 3 {
		t.Fatalf("bounds shape wrong: %+v", mbs)
	}
	for _, mb := range mbs {
		for _, sb := range mb.Bounds {
			if v := sb.BacklogTail(30); v > 1e-4 {
				t.Errorf("group %s member bound not decaying: %v at 30", mb.Group, v)
			}
		}
	}
}

// When every group is continuously backlogged, the hierarchy is exactly
// flat GPS with product weights: the nested simulator and the flat
// simulator must agree to numerical precision.
func TestHierEqualsFlatWhenAllBusy(t *testing.T) {
	s := twoGroupServer()
	nested, err := NewSim(s, nil)
	if err != nil {
		t.Fatal(err)
	}
	flat, err := s.fluidEquivalent()
	if err != nil {
		t.Fatal(err)
	}
	// Saturating arrivals keep everything busy.
	arr := [][]float64{{0.4, 0.4}, {0.3, 0.3, 0.3}}
	flatArr := []float64{0.4, 0.4, 0.3, 0.3, 0.3}
	for k := 0; k < 200; k++ {
		if err := nested.Step(arr); err != nil {
			t.Fatal(err)
		}
		if _, err := flat.Step(flatArr); err != nil {
			t.Fatal(err)
		}
	}
	idx := 0
	for g := range s.Groups {
		for m := range s.Groups[g].Members {
			if d := math.Abs(nested.Backlog(g, m) - flat.Backlog(idx)); d > 1e-6 {
				t.Errorf("group %d member %d: nested %v vs flat %v",
					g, m, nested.Backlog(g, m), flat.Backlog(idx))
			}
			idx++
		}
	}
}

// Hierarchical isolation: a misbehaving member of tenant A cannot degrade
// tenant B beyond B's guaranteed share — and within A, the inner GPS
// still protects A's well-behaved member.
func TestHierarchicalIsolation(t *testing.T) {
	s := twoGroupServer()
	var tenantBDelays stats.Tail
	var politeADelays stats.Tail
	sim, err := NewSim(s, func(g, m, slot int, d float64) {
		if g == 1 {
			tenantBDelays.Add(d)
		} else if m == 1 {
			politeADelays.Add(d)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	hog, err := source.NewOnOff(0.9, 0.1, 1.2, 5) // way above its share
	if err != nil {
		t.Fatal(err)
	}
	polite, err := source.NewOnOff(0.5, 0.5, 0.2, 6)
	if err != nil {
		t.Fatal(err)
	}
	bSrcs := make([]*source.OnOff, 3)
	for i := range bSrcs {
		bSrcs[i], err = source.NewOnOff(0.5, 0.5, 0.16, uint64(10+i))
		if err != nil {
			t.Fatal(err)
		}
	}
	err = sim.Run(100000, func(g, m int) float64 {
		switch {
		case g == 0 && m == 0:
			return hog.Next()
		case g == 0 && m == 1:
			return polite.Next()
		default:
			return bSrcs[m].Next()
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if tenantBDelays.N() == 0 || politeADelays.N() == 0 {
		t.Fatal("missing delay samples")
	}
	// Tenant B's sessions, at load 0.24 vs guaranteed 0.4, see small
	// delays regardless of the hog next door.
	q, err := tenantBDelays.Quantile(0.999)
	if err != nil {
		t.Fatal(err)
	}
	if q > 6 {
		t.Errorf("tenant B p99.9 delay %v under a cross-tenant hog — isolation broken", q)
	}
	// Inside tenant A, the polite member (inner weight 1 of 2 → at least
	// 0.3 of the link when A is busy) stays responsive too.
	qa, err := politeADelays.Quantile(0.999)
	if err != nil {
		t.Fatal(err)
	}
	if qa > 8 {
		t.Errorf("polite member p99.9 delay %v behind its in-group hog", qa)
	}
}

// Analytic member bounds must dominate simulated member delay tails in
// the full hierarchy (conservativeness of the compositional analysis).
func TestMemberBoundsHoldInHierarchy(t *testing.T) {
	s := twoGroupServer()
	mbs, err := s.Analyze(gpsmath.Options{Independent: true, Xi: gpsmath.XiOptimal})
	if err != nil {
		t.Fatal(err)
	}
	tails := [][]*stats.Tail{
		{{}, {}},
		{{}, {}, {}},
	}
	sim, err := NewSim(s, func(g, m, slot int, d float64) {
		tails[g][m].Add(d)
	})
	if err != nil {
		t.Fatal(err)
	}
	srcs := [][]*source.OnOff{make([]*source.OnOff, 2), make([]*source.OnOff, 3)}
	peaks := [][]float64{{0.2, 0.2}, {0.16, 0.16, 0.16}}
	for g := range srcs {
		for m := range srcs[g] {
			srcs[g][m], err = source.NewOnOff(0.5, 0.5, peaks[g][m], uint64(100+10*g+m))
			if err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := sim.Run(150000, func(g, m int) float64 { return srcs[g][m].Next() }); err != nil {
		t.Fatal(err)
	}
	for g := range tails {
		for m, tail := range tails[g] {
			for _, d := range []float64{3, 6, 10} {
				emp := tail.CCDF(d)
				bnd := mbs[g].Bounds[m].DelayTail(math.Max(d-1, 0))
				if emp > bnd*1.5+1e-9 {
					t.Errorf("group %d member %d: Pr{D>=%v} sim %v above bound %v", g, m, d, emp, bnd)
				}
			}
		}
	}
}

func TestStepValidation(t *testing.T) {
	s := twoGroupServer()
	sim, err := NewSim(s, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.Step([][]float64{{1, 1}}); err == nil {
		t.Error("wrong group count: want error")
	}
	if err := sim.Step([][]float64{{1}, {1, 1, 1}}); err == nil {
		t.Error("wrong member count: want error")
	}
	if err := sim.Step([][]float64{{1, -1}, {0, 0, 0}}); err == nil {
		t.Error("negative arrival: want error")
	}
	if sim.Slot() != 0 {
		t.Errorf("failed steps advanced the clock: %d", sim.Slot())
	}
}
