package plot

import (
	"strings"
	"testing"
)

func twoSeries() []Series {
	x := []float64{0, 1, 2, 3, 4}
	return []Series{
		{Name: "bound", X: x, Y: []float64{1, 0.1, 0.01, 0.001, 0.0001}},
		{Name: "sim", X: x, Y: []float64{0.5, 0.05, 0.004, 0.0003, 0.00001}},
	}
}

func TestRenderLog(t *testing.T) {
	out, err := RenderLog(twoSeries(), 40, 10, 1e-12)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "bound") || !strings.Contains(out, "sim") {
		t.Error("legend missing series names")
	}
	if !strings.Contains(out, "log10(y)") {
		t.Error("missing y-axis annotation")
	}
	lines := strings.Split(out, "\n")
	if len(lines) < 12 {
		t.Errorf("unexpectedly short render: %d lines", len(lines))
	}
}

func TestRenderLogErrors(t *testing.T) {
	if _, err := RenderLog(nil, 40, 10, 0); err == nil {
		t.Error("no series: want error")
	}
	if _, err := RenderLog(twoSeries(), 4, 2, 0); err == nil {
		t.Error("tiny area: want error")
	}
	bad := []Series{{Name: "bad", X: []float64{1}, Y: nil}}
	if _, err := RenderLog(bad, 40, 10, 0); err == nil {
		t.Error("mismatched series: want error")
	}
}

func TestRenderLogClipsNonPositive(t *testing.T) {
	s := []Series{{Name: "z", X: []float64{0, 1}, Y: []float64{0, 1}}}
	if _, err := RenderLog(s, 20, 5, 1e-9); err != nil {
		t.Fatalf("zero values should clip, not fail: %v", err)
	}
}

func TestRenderLogConstantSeries(t *testing.T) {
	s := []Series{{Name: "c", X: []float64{2, 2}, Y: []float64{0.5, 0.5}}}
	if _, err := RenderLog(s, 20, 5, 0); err != nil {
		t.Fatalf("degenerate ranges should render: %v", err)
	}
}

func TestWriteCSV(t *testing.T) {
	var b strings.Builder
	if err := WriteCSV(&b, twoSeries()); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if lines[0] != "x,bound,sim" {
		t.Errorf("header = %q", lines[0])
	}
	if len(lines) != 6 {
		t.Errorf("%d lines, want 6", len(lines))
	}
	if !strings.HasPrefix(lines[1], "0,1,0.5") {
		t.Errorf("first row = %q", lines[1])
	}
}

func TestWriteCSVErrors(t *testing.T) {
	var b strings.Builder
	if err := WriteCSV(&b, nil); err == nil {
		t.Error("no series: want error")
	}
	mismatch := []Series{
		{Name: "a", X: []float64{1, 2}, Y: []float64{1, 2}},
		{Name: "b", X: []float64{1}, Y: []float64{1}},
	}
	if err := WriteCSV(&b, mismatch); err == nil {
		t.Error("mismatched grids: want error")
	}
}

func TestTable(t *testing.T) {
	out := Table([]string{"session", "rho"}, [][]string{{"1", "0.2"}, {"22", "0.25"}})
	if !strings.Contains(out, "session") || !strings.Contains(out, "0.25") {
		t.Errorf("table missing content:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 {
		t.Errorf("%d lines, want 4 (header, rule, 2 rows)", len(lines))
	}
	// Alignment: all rows should have equal printed width per column.
	if len(lines[0]) == 0 || lines[1][0] != '-' {
		t.Errorf("missing separator rule: %q", lines[1])
	}
}
