// Package plot renders experiment series as ASCII charts (the repo's
// "figures") and writes them as CSV for external tooling. Log-scale
// rendering is the default since every figure in the paper is a
// log-scale tail plot.
package plot

import (
	"errors"
	"fmt"
	"io"
	"math"
	"strings"
)

// Series is one named curve.
type Series struct {
	Name string
	X    []float64
	Y    []float64
}

// Validate checks the series is plottable.
func (s Series) Validate() error {
	if len(s.X) == 0 || len(s.X) != len(s.Y) {
		return fmt.Errorf("plot: series %q has %d x and %d y points", s.Name, len(s.X), len(s.Y))
	}
	return nil
}

// markers cycles through per-series point glyphs.
var markers = []byte{'*', '+', 'o', 'x', '#', '@', '%', '&'}

// RenderLog renders the series on a log10 y-axis as ASCII art. Values
// <= 0 (or below floor) are clipped to floor. width and height are the
// plot-area dimensions in characters.
func RenderLog(series []Series, width, height int, floor float64) (string, error) {
	if len(series) == 0 {
		return "", errors.New("plot: no series")
	}
	if width < 16 || height < 4 {
		return "", fmt.Errorf("plot: area %dx%d too small", width, height)
	}
	if floor <= 0 {
		floor = 1e-12
	}
	xmin, xmax := math.Inf(1), math.Inf(-1)
	ymin, ymax := math.Inf(1), math.Inf(-1)
	for _, s := range series {
		if err := s.Validate(); err != nil {
			return "", err
		}
		for i := range s.X {
			x := s.X[i]
			y := math.Log10(math.Max(s.Y[i], floor))
			xmin, xmax = math.Min(xmin, x), math.Max(xmax, x)
			ymin, ymax = math.Min(ymin, y), math.Max(ymax, y)
		}
	}
	if xmax == xmin {
		xmax = xmin + 1
	}
	if ymax == ymin {
		ymax = ymin + 1
	}
	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	for si, s := range series {
		m := markers[si%len(markers)]
		for i := range s.X {
			cx := int((s.X[i] - xmin) / (xmax - xmin) * float64(width-1))
			y := math.Log10(math.Max(s.Y[i], floor))
			cy := int((y - ymin) / (ymax - ymin) * float64(height-1))
			row := height - 1 - cy
			if row >= 0 && row < height && cx >= 0 && cx < width {
				grid[row][cx] = m
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "log10(y): %.2f (top) .. %.2f (bottom)\n", ymax, ymin)
	for _, row := range grid {
		b.WriteString("|")
		b.Write(row)
		b.WriteString("\n")
	}
	b.WriteString("+" + strings.Repeat("-", width) + "\n")
	fmt.Fprintf(&b, " x: %.3g .. %.3g\n", xmin, xmax)
	for si, s := range series {
		fmt.Fprintf(&b, " %c %s\n", markers[si%len(markers)], s.Name)
	}
	return b.String(), nil
}

// WriteCSV writes the series as CSV with a shared x column taken from the
// first series; every series must share that x grid.
func WriteCSV(w io.Writer, series []Series) error {
	if len(series) == 0 {
		return errors.New("plot: no series")
	}
	for _, s := range series {
		if err := s.Validate(); err != nil {
			return err
		}
		if len(s.X) != len(series[0].X) {
			return fmt.Errorf("plot: series %q has %d points, first has %d", s.Name, len(s.X), len(series[0].X))
		}
	}
	header := []string{"x"}
	for _, s := range series {
		header = append(header, s.Name)
	}
	if _, err := fmt.Fprintln(w, strings.Join(header, ",")); err != nil {
		return err
	}
	for i := range series[0].X {
		row := []string{fmt.Sprintf("%g", series[0].X[i])}
		for _, s := range series {
			row = append(row, fmt.Sprintf("%g", s.Y[i]))
		}
		if _, err := fmt.Fprintln(w, strings.Join(row, ",")); err != nil {
			return err
		}
	}
	return nil
}

// Table renders an aligned text table; the experiments use it for the
// paper's numeric tables.
func Table(headers []string, rows [][]string) string {
	widths := make([]int, len(headers))
	for i, h := range headers {
		widths[i] = len(h)
	}
	for _, row := range rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteString("\n")
	}
	writeRow(headers)
	sep := make([]string, len(headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range rows {
		writeRow(row)
	}
	return b.String()
}
