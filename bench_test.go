// Benchmark harness: one benchmark per paper table/figure plus the
// extension and ablation experiments indexed in DESIGN.md. Each benchmark
// times the computation and, once, prints the regenerated rows/series so
// `go test -bench=.` doubles as the reproduction run (EXPERIMENTS.md
// records the resulting numbers against the paper's).
package repro

import (
	"context"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/admission"
	"repro/internal/classgps"
	"repro/internal/cluster"
	"repro/internal/ebb"
	"repro/internal/fluid"
	"repro/internal/gpsmath"
	"repro/internal/hiergps"
	"repro/internal/lbap"
	"repro/internal/mc"
	"repro/internal/netsim"
	"repro/internal/network"
	"repro/internal/paper"
	"repro/internal/pgps"
	"repro/internal/pktnet"
	"repro/internal/replication"
	"repro/internal/server"
	"repro/internal/source"
	"repro/internal/stats"
	"repro/internal/wal"
)

// printOnce keys one-shot result printing by benchmark name so repeated
// b.N calibration runs do not spam the output.
var printOnce sync.Map

func once(name string, f func()) {
	if _, loaded := printOnce.LoadOrStore(name, true); !loaded {
		f()
	}
}

// ------------------------------------------------------------- TAB1 ----

// BenchmarkTable1 regenerates Table 1 (source parameters and their means)
// and times the analytic model construction.
func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		models, err := paper.Models()
		if err != nil {
			b.Fatal(err)
		}
		for _, m := range models {
			if _, err := m.MeanRate(); err != nil {
				b.Fatal(err)
			}
		}
	}
	once("table1", func() {
		fmt.Println("\nTAB1 — Table 1: session (p, q, lambda, mean)")
		for i, p := range paper.Table1 {
			fmt.Printf("  %d: p=%.2f q=%.2f lambda=%.2f mean=%.2f\n", i+1, p.P, p.Q, p.Lambda, p.Mean())
		}
	})
}

// ------------------------------------------------------------- TAB2 ----

// BenchmarkTable2 regenerates both Table 2 characterization sets via the
// spectral-radius route and reports the worst relative deviation from the
// paper's printed values as a metric.
func BenchmarkTable2(b *testing.B) {
	var set1, set2 []ebb.Process
	var err error
	for i := 0; i < b.N; i++ {
		set1, err = paper.Table2(paper.Set1Rho)
		if err != nil {
			b.Fatal(err)
		}
		set2, err = paper.Table2(paper.Set2Rho)
		if err != nil {
			b.Fatal(err)
		}
	}
	worst := 0.0
	for i := range set1 {
		for _, dev := range []float64{
			math.Abs(set1[i].Alpha-paper.PaperSet1Alpha[i]) / paper.PaperSet1Alpha[i],
			math.Abs(set1[i].Lambda-paper.PaperSet1Lambda[i]) / paper.PaperSet1Lambda[i],
			math.Abs(set2[i].Alpha-paper.PaperSet2Alpha[i]) / paper.PaperSet2Alpha[i],
			math.Abs(set2[i].Lambda-paper.PaperSet2Lambda[i]) / paper.PaperSet2Lambda[i],
		} {
			if dev > worst {
				worst = dev
			}
		}
	}
	b.ReportMetric(worst, "worst-rel-dev-vs-paper")
	once("table2", func() {
		fmt.Println("\nTAB2 — Table 2 regenerated (computed | paper):")
		for i := range set1 {
			fmt.Printf("  set1 s%d: Λ %.3f|%.3f  α %.3f|%.3f\n", i+1,
				set1[i].Lambda, paper.PaperSet1Lambda[i], set1[i].Alpha, paper.PaperSet1Alpha[i])
		}
		for i := range set2 {
			fmt.Printf("  set2 s%d: Λ %.3f|%.3f  α %.3f|%.3f\n", i+1,
				set2[i].Lambda, paper.PaperSet2Lambda[i], set2[i].Alpha, paper.PaperSet2Alpha[i])
		}
	})
}

// ----------------------------------------------------------- FIG3a/b ----

func benchFigure3(b *testing.B, name string, rhos []float64) {
	chars, err := paper.Table2(rhos)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		if _, err := paper.Figure3(chars, 60, 60); err != nil {
			b.Fatal(err)
		}
	}
	out, err := paper.Figure3(chars, 60, 6)
	if err != nil {
		b.Fatal(err)
	}
	once(name, func() {
		fmt.Printf("\n%s — end-to-end delay bounds Pr{D>=d} at d=0,10,...,60:\n", name)
		for _, s := range out {
			fmt.Printf("  %s:", s.Name)
			for k := range s.X {
				fmt.Printf(" %.2e", s.Y[k])
			}
			fmt.Println()
		}
	})
}

// BenchmarkFigure3a regenerates Figure 3(a) (Set 1).
func BenchmarkFigure3a(b *testing.B) { benchFigure3(b, "FIG3A", paper.Set1Rho) }

// BenchmarkFigure3b regenerates Figure 3(b) (Set 2).
func BenchmarkFigure3b(b *testing.B) { benchFigure3(b, "FIG3B", paper.Set2Rho) }

// ------------------------------------------------------------- FIG4 ----

// BenchmarkFigure4 regenerates the improved (direct Markov-bound) curves
// and reports the tail improvement factor over Figure 3(b) at d = 60.
func BenchmarkFigure4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := paper.Figure4(60, 60); err != nil {
			b.Fatal(err)
		}
	}
	f4, err := paper.Figure4(60, 6)
	if err != nil {
		b.Fatal(err)
	}
	set2, err := paper.Table2(paper.Set2Rho)
	if err != nil {
		b.Fatal(err)
	}
	f3b, err := paper.Figure3(set2, 60, 6)
	if err != nil {
		b.Fatal(err)
	}
	minGain := math.Inf(1)
	for i := range f4 {
		last := len(f4[i].Y) - 1
		if f4[i].Y[last] > 0 {
			if g := f3b[i].Y[last] / f4[i].Y[last]; g < minGain {
				minGain = g
			}
		}
	}
	b.ReportMetric(minGain, "min-tail-gain-vs-fig3b@d=60")
	once("fig4", func() {
		fmt.Println("\nFIG4 — improved bounds Pr{D>=d} at d=0,10,...,60:")
		for _, s := range f4 {
			fmt.Printf("  %s:", s.Name)
			for k := range s.X {
				fmt.Printf(" %.2e", s.Y[k])
			}
			fmt.Println()
		}
		fmt.Printf("  minimum improvement factor over FIG3B at d=60: %.3g\n", minGain)
	})
}

// ---------------------------------------------------------- EXT-SIM ----

// BenchmarkBoundVsSim simulates the Figure 2 tree and checks that the
// simulated end-to-end delay tails sit below the Figure 3(a) bounds
// (after the documented <=3-slot pipeline/rounding offset). The reported
// metric is the worst simulated/bound ratio over the probed levels.
func BenchmarkBoundVsSim(b *testing.B) {
	const slots = 100000
	var tails []*stats.Tail
	var err error
	for i := 0; i < b.N; i++ {
		tails, err = paper.TreeSim(paper.Set1Rho, slots, 42)
		if err != nil {
			b.Fatal(err)
		}
	}
	chars, err := paper.Table2(paper.Set1Rho)
	if err != nil {
		b.Fatal(err)
	}
	net := paper.Tree(chars)
	bounds, err := net.RPPSBounds(network.VariantDiscrete)
	if err != nil {
		b.Fatal(err)
	}
	worst := 0.0
	for i, tail := range tails {
		for _, d := range []float64{8, 12, 16} {
			bound := bounds[i].Delay.Eval(d - 3)
			if bound > 0 {
				if r := tail.CCDF(d) / bound; r > worst {
					worst = r
				}
			}
		}
	}
	b.ReportMetric(worst, "worst-sim/bound-ratio")
	once("boundvssim", func() {
		fmt.Printf("\nEXT-SIM — simulated tree (%d slots) vs Theorem 15 bounds:\n", slots)
		for i, tail := range tails {
			fmt.Printf("  %s: Pr{D>=8} sim %.2e bound %.2e | Pr{D>=16} sim %.2e bound %.2e\n",
				paper.SessionNames[i], tail.CCDF(8), bounds[i].Delay.Eval(5),
				tail.CCDF(16), bounds[i].Delay.Eval(13))
		}
		fmt.Printf("  worst sim/bound ratio (want <= 1): %.3g\n", worst)
	})
	if worst > 1 {
		b.Fatalf("simulated tail exceeds bound: ratio %v", worst)
	}
}

// ---------------------------------------------------------- EXT-DET ----

// BenchmarkDetVsStat compares Parekh-Gallager hard delay bounds (leaky
// buckets sized from long traces) against the statistical bounds at
// violation level 1e-3 for the tree network.
func BenchmarkDetVsStat(b *testing.B) {
	chars, err := paper.Table2(paper.Set1Rho)
	if err != nil {
		b.Fatal(err)
	}
	net := paper.Tree(chars)
	srcs, err := paper.Sources(7)
	if err != nil {
		b.Fatal(err)
	}
	traces := make([][]float64, len(srcs))
	for i, s := range srcs {
		traces[i] = source.Record(s, 500000)
	}
	type row struct{ det, stat1e3, stat1e6 float64 }
	var rows []row
	for i := 0; i < b.N; i++ {
		rows = rows[:0]
		for j := range traces {
			sigma := lbap.MinSigma(traces[j], paper.Set1Rho[j])
			det, err := lbap.RPPSNetworkBound(lbap.Envelope{Sigma: sigma, Rho: paper.Set1Rho[j]}, net.GNet(j))
			if err != nil {
				b.Fatal(err)
			}
			nb, err := net.RPPSBound(j, network.VariantDiscrete)
			if err != nil {
				b.Fatal(err)
			}
			rows = append(rows, row{det: det.Delay, stat1e3: nb.Delay.Invert(1e-3), stat1e6: nb.Delay.Invert(1e-6)})
		}
	}
	gain := 0.0
	for _, r := range rows {
		gain += r.det / r.stat1e3
	}
	b.ReportMetric(gain/float64(len(rows)), "det/stat@1e-3-delay-ratio")
	once("detvstat", func() {
		fmt.Println("\nEXT-DET — hard vs soft end-to-end delay budgets:")
		for j, r := range rows {
			fmt.Printf("  %s: D_det=%.1f  D_stat(1e-3)=%.1f  D_stat(1e-6)=%.1f\n",
				paper.SessionNames[j], r.det, r.stat1e3, r.stat1e6)
		}
	})
}

// --------------------------------------------------------- EXT-PGPS ----

// BenchmarkPGPSvsGPS runs identical traffic through the packetized WFQ
// simulator and the exact fluid GPS simulator and reports the largest
// finish-time gap, which Parekh & Gallager bound by L_max/r.
func BenchmarkPGPSvsGPS(b *testing.B) {
	const slots = 5000
	phi := []float64{0.2, 0.25, 0.2, 0.25}
	srcs, err := paper.Sources(60)
	if err != nil {
		b.Fatal(err)
	}
	arrivals := make([][]float64, slots)
	for s := range arrivals {
		arrivals[s] = make([]float64, 4)
		for i := range arrivals[s] {
			arrivals[s][i] = srcs[i].Next()
		}
	}
	var worstGap float64
	for i := 0; i < b.N; i++ {
		worstGap = 0
		type key struct{ sess, slot int }
		gpsFinish := map[key]float64{}
		sim, err := fluid.New(fluid.Config{Rate: 1, Phi: phi, OnDelay: func(sess, slot int, d float64) {
			gpsFinish[key{sess, slot}] = float64(slot) + d
		}})
		if err != nil {
			b.Fatal(err)
		}
		var pkts []pgps.Packet
		for s := 0; s < slots; s++ {
			if _, err := sim.Step(arrivals[s]); err != nil {
				b.Fatal(err)
			}
			for j, v := range arrivals[s] {
				if v > 0 {
					pkts = append(pkts, pgps.Packet{Session: j, Size: v, Arrival: float64(s)})
				}
			}
		}
		for k := 0; k < 100; k++ {
			if _, err := sim.Step([]float64{0, 0, 0, 0}); err != nil {
				b.Fatal(err)
			}
		}
		w, err := pgps.NewWFQ(1, phi)
		if err != nil {
			b.Fatal(err)
		}
		comps, err := pgps.Simulate(1, w, pkts)
		if err != nil {
			b.Fatal(err)
		}
		for _, c := range comps {
			g := gpsFinish[key{c.Packet.Session, int(c.Packet.Arrival)}]
			if gap := c.Finish - g; gap > worstGap {
				worstGap = gap
			}
		}
	}
	b.ReportMetric(worstGap, "worst-finish-gap-(<=Lmax/r=1)")
	once("pgpsvsgps", func() {
		fmt.Printf("\nEXT-PGPS — worst PGPS-vs-GPS finish gap: %.4f (theorem bound: 1.0)\n", worstGap)
	})
	if worstGap > 1+1e-6 {
		b.Fatalf("PGPS finish gap %v exceeds Lmax/r", worstGap)
	}
}

// ------------------------------------------------------ EXT-THM7 -------

// BenchmarkPartitionAblation contrasts the global-ordering route
// (Theorem 7) with the feasible-partition route (Theorems 10/11) on the
// Set-1 RPPS node: backlog levels q with Pr{Q >= q} <= 1e-6 per session.
func BenchmarkPartitionAblation(b *testing.B) {
	chars, err := paper.Table2(paper.Set1Rho)
	if err != nil {
		b.Fatal(err)
	}
	srv := gpsmath.NewRPPSServer(1, chars, nil)
	var a *gpsmath.Analysis
	for i := 0; i < b.N; i++ {
		a, err = gpsmath.AnalyzeServer(srv, gpsmath.Options{Independent: true, Xi: gpsmath.XiOptimal})
		if err != nil {
			b.Fatal(err)
		}
	}
	sumGain := 0.0
	for i := range srv.Sessions {
		ordQ := a.OrderingBounds[i].BacklogQuantile(1e-6)
		partQ := a.Bounds[i].BacklogQuantile(1e-6)
		sumGain += ordQ / partQ
	}
	b.ReportMetric(sumGain/float64(len(srv.Sessions)), "ordering/partition-quantile-ratio")
	once("partition", func() {
		fmt.Println("\nEXT-THM7 — backlog q with bound 1e-6, per session (ordering | partition):")
		for i := range srv.Sessions {
			fmt.Printf("  s%d: %.2f | %.2f\n", i+1,
				a.OrderingBounds[i].BacklogQuantile(1e-6), a.Bounds[i].BacklogQuantile(1e-6))
		}
	})
}

// ---------------------------------------------------- EXT-HOLDER -------

// BenchmarkHolderAblation measures what dropping the independence
// assumption costs: Theorem 7 vs Theorem 8 delay quantiles at 1e-6.
func BenchmarkHolderAblation(b *testing.B) {
	chars, err := paper.Table2(paper.Set1Rho)
	if err != nil {
		b.Fatal(err)
	}
	srv := gpsmath.NewRPPSServer(1, chars, nil)
	var ind, dep *gpsmath.Analysis
	for i := 0; i < b.N; i++ {
		ind, err = gpsmath.AnalyzeServer(srv, gpsmath.Options{Independent: true, Xi: gpsmath.XiOne})
		if err != nil {
			b.Fatal(err)
		}
		dep, err = gpsmath.AnalyzeServer(srv, gpsmath.Options{Independent: false, Xi: gpsmath.XiOne})
		if err != nil {
			b.Fatal(err)
		}
	}
	sum := 0.0
	for i := range srv.Sessions {
		sum += dep.OrderingBounds[i].DelayQuantile(1e-6) / ind.OrderingBounds[i].DelayQuantile(1e-6)
	}
	b.ReportMetric(sum/float64(len(srv.Sessions)), "holder/independent-quantile-ratio")
	once("holder", func() {
		fmt.Println("\nEXT-HOLDER — delay d with bound 1e-6 (independent thm7 | dependent thm8):")
		for i := range srv.Sessions {
			fmt.Printf("  s%d: %.2f | %.2f\n", i+1,
				ind.OrderingBounds[i].DelayQuantile(1e-6), dep.OrderingBounds[i].DelayQuantile(1e-6))
		}
	})
}

// -------------------------------------------------------- XI ablation --

// BenchmarkXiAblation quantifies the ξ=1 vs optimized-ξ choice in the
// Lemma 6 terms (DESIGN.md §5).
func BenchmarkXiAblation(b *testing.B) {
	chars, err := paper.Table2(paper.Set1Rho)
	if err != nil {
		b.Fatal(err)
	}
	srv := gpsmath.NewRPPSServer(1, chars, nil)
	var one, opt *gpsmath.Analysis
	for i := 0; i < b.N; i++ {
		one, err = gpsmath.AnalyzeServer(srv, gpsmath.Options{Independent: true, Xi: gpsmath.XiOne})
		if err != nil {
			b.Fatal(err)
		}
		opt, err = gpsmath.AnalyzeServer(srv, gpsmath.Options{Independent: true, Xi: gpsmath.XiOptimal})
		if err != nil {
			b.Fatal(err)
		}
	}
	sum := 0.0
	for i := range srv.Sessions {
		sum += one.OrderingBounds[i].BacklogQuantile(1e-6) / opt.OrderingBounds[i].BacklogQuantile(1e-6)
	}
	b.ReportMetric(sum/float64(len(srv.Sessions)), "xi1/xiopt-quantile-ratio")
	once("xi", func() {
		fmt.Println("\nXI — backlog q with bound 1e-6 (xi=1 | optimized xi):")
		for i := range srv.Sessions {
			fmt.Printf("  s%d: %.2f | %.2f\n", i+1,
				one.OrderingBounds[i].BacklogQuantile(1e-6), opt.OrderingBounds[i].BacklogQuantile(1e-6))
		}
	})
}

// ------------------------------------------------------ EXT-CLASS ------

// BenchmarkClassGPS runs the paper's §7 class-structure proposal: GPS
// across voice/video/data classes with FCFS inside, reporting the ratio
// of the simulated per-member p99.9 delay under per-session GPS to the
// class-based one (multiplexing gain; > 1 means classing helps).
func BenchmarkClassGPS(b *testing.B) {
	voice := ebb.Process{Rho: 0.05, Lambda: 1, Alpha: 3}
	bg := ebb.Process{Rho: 0.55, Lambda: 1, Alpha: 3}
	server := classgps.Server{Rate: 1, Classes: []classgps.Class{
		{Name: "voice", Phi: 0.2, Members: []ebb.Process{voice, voice, voice, voice}},
		{Name: "bg", Phi: 0.55, Members: []ebb.Process{bg}},
	}}
	const slots = 50000
	var classedP999, separateP999 float64
	for i := 0; i < b.N; i++ {
		mk := func(seed uint64) []*source.OnOff {
			out := make([]*source.OnOff, 4)
			for j := range out {
				s, err := source.NewOnOff(0.5, 0.5, 0.1, seed+uint64(j))
				if err != nil {
					b.Fatal(err)
				}
				out[j] = s
			}
			return out
		}
		var classed stats.Tail
		simC, err := classgps.NewSim(server, func(member, slot int, d float64) {
			if member < 4 {
				classed.Add(d)
			}
		})
		if err != nil {
			b.Fatal(err)
		}
		srcs := mk(100)
		if err := simC.Run(slots, func(m int) float64 {
			if m < 4 {
				return srcs[m].Next()
			}
			return 0.55
		}); err != nil {
			b.Fatal(err)
		}
		var separate stats.Tail
		simS, err := fluid.New(fluid.Config{
			Rate: 1, Phi: []float64{0.05, 0.05, 0.05, 0.05, 0.55},
			OnDelay: func(sess, slot int, d float64) {
				if sess < 4 {
					separate.Add(d)
				}
			},
		})
		if err != nil {
			b.Fatal(err)
		}
		srcs2 := mk(100)
		if err := simS.Run(slots, func(j int) float64 {
			if j < 4 {
				return srcs2[j].Next()
			}
			return 0.55
		}); err != nil {
			b.Fatal(err)
		}
		classedP999, _ = classed.Quantile(0.999)
		separateP999, _ = separate.Quantile(0.999)
	}
	gain := separateP999 / classedP999
	b.ReportMetric(gain, "p99.9-delay-multiplexing-gain")
	once("classgps", func() {
		fmt.Printf("\nEXT-CLASS — p99.9 member delay: classed %.2f vs per-session GPS %.2f (gain %.2fx)\n",
			classedP999, separateP999, gain)
	})
}

// ------------------------------------------------------ EXT-ADMIT ------

// BenchmarkAdmission measures how many Table-1-style sessions the
// statistical admission controller packs onto a unit link for a
// Pr{D >= 25} <= 1e-4 target, against peak-rate allocation.
func BenchmarkAdmission(b *testing.B) {
	src, err := source.NewOnOff(0.4, 0.4, 0.4, 1)
	if err != nil {
		b.Fatal(err)
	}
	char, err := src.EBBPaper(0.25)
	if err != nil {
		b.Fatal(err)
	}
	tgt := admission.Target{Delay: 25, Eps: 1e-4}
	var admitted int
	for i := 0; i < b.N; i++ {
		c, err := admission.NewController(1)
		if err != nil {
			b.Fatal(err)
		}
		admitted = 0
		for {
			if _, err := c.Admit(admission.Request{Name: "s", Arrival: char, Target: tgt}); err != nil {
				break
			}
			admitted++
		}
	}
	peak := int(1 / src.PeakRate())
	b.ReportMetric(float64(admitted), "sessions-admitted")
	once("admit", func() {
		fmt.Printf("\nEXT-ADMIT — admitted %d sessions (peak-rate allocation: %d, mean-rate: %d)\n",
			admitted, peak, int(1/src.MeanRate()))
	})
}

// ------------------------------------------------------ EXT-CRST -------

// BenchmarkCRSTNetwork times the recursive Theorem 13 analysis on the
// paper tree and reports the session-1 end-to-end delay level at 1e-6.
func BenchmarkCRSTNetwork(b *testing.B) {
	chars, err := paper.Table2(paper.Set1Rho)
	if err != nil {
		b.Fatal(err)
	}
	net := paper.Tree(chars)
	var a *network.CRSTAnalysis
	for i := 0; i < b.N; i++ {
		a, err = net.AnalyzeCRST(network.CRSTOptions{Independent: true, ThetaFraction: 0.6})
		if err != nil {
			b.Fatal(err)
		}
	}
	tail := a.EndToEndDelayExpTail(0)
	b.ReportMetric(tail.Invert(1e-6), "s1-e2e-delay@1e-6")
	once("crst", func() {
		fmt.Printf("\nEXT-CRST — recursive route: session 1 D(1e-6) <= %.1f slots (closed-form RPPS: ", tail.Invert(1e-6))
		rpps, err := net.RPPSBound(0, network.VariantDiscrete)
		if err == nil {
			fmt.Printf("%.1f)\n", rpps.Delay.Invert(1e-6))
		} else {
			fmt.Println("n/a)")
		}
	})
}

// ------------------------------------------------------ EXT-PKTNET ----

// BenchmarkPacketNetwork runs the paper tree as a WFQ packet network and
// verifies the measured delay tail stays inside the packetized
// statistical budget (fluid bound + per-hop L_max/r). The metric is the
// worst observed delay as a fraction of the 1e-4 budget.
func BenchmarkPacketNetwork(b *testing.B) {
	phi := []float64{0.2, 0.25, 0.2, 0.25}
	routes := [][]int{{0, 2}, {0, 2}, {1, 2}, {1, 2}}
	chars, err := paper.Table2(paper.Set1Rho)
	if err != nil {
		b.Fatal(err)
	}
	net := paper.Tree(chars)
	bounds, err := net.RPPSBounds(network.VariantDiscrete)
	if err != nil {
		b.Fatal(err)
	}
	const slots = 30000
	var worstFrac float64
	for i := 0; i < b.N; i++ {
		srcs, err := paper.Sources(60)
		if err != nil {
			b.Fatal(err)
		}
		var pkts []pktnet.Packet
		lmax := 0.0
		for s := 0; s < slots; s++ {
			for j := range srcs {
				if v := srcs[j].Next(); v > 0 {
					pkts = append(pkts, pktnet.Packet{Session: j, Size: v, Release: float64(s)})
					if v > lmax {
						lmax = v
					}
				}
			}
		}
		comps, err := pktnet.Run(pktnet.Config{
			Nodes:  []pktnet.Node{{Rate: 1}, {Rate: 1}, {Rate: 1}},
			Routes: routes,
			NewScheduler: func(node int) (pgps.Scheduler, error) {
				return pgps.NewWFQ(1, phi)
			},
		}, pkts)
		if err != nil {
			b.Fatal(err)
		}
		worstFrac = 0
		maxDelay := make([]float64, 4)
		for _, c := range comps {
			if d := c.Delay(); d > maxDelay[c.Session] {
				maxDelay[c.Session] = d
			}
		}
		for j := range maxDelay {
			budget := bounds[j].Delay.Invert(1e-4) + 2*lmax
			if f := maxDelay[j] / budget; f > worstFrac {
				worstFrac = f
			}
		}
	}
	b.ReportMetric(worstFrac, "worst-delay/budget@1e-4")
	once("pktnet", func() {
		fmt.Printf("\nEXT-PKTNET — WFQ tree: worst observed delay is %.2f of the 1e-4 packetized budget\n", worstFrac)
	})
	if worstFrac > 1 {
		b.Fatalf("packet delays exceeded the packetized statistical budget (%v)", worstFrac)
	}
}

// --------------------------------------------------------- EXT-YS ------

// BenchmarkYaronSidiAblation compares the paper's decomposition route
// (Theorem 7) against the reconstructed Yaron-Sidi output-based recursion
// on the Set-1 node: backlog quantiles at 1e-6, averaged ratio reported
// (>1 means the decomposition is tighter — the paper's §4 claim).
func BenchmarkYaronSidiAblation(b *testing.B) {
	chars, err := paper.Table2(paper.Set1Rho)
	if err != nil {
		b.Fatal(err)
	}
	srv := gpsmath.NewRPPSServer(1, chars, nil)
	rates, err := srv.DecomposedRates(gpsmath.SplitEqual, 1)
	if err != nil {
		b.Fatal(err)
	}
	ord, err := srv.FeasibleOrdering(rates)
	if err != nil {
		b.Fatal(err)
	}
	var ys []*gpsmath.SessionBounds
	for i := 0; i < b.N; i++ {
		ys, err = srv.YaronSidiBounds(ord, rates, 0, gpsmath.XiOne)
		if err != nil {
			b.Fatal(err)
		}
	}
	sum := 0.0
	type row struct{ ztk, ys float64 }
	rows := make([]row, len(ord))
	for pos, i := range ord {
		t7, err := srv.Theorem7(ord, rates, pos, gpsmath.XiOne)
		if err != nil {
			b.Fatal(err)
		}
		rows[pos] = row{ztk: t7.BacklogQuantile(1e-6), ys: ys[i].BacklogQuantile(1e-6)}
		sum += rows[pos].ys / rows[pos].ztk
	}
	b.ReportMetric(sum/float64(len(ord)), "recursion/decomposition-quantile-ratio")
	once("yaronsidi", func() {
		fmt.Println("\nEXT-YS — backlog q at 1e-6 along the feasible ordering (decomposition | recursion):")
		for pos, r := range rows {
			fmt.Printf("  position %d: %.2f | %.2f\n", pos+1, r.ztk, r.ys)
		}
	})
}

// ------------------------------------------------- simulator speed ----

// BenchmarkRingCRST runs the cyclic-topology experiment: a 6-node ring
// with 3-hop sessions; metric is the Theorem 15 delay level at 1e-6
// (route-length independent by the paper's §6.2).
func BenchmarkRingCRST(b *testing.B) {
	chars, err := paper.Table2(paper.Set1Rho)
	if err != nil {
		b.Fatal(err)
	}
	var bounds []network.NetBounds
	for i := 0; i < b.N; i++ {
		net, err := paper.Ring(6, 3, chars[1])
		if err != nil {
			b.Fatal(err)
		}
		if _, err := net.AnalyzeCRST(network.CRSTOptions{Independent: false}); err != nil {
			b.Fatal(err)
		}
		bounds, err = net.RPPSBounds(network.VariantDiscrete)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(bounds[0].Delay.Invert(1e-6), "ring-e2e-delay@1e-6")
	once("ring", func() {
		fmt.Printf("\nEXT-RING — 6-node ring, 3-hop sessions: D(1e-6) <= %.1f slots per session\n",
			bounds[0].Delay.Invert(1e-6))
		fmt.Println("  (route-length independent: the same as a 1-hop session at the bottleneck)")
	})
}

// BenchmarkAnalyzeScaling measures single-node analysis cost as the
// session count grows (heterogeneous population). The large sizes pin
// the near-linear prefix/suffix-sum path: 16384 sessions must stay
// within ~20x of 1024 (quadratic would be 256x).
func BenchmarkAnalyzeScaling(b *testing.B) {
	for _, n := range []int{4, 16, 64, 1024, 16384, 131072} {
		b.Run(fmt.Sprintf("sessions-%d", n), func(b *testing.B) {
			srv := gpsmath.Server{Rate: 1}
			rng := source.NewRNG(uint64(n))
			budget := 0.9
			for i := 0; i < n; i++ {
				rho := budget / float64(n) * (0.5 + 0.5*rng.Float64())
				srv.Sessions = append(srv.Sessions, gpsmath.Session{
					Name: fmt.Sprint(i),
					Phi:  0.1 + rng.Float64(),
					Arrival: ebb.Process{
						Rho: rho, Lambda: 0.5 + rng.Float64(), Alpha: 0.5 + 2*rng.Float64(),
					},
				})
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := gpsmath.AnalyzeServer(srv, gpsmath.Options{Independent: true, Xi: gpsmath.XiOptimal}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkTreeSimSharded measures the sharded Monte Carlo harness on
// the paper tree: slots/sec across all shards with streaming tails and
// deterministic block merge (EXT-SCALE).
func BenchmarkTreeSimSharded(b *testing.B) {
	cfg := mc.Config{Blocks: 8, BlockSlots: 25000, Workers: 0, Seed: 42}
	var tails []*stats.StreamTail
	var err error
	for i := 0; i < b.N; i++ {
		tails, err = paper.TreeSimSharded(paper.Set1Rho, cfg, paper.TreeTailSpec{})
		if err != nil {
			b.Fatal(err)
		}
	}
	slotsPerOp := float64(cfg.TotalSlots())
	b.ReportMetric(slotsPerOp*float64(b.N)/b.Elapsed().Seconds()/1e6, "Mslots/s")
	once("treesimsharded", func() {
		fmt.Printf("\nEXT-SCALE — sharded tree (%d slots, %d blocks): per-session p99.9 delay:",
			cfg.TotalSlots(), cfg.Blocks)
		for i, tail := range tails {
			q, err := tail.Quantile(0.999)
			if err != nil {
				fmt.Printf(" s%d=-", i+1)
				continue
			}
			fmt.Printf(" s%d=%.2f", i+1, q)
		}
		fmt.Println()
	})
}

// BenchmarkTailInterleaved regression-guards the dirty-suffix sort in
// stats.Tail: alternating small appends and quantile queries must not
// re-sort the whole sample set per query.
func BenchmarkTailInterleaved(b *testing.B) {
	rng := source.NewRNG(9)
	var tail stats.Tail
	for i := 0; i < 100000; i++ {
		tail.Add(rng.Float64())
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := 0; j < 16; j++ {
			tail.Add(rng.Float64())
		}
		if _, err := tail.Quantile(0.999); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFluidSim measures single-node simulator throughput
// (slots/op with 4 sessions).
func BenchmarkFluidSim(b *testing.B) {
	srcs, err := paper.Sources(5)
	if err != nil {
		b.Fatal(err)
	}
	sim, err := fluid.New(fluid.Config{Rate: 1, Phi: []float64{0.2, 0.25, 0.2, 0.25}})
	if err != nil {
		b.Fatal(err)
	}
	arr := make([]float64, 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := range arr {
			arr[j] = srcs[j].Next()
		}
		if _, err := sim.Step(arr); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRhoSweep runs the envelope-rate sensitivity sweep (EXT-SWEEP):
// the reported metric is the ratio of session 1's 1e-6 delay budget at
// the smallest feasible rho scale to the largest — how much slack the
// operator trades for admitting more load.
func BenchmarkRhoSweep(b *testing.B) {
	var pts []paper.RhoSweepPoint
	var err error
	for i := 0; i < b.N; i++ {
		pts, err = paper.RhoSweep(0.8, 1.2, 9)
		if err != nil {
			b.Fatal(err)
		}
	}
	ratio := pts[0].D1e6[0] / pts[len(pts)-1].D1e6[0]
	b.ReportMetric(ratio, "delay-budget-spread")
	once("sweep", func() {
		fmt.Println("\nEXT-SWEEP — session 1 across the rho sweep (scale: alpha, D(1e-6)):")
		for _, pt := range pts {
			fmt.Printf("  %.3f: %.3f, %.1f\n", pt.Scale, pt.Alphas[0], pt.D1e6[0])
		}
	})
}

// BenchmarkNetSim measures network simulator throughput (slots/op for
// the 3-node, 4-session paper tree).
func BenchmarkNetSim(b *testing.B) {
	srcs, err := paper.Sources(5)
	if err != nil {
		b.Fatal(err)
	}
	sessions := make([]netsim.SessionSpec, 4)
	for i := range sessions {
		first := 0
		if i >= 2 {
			first = 1
		}
		sessions[i] = netsim.SessionSpec{
			Name:  paper.SessionNames[i],
			Route: []int{first, 2},
			Phi:   []float64{paper.Set1Rho[i], paper.Set1Rho[i]},
		}
	}
	sim, err := netsim.New(netsim.Config{
		Nodes:    []netsim.Node{{Rate: 1}, {Rate: 1}, {Rate: 1}},
		Sessions: sessions,
	})
	if err != nil {
		b.Fatal(err)
	}
	arr := make([]float64, 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := range arr {
			arr[j] = srcs[j].Next()
		}
		if err := sim.Step(arr); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkHierSim measures the nested water-filling simulator
// (2 groups, 5 members).
func BenchmarkHierSim(b *testing.B) {
	member := ebb.Process{Rho: 0.1, Lambda: 1, Alpha: 2}
	srv := hiergps.Server{Rate: 1, Groups: []hiergps.Group{
		{Name: "a", Phi: 0.6, MemberPhi: []float64{1, 1}, Members: []ebb.Process{member, member}},
		{Name: "b", Phi: 0.4, MemberPhi: []float64{2, 1, 1}, Members: []ebb.Process{member, member, member}},
	}}
	sim, err := hiergps.NewSim(srv, nil)
	if err != nil {
		b.Fatal(err)
	}
	rng := source.NewRNG(4)
	arr := [][]float64{{0, 0}, {0, 0, 0}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for g := range arr {
			for m := range arr[g] {
				arr[g][m] = 0
				if rng.Bernoulli(0.4) {
					arr[g][m] = 0.2 * rng.Float64()
				}
			}
		}
		if err := sim.Step(arr); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWF2QScheduler measures WF2Q enqueue+dequeue throughput
// (linear-scan eligibility logic, small queues).
func BenchmarkWF2QScheduler(b *testing.B) {
	w, err := pgps.NewWF2Q(1, []float64{1, 2, 3, 4})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		now := float64(i)
		w.Enqueue(pgps.Packet{Session: i % 4, Size: 1, Arrival: now}, now)
		if _, ok := w.Dequeue(now); !ok {
			b.Fatal("empty dequeue")
		}
	}
}

// BenchmarkWFQScheduler measures WFQ enqueue+dequeue throughput.
func BenchmarkWFQScheduler(b *testing.B) {
	w, err := pgps.NewWFQ(1, []float64{1, 2, 3, 4})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		now := float64(i)
		w.Enqueue(pgps.Packet{Session: i % 4, Size: 1, Arrival: now}, now)
		if _, ok := w.Dequeue(now); !ok {
			b.Fatal("empty dequeue")
		}
	}
}

// ------------------------------------------------------ EXT-DELTA ------

// eagerFullSec memoizes the eager full-rebuild baseline per population
// size so benchmark calibration reruns do not re-pay it.
var eagerFullSec sync.Map

// BenchmarkEpochDelta times one incremental epoch publish — a single
// admit or release replayed through the daemon's persistent delta
// analyzer — against populations of 10k, 131k, and 1M sessions. Each
// iteration is two decisions and two published epochs (admit+publish,
// release+publish), so ns/op ≈ 2x the per-op epoch cost. For the
// populations where it is affordable, the reported metric is the
// speedup over the pre-incremental rebuild recipe (eager AnalyzeServer
// plus per-session AdmissionDecision over the same set), measured once.
// The runtime self-check is disabled here: it deliberately pays the
// eager cost on a sampled cadence, which is the contract being priced
// separately.
func BenchmarkEpochDelta(b *testing.B) {
	for _, n := range []int{10_000, 131_072, 1_000_000} {
		b.Run(fmt.Sprintf("sessions-%d", n), func(b *testing.B) {
			benchEpochDelta(b, n)
		})
	}
}

func benchEpochDelta(b *testing.B, population int) {
	arrival := ebb.Process{Rho: 0.05, Lambda: 1, Alpha: 1.2}
	target := admission.Target{Delay: 40, Eps: 1e-3}
	g, err := admission.RequiredRate(arrival, target)
	if err != nil {
		b.Fatal(err)
	}
	d, err := server.New(server.Config{
		Rate:           g * float64(population+16),
		QueueDepth:     1 << 14,
		MaxBatch:       1 << 30,
		MaxEpochAge:    time.Hour,
		SelfCheckEvery: -1,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
		defer cancel()
		if err := d.Close(ctx); err != nil {
			b.Error(err)
		}
	})
	req := server.AdmitRequest{Name: "bench", Arrival: arrival, Target: target}
	populateDaemon(b, d, req, population)
	// Publish once so the incremental analyzer is seeded over the full
	// population before timing starts.
	if err := d.Rebuild(); err != nil {
		b.Fatal(err)
	}
	drainHeap()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := d.Admit(req)
		if err != nil || !res.Admitted {
			b.Fatalf("admit: admitted=%v err=%v", res.Admitted, err)
		}
		if err := d.Rebuild(); err != nil {
			b.Fatal(err)
		}
		if ok, err := d.Release(res.ID); err != nil || !ok {
			b.Fatalf("release: ok=%v err=%v", ok, err)
		}
		if err := d.Rebuild(); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	deltaSec := b.Elapsed().Seconds() / float64(2*b.N)
	b.ReportMetric(deltaSec*1e3, "ms/epoch")
	met := d.Metrics()
	if met.DeltaRebuilds.Load() == 0 {
		b.Fatal("timed loop never rode the incremental path")
	}
	if population > 200_000 {
		return // the eager baseline alone would take ~40s at 1M
	}
	full, ok := eagerFullSec.Load(population)
	if !ok {
		ep := d.CurrentEpoch()
		dmax := make([]float64, ep.Sessions())
		eps := make([]float64, ep.Sessions())
		for i := range dmax {
			dmax[i] = ep.Targets[i].Delay
			eps[i] = ep.Targets[i].Eps
		}
		start := time.Now()
		an, err := gpsmath.AnalyzeServer(ep.Server, gpsmath.Options{Independent: true, Xi: gpsmath.XiOptimal})
		if err != nil {
			b.Fatal(err)
		}
		if _, _, err := an.AdmissionDecision(dmax, eps); err != nil {
			b.Fatal(err)
		}
		full = time.Since(start).Seconds()
		eagerFullSec.Store(population, full)
	}
	speedup := full.(float64) / deltaSec
	b.ReportMetric(speedup, "x-vs-eager-rebuild")
	once(fmt.Sprintf("epochdelta-%d", population), func() {
		fmt.Printf("EXT-DELTA — %d sessions: %.3fms per incremental epoch vs %.0fms eager rebuild (%.0fx)\n",
			population, deltaSec*1e3, full.(float64)*1e3, speedup)
	})
}

// drainHeap runs the collector twice so a previous subbenchmark's
// million-session heap — epoch shadow backings are finalizer-released,
// which takes two GC cycles — is gone before the timed loop starts.
// Without it, GC pacing during the measurement reflects whichever
// big-heap benchmark happened to run earlier in the process, and the
// in-suite numbers swing tens of percent against their standalone
// values.
func drainHeap() {
	runtime.GC()
	runtime.GC()
}

// populateDaemon admits population copies of req through a small worker
// pool (the sequential round-trip latency dominates setup at 1M).
func populateDaemon(b *testing.B, d *server.Daemon, req server.AdmitRequest, population int) {
	b.Helper()
	const workers = 8
	var wg sync.WaitGroup
	errc := make(chan error, workers)
	for w := 0; w < workers; w++ {
		n := population / workers
		if w < population%workers {
			n++
		}
		wg.Add(1)
		go func(n int) {
			defer wg.Done()
			for i := 0; i < n; i++ {
				res, err := d.Admit(req)
				if err != nil || !res.Admitted {
					errc <- fmt.Errorf("populating: admitted=%v err=%v", res.Admitted, err)
					return
				}
			}
		}(n)
	}
	wg.Wait()
	close(errc)
	if err := <-errc; err != nil {
		b.Fatal(err)
	}
}

// BenchmarkAdmitThroughputScaling pins the O(1) decision contract at a
// 1M-session population: admit/release decisions against the memoized
// required rate must not degrade with the admitted set size. No WAL —
// durability cost is orthogonal to population scaling and is gated
// separately by BenchmarkAdmitThroughput.
func BenchmarkAdmitThroughputScaling(b *testing.B) {
	for _, n := range []int{1_000_000} {
		b.Run(fmt.Sprintf("sessions-%d", n), func(b *testing.B) {
			arrival := ebb.Process{Rho: 0.05, Lambda: 1, Alpha: 1.2}
			target := admission.Target{Delay: 40, Eps: 1e-3}
			g, err := admission.RequiredRate(arrival, target)
			if err != nil {
				b.Fatal(err)
			}
			d, err := server.New(server.Config{
				Rate:        g * float64(n+16),
				QueueDepth:  1 << 14,
				MaxBatch:    1 << 30,
				MaxEpochAge: time.Hour,
			})
			if err != nil {
				b.Fatal(err)
			}
			b.Cleanup(func() {
				ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
				defer cancel()
				if err := d.Close(ctx); err != nil {
					b.Error(err)
				}
			})
			req := server.AdmitRequest{Name: "bench", Arrival: arrival, Target: target}
			populateDaemon(b, d, req, n)
			drainHeap()
			b.ResetTimer()
			start := time.Now()
			for i := 0; i < b.N; i++ {
				res, err := d.Admit(req)
				if err != nil || !res.Admitted {
					b.Fatalf("admit: admitted=%v err=%v", res.Admitted, err)
				}
				if ok, err := d.Release(res.ID); err != nil || !ok {
					b.Fatalf("release: ok=%v err=%v", ok, err)
				}
			}
			b.ReportMetric(2*float64(b.N)/time.Since(start).Seconds(), "decisions/s")
		})
	}
}

// BenchmarkAdmitThroughput measures gpsd's in-process admission decision
// rate against a daemon already holding a 10k-session population: each
// benchWALDir places the benchmark's write-ahead log on tmpfs when the
// host has one. The snapshot gate tracks the WAL code's CPU cost per
// decision across commits; routing the log through whatever block
// device backs TMPDIR would gate on that device's buffered-write speed
// instead, which varies machine to machine and run to run. Durable-
// device throughput is an experiment (EXPERIMENTS.md), not a
// regression contract.
func benchWALDir(b *testing.B) string {
	b.Helper()
	const shm = "/dev/shm"
	if st, err := os.Stat(shm); err == nil && st.IsDir() {
		dir, err := os.MkdirTemp(shm, "gpsbench-wal-")
		if err == nil {
			b.Cleanup(func() { os.RemoveAll(dir) })
			return dir
		}
	}
	return b.TempDir()
}

// iteration admits one session and releases it again (two decisions).
// The decision path is O(1) — capacity check against the memoized
// required rate — with analysis rebuilds amortized into batched epochs;
// the benchmark pins MaxBatch/MaxEpochAge high so it times the decision
// loop itself, the contract the 50k decisions/s target is stated over.
// The daemon runs with the write-ahead log enabled under its production
// defaults (group-commit fsync batching) and with replication shipping
// enabled (Source mounted, ack-gated prune watermark wired), so the
// number includes the full durability cost of every decision. Shipping
// itself is pull-based and adds no work to the decision path — the
// follower reads segment bytes over HTTP on its own schedule.
func BenchmarkAdmitThroughput(b *testing.B) {
	benchAdmitThroughput(b, "AdmitThroughput", false)
}

// BenchmarkAdmitThroughputAudited is the same workload with the Merkle
// audit sink attached: every decision is also hashed into the batch
// chain (one leaf SHA-256 plus one amortized interior-node SHA-256 per
// decision, on the audit goroutine). On SMP hosts that work overlaps
// the decision path; the delta against BenchmarkAdmitThroughput prices
// the audit trail. New-in-snapshot benchmarks are reported by benchcmp
// but only AdmitThroughput itself is a gated hot path.
func BenchmarkAdmitThroughputAudited(b *testing.B) {
	benchAdmitThroughput(b, "AdmitThroughputAudited", true)
}

func benchAdmitThroughput(b *testing.B, name string, audited bool) {
	arrival := ebb.Process{Rho: 0.05, Lambda: 1, Alpha: 1.2}
	target := admission.Target{Delay: 40, Eps: 1e-3}
	g, err := admission.RequiredRate(arrival, target)
	if err != nil {
		b.Fatal(err)
	}
	benchDir := benchWALDir(b)
	l, rec, err := wal.Open(benchDir, wal.Options{Sync: wal.SyncBatch})
	if err != nil {
		b.Fatal(err)
	}
	var audit *replication.Audit
	if audited {
		audit, err = replication.OpenAudit(benchDir, replication.AuditOptions{})
		if err != nil {
			b.Fatal(err)
		}
		b.Cleanup(func() {
			if err := audit.Close(); err != nil {
				b.Error(err)
			}
		})
	}
	const population = 10_000
	cfg := server.Config{
		Rate:        g * (population + 16),
		QueueDepth:  1 << 14,
		MaxBatch:    1 << 30,
		MaxEpochAge: time.Hour,
		Log:         l,
		Recovered:   rec,
	}
	if audited {
		cfg.Audit = audit
	}
	d, err := server.New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
		defer cancel()
		if err := d.Close(ctx); err != nil {
			b.Error(err)
		}
	})
	// Shipping-enabled primary, wired exactly as cmd/gpsd wires it:
	// source mounted, ack-driven watermark recompute, segments held
	// until shipped. No follower polls during the benchmark — a pull
	// moves segment bytes on the source's HTTP goroutine, never the
	// decision path, so shipping adds no per-decision work by design.
	src := &replication.Source{
		Dir:    benchDir,
		NodeID: "bench",
		Head:   func() uint64 { return l.NextSeq() - 1 },
		Audit:  audit,
	}
	src.OnAck = func() {
		mark := uint64(0)
		if audited {
			mark = audit.DurableSeq()
		}
		if ack, ok := src.MinAck(); ok && ack < mark {
			mark = ack
		}
		l.SetPruneWatermark(mark)
	}
	src.Mount(http.NewServeMux())
	l.SetPruneWatermark(0)
	req := server.AdmitRequest{Name: "bench", Arrival: arrival, Target: target}
	for i := 0; i < population; i++ {
		res, err := d.Admit(req)
		if err != nil || !res.Admitted {
			b.Fatalf("populating session %d: admitted=%v err=%v", i, res.Admitted, err)
		}
	}
	if audited {
		// Steady state, not cold start: the trail has absorbed the
		// population before timing begins.
		if err := audit.Flush(); err != nil {
			b.Fatal(err)
		}
	}
	drainHeap()
	b.ResetTimer()
	start := time.Now()
	for i := 0; i < b.N; i++ {
		res, err := d.Admit(req)
		if err != nil || !res.Admitted {
			b.Fatalf("admit: admitted=%v err=%v", res.Admitted, err)
		}
		if ok, err := d.Release(res.ID); err != nil || !ok {
			b.Fatalf("release: ok=%v err=%v", ok, err)
		}
	}
	elapsed := time.Since(start)
	b.ReportMetric(2*float64(b.N)/elapsed.Seconds(), "decisions/s")
	once(name, func() {
		fmt.Printf("gpsd admit throughput (%s): %.0f decisions/s over a %d-session population\n",
			name, 2*float64(b.N)/elapsed.Seconds(), population)
	})
}

// ---------------------------------------------------- EXT-CLUSTER ------

// BenchmarkClusterAdmit prices one end-to-end cluster admission: the
// coordinator's CRST composition across the route plus the two-phase
// prepare/commit against real hop daemons over HTTP. The §6.3 tree's
// three hops run in-process behind httptest listeners with the four
// Table 2 sessions already committed; each iteration admits a fifth
// session over the node1→node3 route and releases it again, so ns/op
// covers the analysis, four hop RPCs for the admit (2 prepares + 2
// commits), and two more for the release.
func BenchmarkClusterAdmit(b *testing.B) {
	set, err := paper.Table2(paper.Set1Rho)
	if err != nil {
		b.Fatal(err)
	}
	nodes := make([]cluster.HopNode, 3)
	for m := range nodes {
		d, err := server.New(server.Config{
			Rate:        1,
			QueueDepth:  1 << 10,
			MaxBatch:    1 << 30,
			MaxEpochAge: time.Hour,
		})
		if err != nil {
			b.Fatal(err)
		}
		b.Cleanup(func() {
			ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
			defer cancel()
			if err := d.Close(ctx); err != nil {
				b.Error(err)
			}
		})
		ts := httptest.NewServer(server.NewHandler(d))
		b.Cleanup(ts.Close)
		nodes[m] = cluster.HopNode{Name: fmt.Sprintf("node%d", m+1), URL: ts.URL, Rate: 1}
	}
	coord, err := cluster.New(cluster.Config{
		Topology:   cluster.Topology{Nodes: nodes},
		PrepareTTL: time.Minute,
		HopTimeout: 10 * time.Second,
	})
	if err != nil {
		b.Fatal(err)
	}
	target := admission.Target{Delay: 200, Eps: 1e-3}
	for i, a := range set {
		first := 0
		if i >= 2 {
			first = 1
		}
		res, err := coord.Admit(cluster.AdmitRequest{
			Name: paper.SessionNames[i], Arrival: a, Route: []int{first, 2}, Target: target,
		})
		if err != nil || !res.Admitted {
			b.Fatalf("staging %s: admitted=%v reason=%q err=%v", paper.SessionNames[i], res.Admitted, res.Reason, err)
		}
	}
	// A fifth session that composes to ~0.2 at d=200 over the loaded
	// tree: feasible under a loose eps, tiny enough not to starve the
	// committed set.
	probe := cluster.AdmitRequest{
		Name:    "probe",
		Arrival: ebb.Process{Rho: 0.05, Lambda: 1, Alpha: 5},
		Route:   []int{0, 2},
		Target:  admission.Target{Delay: 200, Eps: 0.5},
	}
	b.ResetTimer()
	start := time.Now()
	for i := 0; i < b.N; i++ {
		res, err := coord.Admit(probe)
		if err != nil || !res.Admitted {
			b.Fatalf("admit: admitted=%v reason=%q err=%v", res.Admitted, res.Reason, err)
		}
		if ok, err := coord.Release(res.ID); err != nil || !ok {
			b.Fatalf("release: ok=%v err=%v", ok, err)
		}
	}
	b.ReportMetric(float64(b.N)/time.Since(start).Seconds(), "admits/s")
}

// BenchmarkAdmitThroughputSharded measures the sharded writer's
// parallel decision rate: N shard writers behind the Sharded facade,
// each with its own striped-WAL segment stream (tmpfs, group-commit
// batching) and a slice of the capacity ledger, driven by concurrent
// clients over a 64-type session palette. shards-1 is the
// single-writer baseline under the same parallel-client load; the
// scaling contract is shards-8 at 1M sessions >= 2x that baseline on
// GOMAXPROCS >= 4. The 10k ladder shows where the WAL group-commit
// stops being the bottleneck; only the names in benchcmp's hot-path
// list are gated.
func BenchmarkAdmitThroughputSharded(b *testing.B) {
	for _, shards := range []int{1, 2, 4, 8} {
		for _, population := range []int{10_000, 1_000_000} {
			if population == 1_000_000 && shards != 1 && shards != 8 {
				continue // the 1M populations are expensive to stage; the ladder runs at 10k
			}
			b.Run(fmt.Sprintf("shards-%d/sessions-%d", shards, population), func(b *testing.B) {
				benchAdmitThroughputSharded(b, shards, population)
			})
		}
	}
}

// shardedBenchPalette builds 64 distinct session types and the largest
// memoized required rate among them. The shard key hashes the (rho,
// phi) ratio, so a handful of types can legitimately collide onto a
// subset of 8 shards; 64 types give every shard an owned slice of the
// population and of the decision stream.
func shardedBenchPalette(b *testing.B) ([]server.AdmitRequest, float64) {
	b.Helper()
	reqs := make([]server.AdmitRequest, 64)
	maxG := 0.0
	for k := range reqs {
		arrival := ebb.Process{Rho: 0.04 + 0.0005*float64(k), Lambda: 1, Alpha: 1.2}
		target := admission.Target{Delay: 40, Eps: 1e-3}
		g, err := admission.RequiredRate(arrival, target)
		if err != nil {
			b.Fatal(err)
		}
		if g > maxG {
			maxG = g
		}
		reqs[k] = server.AdmitRequest{Name: "bench", Arrival: arrival, Target: target}
	}
	return reqs, maxG
}

func benchAdmitThroughputSharded(b *testing.B, shards, population int) {
	reqs, maxG := shardedBenchPalette(b)
	logs, recs, err := wal.OpenStriped(benchWALDir(b), shards, wal.Options{Sync: wal.SyncBatch})
	if err != nil {
		b.Fatal(err)
	}
	alogs := make([]server.AdmissionLog, len(logs))
	for i, l := range logs {
		alogs[i] = l
	}
	s, err := server.NewSharded(server.Config{
		Rate:        maxG * float64(population+1024),
		QueueDepth:  1 << 14,
		MaxBatch:    1 << 30,
		MaxEpochAge: time.Hour,
	}, shards, alogs, recs, nil)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
		defer cancel()
		if err := s.Close(ctx); err != nil {
			b.Error(err)
		}
		for _, l := range logs {
			if err := l.Close(); err != nil {
				b.Error(err)
			}
		}
	})
	// Populate in parallel, cycling the palette so every shard owns a
	// slice of the population.
	const workers = 8
	var wg sync.WaitGroup
	errc := make(chan error, workers)
	for w := 0; w < workers; w++ {
		n := population / workers
		if w < population%workers {
			n++
		}
		wg.Add(1)
		go func(w, n int) {
			defer wg.Done()
			for i := 0; i < n; i++ {
				res, err := s.Admit(reqs[(w+i*workers)%len(reqs)])
				if err != nil || !res.Admitted {
					errc <- fmt.Errorf("populating: admitted=%v err=%v", res.Admitted, err)
					return
				}
			}
		}(w, n)
	}
	wg.Wait()
	close(errc)
	if err := <-errc; err != nil {
		b.Fatal(err)
	}
	var gor atomic.Uint64
	drainHeap()
	b.ResetTimer()
	start := time.Now()
	b.RunParallel(func(pb *testing.PB) {
		// Offset each client into the palette so concurrent clients hit
		// different shards at any instant instead of marching in step.
		k := int(gor.Add(1)) * 7
		for pb.Next() {
			k = (k + 1) % len(reqs)
			res, err := s.Admit(reqs[k])
			if err != nil || !res.Admitted {
				b.Errorf("admit: admitted=%v err=%v", res.Admitted, err)
				return
			}
			if ok, err := s.Release(res.ID); err != nil || !ok {
				b.Errorf("release: ok=%v err=%v", ok, err)
				return
			}
		}
	})
	elapsed := time.Since(start)
	b.ReportMetric(2*float64(b.N)/elapsed.Seconds(), "decisions/s")
}
